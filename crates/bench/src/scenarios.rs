//! The scenario registry: every benchmarkable hot path as a plain
//! callable.
//!
//! Both harnesses consume this table — the criterion-shim benches in
//! `benches/` and the `dnscentral bench` subcommand (which feeds the
//! scenarios to `obs::bench::Runner` and emits `BENCH_*.json`
//! reports for the perf trajectory). Keeping the bodies here means a
//! scenario is written once and the two harnesses cannot drift.
//!
//! A scenario is two layers:
//!
//! - [`Scenario::setup`] builds the inputs (sample messages, a tiny
//!   capture, a responder…). Runs once, untimed.
//! - [`Prepared::iter`] is the timed body. It returns a `u64` derived
//!   from the work (a length, a count) so the optimizer cannot discard
//!   the computation.
//!
//! `records_per_iter` is the number of logical records one call
//! processes (queries served, rows aggregated, names parsed); the
//! harnesses turn it into records/s.

use dns_wire::builder::MessageBuilder;
use dns_wire::message::Message;
use dns_wire::name::{Name, NameCompressor, ReusableCompressor};
use dns_wire::rdata::RData;
use dns_wire::types::{RType, Rcode};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};

/// A prepared scenario: inputs built, ready to be timed.
pub struct Prepared {
    /// Logical records processed per call of `iter`.
    pub records_per_iter: u64,
    /// The timed body. Returns a value derived from the work so the
    /// computation cannot be optimized away.
    pub iter: Box<dyn FnMut() -> u64>,
}

impl Prepared {
    fn new(records_per_iter: u64, iter: impl FnMut() -> u64 + 'static) -> Prepared {
        Prepared {
            records_per_iter,
            iter: Box::new(iter),
        }
    }
}

/// One named benchmark scenario.
pub struct Scenario {
    /// Group label (`wire`, `gen`, `ingest`, `pipeline`, `suite`,
    /// `analysis`, `warehouse`, `obs`, `serve`, `authd`, `resolver`,
    /// `fleet`, `substrates`); the
    /// criterion benches map groups onto bench binaries, the CLI
    /// reports `group/name`.
    pub group: &'static str,
    /// Scenario name within the group.
    pub name: &'static str,
    /// Build the inputs; runs once, untimed.
    pub setup: fn() -> Prepared,
}

impl Scenario {
    /// The `group/name` identifier used in reports and `--filter`.
    pub fn id(&self) -> String {
        format!("{}/{}", self.group, self.name)
    }
}

/// Every scenario, in report order.
pub fn all() -> Vec<Scenario> {
    let mut v = Vec::new();
    v.extend(wire());
    v.extend(gen());
    v.extend(ingest());
    v.extend(pipeline());
    v.extend(suite());
    v.extend(analysis());
    v.extend(warehouse_store());
    v.extend(obs_flight());
    v.extend(serve());
    v.extend(authd_live());
    v.extend(resolver_walks());
    v.extend(fleet_live());
    v.extend(substrates());
    v
}

/// The scenarios of one group, in report order.
pub fn in_group(group: &str) -> Vec<Scenario> {
    all().into_iter().filter(|s| s.group == group).collect()
}

// --- wire -----------------------------------------------------------

fn sample_names() -> Vec<Name> {
    (0..64)
        .map(|i| {
            format!(
                "{}.example{}.nl.",
                zonedb::names::encode_label(i * 977),
                i % 7
            )
            .parse()
            .expect("generated names parse")
        })
        .collect()
}

/// The referral response the wire scenarios encode/parse — public so
/// the workspace's allocation tests can pin the encode path on the
/// exact message the benches measure.
pub fn sample_response() -> Message {
    let qname: Name = "www.bankexample.nl.".parse().expect("static");
    let q = MessageBuilder::query(77, qname.clone(), RType::A)
        .with_edns(1232, true)
        .build();
    MessageBuilder::response(&q, Rcode::NoError)
        .authority(
            "bankexample.nl.".parse().expect("static"),
            3600,
            RData::Ns("ns1.bankexample.nl.".parse().expect("static")),
        )
        .authority(
            "bankexample.nl.".parse().expect("static"),
            3600,
            RData::Ns("ns2.bankexample.nl.".parse().expect("static")),
        )
        .authority(
            "bankexample.nl.".parse().expect("static"),
            3600,
            RData::Ds {
                key_tag: 1,
                algorithm: 8,
                digest_type: 2,
                digest: vec![9; 32],
            },
        )
        .additional(
            "ns1.bankexample.nl.".parse().expect("static"),
            3600,
            RData::A("192.0.2.1".parse().expect("static")),
        )
        .build()
}

fn wire() -> Vec<Scenario> {
    vec![
        Scenario {
            group: "wire",
            name: "name_parse",
            setup: || {
                let wires: Vec<Vec<u8>> = sample_names()
                    .iter()
                    .map(|n| {
                        let mut v = Vec::new();
                        n.encode_uncompressed(&mut v);
                        v
                    })
                    .collect();
                let n = wires.len() as u64;
                Prepared::new(n, move || {
                    let mut labels = 0u64;
                    for w in &wires {
                        labels += Name::parse(w, 0).expect("valid").0.label_count() as u64;
                    }
                    labels
                })
            },
        },
        Scenario {
            group: "wire",
            name: "name_encode_compressed",
            setup: || {
                let names = sample_names();
                let n = names.len() as u64;
                Prepared::new(n, move || {
                    let mut comp = NameCompressor::new();
                    let mut out = Vec::with_capacity(2048);
                    for name in &names {
                        comp.encode(name, &mut out);
                    }
                    out.len() as u64
                })
            },
        },
        Scenario {
            group: "wire",
            name: "message_encode",
            setup: || {
                let resp = sample_response();
                Prepared::new(1, move || resp.encode().expect("encodes").len() as u64)
            },
        },
        Scenario {
            group: "wire",
            name: "message_encode_into",
            setup: || {
                let resp = sample_response();
                let mut comp = ReusableCompressor::new();
                let mut out = Vec::with_capacity(512);
                Prepared::new(1, move || {
                    resp.encode_into(&mut comp, &mut out).expect("encodes");
                    out.len() as u64
                })
            },
        },
        Scenario {
            group: "wire",
            name: "message_parse",
            setup: || {
                let bytes = sample_response().encode().expect("encodes");
                Prepared::new(1, move || {
                    Message::parse(&bytes).expect("parses").authorities.len() as u64
                })
            },
        },
        Scenario {
            group: "wire",
            name: "encode_with_limit_truncating",
            setup: || {
                let resp = sample_response();
                let limit = 100 + resp.encode().expect("encodes").len() / 2;
                Prepared::new(1, move || {
                    resp.encode_with_limit(limit).expect("fits").0.len() as u64
                })
            },
        },
    ]
}

// --- gen ------------------------------------------------------------

fn gen_scenario(shards: usize) -> Prepared {
    use netbase::capture::CaptureWriter;
    use simnet::engine::Engine;
    let engine = Engine::new(dataset(Vantage::BRoot, 2020), Scale::tiny(), 3);
    let total = engine.scaled_total();
    Prepared::new(total, move || {
        let mut buf = Vec::with_capacity(4 << 20);
        let mut w = CaptureWriter::new(&mut buf).expect("writer");
        engine.generate_sharded(&mut w, shards).expect("generation");
        w.finish().expect("flush");
        buf.len() as u64
    })
}

fn gen() -> Vec<Scenario> {
    vec![
        Scenario {
            group: "gen",
            name: "generate_shard1",
            setup: || gen_scenario(1),
        },
        Scenario {
            group: "gen",
            name: "generate_shard4",
            setup: || gen_scenario(4),
        },
    ]
}

// --- ingest ---------------------------------------------------------

fn ingest() -> Vec<Scenario> {
    vec![Scenario {
        group: "ingest",
        name: "ingest_and_enrich",
        setup: || {
            use entrada::enrich::Enricher;
            use entrada::ingest::CaptureIngest;
            use netbase::capture::CaptureReader;
            use simnet::engine::plan_config_for;
            let capture = crate::sample_capture_bytes();
            let nz = dataset(Vantage::Nz, 2020);
            let plan = asdb::synth::InternetPlan::build(&plan_config_for(&nz, Scale::tiny(), 7));
            let rows = {
                let reader = CaptureReader::new(&capture[..]).expect("valid header");
                CaptureIngest::new(reader, Enricher::new(plan.mapper.clone())).count() as u64
            };
            Prepared::new(rows, move || {
                let reader = CaptureReader::new(&capture[..]).expect("valid header");
                CaptureIngest::new(reader, Enricher::new(plan.mapper.clone())).count() as u64
            })
        },
    }]
}

// --- pipeline -------------------------------------------------------

fn pipeline() -> Vec<Scenario> {
    use dnscentral_core::experiments::{analyze_capture, generate_capture, temp_capture_path};
    use dnscentral_core::pipeline::{run_spec_with, PipelineOpts};
    use simnet::engine::Engine;
    fn e2e_total() -> u64 {
        Engine::new(dataset(Vantage::Nz, 2020), Scale::tiny(), 5).scaled_total()
    }
    vec![
        Scenario {
            group: "pipeline",
            name: "file_roundtrip",
            setup: || {
                let e2e = dataset(Vantage::Nz, 2020);
                Prepared::new(e2e_total(), move || {
                    let path = temp_capture_path("bench-e2e", 5);
                    generate_capture(&e2e, Scale::tiny(), 5, &path).expect("generate");
                    let out = analyze_capture(&e2e, Scale::tiny(), 5, &path).expect("analyze");
                    let _ = std::fs::remove_file(&path);
                    out.0.total_queries
                })
            },
        },
        Scenario {
            group: "pipeline",
            name: "streamed_shard1",
            setup: || {
                let e2e = dataset(Vantage::Nz, 2020);
                Prepared::new(e2e_total(), move || {
                    run_spec_with(e2e.clone(), Scale::tiny(), 5, &PipelineOpts::with_shards(1))
                        .analysis
                        .total_queries
                })
            },
        },
        Scenario {
            group: "pipeline",
            name: "streamed_shard4",
            setup: || {
                let e2e = dataset(Vantage::Nz, 2020);
                Prepared::new(e2e_total(), move || {
                    run_spec_with(e2e.clone(), Scale::tiny(), 5, &PipelineOpts::with_shards(4))
                        .analysis
                        .total_queries
                })
            },
        },
        Scenario {
            group: "pipeline",
            name: "jobs1",
            setup: || {
                let e2e = dataset(Vantage::Nz, 2020);
                Prepared::new(e2e_total(), move || {
                    run_spec_with(e2e.clone(), Scale::tiny(), 5, &PipelineOpts::with_jobs(1))
                        .analysis
                        .total_queries
                })
            },
        },
        Scenario {
            group: "pipeline",
            name: "jobs4",
            setup: || {
                let e2e = dataset(Vantage::Nz, 2020);
                Prepared::new(e2e_total(), move || {
                    run_spec_with(e2e.clone(), Scale::tiny(), 5, &PipelineOpts::with_jobs(4))
                        .analysis
                        .total_queries
                })
            },
        },
    ]
}

// --- suite ----------------------------------------------------------

/// Four independent tiny datasets through [`dnscentral_core::run_suite`]
/// with the given job cap; `suite/serial` vs `suite/jobs4` is the
/// multi-dataset scheduling speedup (≈ core count, up to 4).
fn suite_scenario(jobs: usize) -> Prepared {
    use dnscentral_core::pipeline::PipelineOpts;
    use dnscentral_core::run_suite;
    use simnet::engine::Engine;
    let specs = vec![
        dataset(Vantage::Nl, 2020),
        dataset(Vantage::Nz, 2020),
        dataset(Vantage::BRoot, 2020),
        dataset(Vantage::Nl, 2019),
    ];
    let total: u64 = specs
        .iter()
        .map(|s| Engine::new(s.clone(), Scale::tiny(), 5).scaled_total())
        .sum();
    Prepared::new(total, move || {
        run_suite(
            specs.clone(),
            Scale::tiny(),
            5,
            &PipelineOpts::default(),
            jobs,
        )
        .iter()
        .map(|run| run.analysis.total_queries)
        .sum()
    })
}

fn suite() -> Vec<Scenario> {
    vec![
        Scenario {
            group: "suite",
            name: "serial",
            setup: || suite_scenario(1),
        },
        Scenario {
            group: "suite",
            name: "jobs4",
            setup: || suite_scenario(4),
        },
    ]
}

// --- analysis -------------------------------------------------------

fn sample_rows() -> (Vec<entrada::schema::QueryRow>, zonedb::zone::ZoneModel) {
    use entrada::enrich::Enricher;
    use entrada::ingest::CaptureIngest;
    use netbase::capture::CaptureReader;
    use simnet::engine::plan_config_for;
    let capture = crate::sample_capture_bytes();
    let nz = dataset(Vantage::Nz, 2020);
    let plan = asdb::synth::InternetPlan::build(&plan_config_for(&nz, Scale::tiny(), 7));
    let reader = CaptureReader::new(&capture[..]).expect("valid header");
    let rows = CaptureIngest::new(reader, Enricher::new(plan.mapper)).collect();
    (rows, nz.zone.build())
}

fn sample_analysis() -> (dnscentral_core::analysis::DatasetAnalysis, u64) {
    use dnscentral_core::analysis::DatasetAnalysis;
    let (rows, zone) = sample_rows();
    let n = rows.len() as u64;
    let mut a = DatasetAnalysis::new(zone);
    for row in &rows {
        a.push(row);
    }
    (a, n)
}

/// A synthetic Q-min monthly series shaped like Figure 5 (pre/post
/// resolver deployment), shared by the CUSUM bench and its ablation.
pub fn qmin_series(noise: f64, seed: u64) -> Vec<dnscentral_core::qmin::MonthlySample> {
    use dnscentral_core::qmin::MonthlySample;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let (mut y, mut m) = (2018, 11);
    loop {
        let deployed = (y, m) >= (2019, 12);
        let base: f64 = if deployed { 0.45 } else { 0.04 };
        let ns = (base + rng.gen_range(-noise..noise)).clamp(0.0, 1.0);
        out.push(MonthlySample {
            year: y,
            month: m,
            total: 1000,
            qtype_counts: vec![],
            ns_share: ns,
            minimized_ns_share: if deployed { 0.9 } else { 0.3 },
            address_share: 1.0 - ns,
        });
        if (y, m) == (2020, 4) {
            break;
        }
        m += 1;
        if m > 12 {
            m = 1;
            y += 1;
        }
    }
    out
}

fn analysis() -> Vec<Scenario> {
    vec![
        Scenario {
            group: "analysis",
            name: "aggregate_rows",
            setup: || {
                use dnscentral_core::analysis::DatasetAnalysis;
                let (rows, zone) = sample_rows();
                let n = rows.len() as u64;
                Prepared::new(n, move || {
                    let mut a = DatasetAnalysis::new(zone.clone());
                    for row in &rows {
                        a.push(row);
                    }
                    a.total_queries
                })
            },
        },
        Scenario {
            group: "analysis",
            name: "merge",
            setup: || {
                use dnscentral_core::analysis::DatasetAnalysis;
                let (rows, zone) = sample_rows();
                let n = rows.len() as u64;
                // four partials over disjoint row subsets, merged the
                // way the parallel consumer merges worker sinks
                let partials: Vec<DatasetAnalysis> = (0..4)
                    .map(|w| {
                        let mut a = DatasetAnalysis::new(zone.clone());
                        for row in rows.iter().skip(w).step_by(4) {
                            a.push(row);
                        }
                        a
                    })
                    .collect();
                Prepared::new(n, move || {
                    let mut merged = partials[0].clone();
                    for p in &partials[1..] {
                        merged.merge(p.clone());
                    }
                    merged.total_queries
                })
            },
        },
        Scenario {
            group: "analysis",
            name: "qmin_cusum",
            setup: || {
                use dnscentral_core::qmin::detect_cusum;
                let series = qmin_series(0.05, 7);
                let n = series.len() as u64;
                Prepared::new(n, move || {
                    detect_cusum(&series, 0.05, 0.3)
                        .map(|cp| cp.year as u64 * 12 + cp.month as u64)
                        .unwrap_or(0)
                })
            },
        },
        Scenario {
            group: "analysis",
            name: "edns_size",
            setup: || {
                use dnscentral_core::ednssize::edns_report;
                let (a, n) = sample_analysis();
                Prepared::new(n, move || edns_report(&a).iter().map(|r| r.samples).sum())
            },
        },
        Scenario {
            group: "analysis",
            name: "junk",
            setup: || {
                use dnscentral_core::junk::junk_report;
                let (a, n) = sample_analysis();
                Prepared::new(n, move || {
                    let r = junk_report("bench", &a);
                    r.per_provider.len() as u64 + (r.overall * 1000.0) as u64
                })
            },
        },
        Scenario {
            group: "analysis",
            name: "concentration",
            setup: || {
                use dnscentral_core::concentration::concentration;
                let (a, n) = sample_analysis();
                Prepared::new(n, move || {
                    (concentration("bench", &a).cloud_share * 1_000_000.0) as u64
                })
            },
        },
    ]
}

// --- warehouse ------------------------------------------------------

fn warehouse_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dnswh-bench-{}-{name}", std::process::id()))
}

/// A committed single-source warehouse over `rows` (fresh directory).
fn built_warehouse(
    rows: &[entrada::schema::QueryRow],
    dir: &std::path::Path,
) -> warehouse::Warehouse {
    let _ = std::fs::remove_dir_all(dir);
    let wh = warehouse::Warehouse::open(dir).expect("warehouse opens");
    wh.ensure_source("bench", "{}").expect("source registers");
    let mut app = wh.appender("bench", warehouse::AppendConfig::default());
    for r in rows {
        app.push(r);
    }
    app.finish().expect("append flushes");
    wh.commit().expect("commit");
    wh
}

fn warehouse_store() -> Vec<Scenario> {
    vec![
        Scenario {
            group: "warehouse",
            name: "append",
            setup: || {
                let (rows, _) = sample_rows();
                let n = rows.len() as u64;
                let dir = warehouse_dir("append");
                Prepared::new(n, move || {
                    let wh = built_warehouse(&rows, &dir);
                    let written = wh.rows();
                    let _ = std::fs::remove_dir_all(&dir);
                    written
                })
            },
        },
        Scenario {
            group: "warehouse",
            name: "scan_full",
            setup: || {
                let (rows, _) = sample_rows();
                let n = rows.len() as u64;
                let wh = built_warehouse(&rows, &warehouse_dir("scan-full"));
                Prepared::new(n, move || {
                    wh.scan(warehouse::Predicate::all()).count() as u64
                })
            },
        },
        Scenario {
            group: "warehouse",
            name: "scan_pruned",
            setup: || {
                use netbase::time::SimTime;
                let (rows, _) = sample_rows();
                let start = rows.iter().map(|r| r.timestamp).min().expect("rows exist");
                let wh = built_warehouse(&rows, &warehouse_dir("scan-pruned"));
                // a one-hour window: the zone maps skip everything else
                let pred = warehouse::Predicate::between(
                    start,
                    SimTime(start.as_micros() + 3_600_000_000),
                );
                let matched = wh.scan(pred.clone()).count() as u64;
                Prepared::new(matched.max(1), move || wh.scan(pred.clone()).count() as u64)
            },
        },
        Scenario {
            group: "warehouse",
            name: "scan_explain",
            setup: || {
                let (rows, _) = sample_rows();
                let n = rows.len() as u64;
                let wh = built_warehouse(&rows, &warehouse_dir("scan-explain"));
                // per-partition decode profiling on for every later
                // scan in this process; the drain keeps it bounded
                warehouse::explain::enable();
                Prepared::new(n, move || {
                    let rows = wh.scan(warehouse::Predicate::all()).count() as u64;
                    let profiles = warehouse::explain::take();
                    rows + profiles.len() as u64
                })
            },
        },
    ]
}

// --- obs ------------------------------------------------------------

fn obs_flight() -> Vec<Scenario> {
    vec![Scenario {
        group: "obs",
        name: "flight_record",
        setup: || {
            use std::time::Duration;
            // a registry the size of a busy run: 48 counters moving at
            // different rates plus 8 populated histograms
            let registry = obs::metrics::Registry::new();
            for i in 0..48u64 {
                registry
                    .counter(&format!("bench_counter_{i:02}"), "bench fixture")
                    .add(i * 7);
            }
            for i in 0..8u64 {
                let h = registry.histogram(&format!("bench_hist_{i}"), "bench fixture");
                for v in 0..64 {
                    h.record(v * 17 + i);
                }
            }
            let recorder =
                obs::flight::Recorder::new(Duration::from_secs(1), obs::flight::RING_CAPACITY);
            // one tick = one full sweep of the 56 registered metrics
            Prepared::new(56, move || {
                recorder.tick_registry(&registry);
                recorder.ticks()
            })
        },
    }]
}

// --- serve ----------------------------------------------------------

fn sample_queries(n: usize) -> Vec<(Vec<u8>, std::net::IpAddr)> {
    use simnet::drive::Driver;
    let spec = dataset(Vantage::Nl, 2020);
    let t = spec.start;
    let mut driver = Driver::new(spec, Scale::tiny(), 42);
    (0..n)
        .map(|_| {
            let q = driver.sample(t);
            (q.wire, q.src)
        })
        .collect()
}

fn serve_scenario(transport: netbase::flow::Transport, cached: bool) -> Prepared {
    use authd::respond::{Outcome, OutcomeRef, RespondScratch, Responder};
    use netbase::time::SimTime;
    let responder = Responder::for_spec(&dataset(Vantage::Nl, 2020));
    let queries = sample_queries(512);
    let now = SimTime(0);
    let n = queries.len() as u64;
    let mut scratch = RespondScratch::new();
    Prepared::new(n, move || {
        let mut replies = 0u64;
        for (wire, src) in &queries {
            if cached {
                match responder.handle_into(wire, transport, *src, now, None, &mut scratch) {
                    OutcomeRef::Reply { .. } => replies += 1,
                    OutcomeRef::RrlDrop | OutcomeRef::Malformed => {}
                }
            } else {
                match responder.handle(wire, transport, *src, now, None) {
                    Outcome::Reply { .. } => replies += 1,
                    Outcome::RrlDrop | Outcome::Malformed => {}
                }
            }
        }
        replies
    })
}

fn serve() -> Vec<Scenario> {
    use netbase::flow::Transport;
    vec![
        Scenario {
            group: "serve",
            name: "respond_udp",
            setup: || serve_scenario(Transport::Udp, false),
        },
        Scenario {
            group: "serve",
            name: "respond_udp_cached",
            setup: || serve_scenario(Transport::Udp, true),
        },
        Scenario {
            group: "serve",
            name: "respond_tcp",
            setup: || serve_scenario(Transport::Tcp, false),
        },
    ]
}

// --- authd (live sockets) -------------------------------------------

/// Closed-loop UDP saturation against a real [`authd::Server`] on
/// loopback: many client sockets (so the kernel's reuseport hash
/// spreads the 4-tuples across the server's shards), preamble-carried
/// logical sources (so RRL buckets spread across limiter shards), RRL
/// configured with `slip: 1` so every limited response degrades to a
/// deterministic TC=1 slip instead of a drop — each query gets exactly
/// one reply and the loop can drain to completion.
fn saturation_scenario(sharded: bool) -> Prepared {
    use authd::proxy::Preamble;
    use authd::sockets::{MsgBufPool, UdpShard, UdpShardSet, MAX_BATCH};
    use simnet::rrl::RrlConfig;
    use std::time::{Duration, Instant};

    const QUERIES: usize = 512;
    const DISTINCT: usize = 64;
    const CLIENT_SOCKS: usize = 8;

    let spec = dataset(Vantage::Nl, 2020);
    let mut config = authd::ServerConfig::for_spec(&spec);
    config.udp_workers = 4;
    config.tcp_workers = 1;
    config.udp_sharding = sharded;
    config.rrl = Some(RrlConfig {
        slip: 1,
        ..spec.rrl.unwrap_or_default()
    });
    let server = authd::Server::start(config).expect("server starts");
    let addr = server.udp_addr();

    // a small repeated query set keeps steady-state responds on the
    // per-worker scratch-cache hit path, so the scenario measures the
    // socket plane rather than response building; source ports still
    // vary per datagram so reuseport spreads the flows over the shards
    let base = sample_queries(DISTINCT);
    let datagrams: Vec<Vec<u8>> = (0..QUERIES)
        .map(|i| {
            let (wire, src) = base[i % DISTINCT].clone();
            (i, wire, src)
        })
        .map(|(i, wire, src)| {
            let preamble = Preamble {
                src: std::net::SocketAddr::new(src, 10_000 + (i % 50_000) as u16),
                dst: addr,
                rtt_us: 0,
            };
            let mut d = preamble.encode();
            d.extend_from_slice(&wire);
            d
        })
        .collect();

    // one single-shard set per client socket: distinct source ports
    // (so the server's reuseport hash spreads them over its shards)
    // but each moving whole batches per syscall, so staging the burst
    // costs the sender almost nothing
    let mut clients: Vec<(UdpShard, MsgBufPool)> = (0..CLIENT_SOCKS)
        .map(|_| {
            let set = UdpShardSet::bind(
                "127.0.0.1:0".parse().expect("static addr"),
                1,
                Duration::from_millis(5),
            )
            .expect("client binds");
            let shard = set.into_shards().pop().expect("one shard");
            (shard, MsgBufPool::new(MAX_BATCH))
        })
        .collect();

    // open loop: blast the burst, then time how fast the server plane
    // absorbs it (recv -> respond -> send, observed via the responses
    // counter). Replies land in the client sockets' buffers and are
    // simply dropped there once full; round-tripping them through this
    // single bench thread would measure the client, not the server.
    let responses = std::sync::Arc::clone(&server.stats().responses);
    Prepared::new(QUERIES as u64, move || {
        // keep the server alive for the whole scenario
        let _ = server.udp_addr();
        let sent_at = responses.get();
        for chunk in datagrams.chunks(CLIENT_SOCKS * MAX_BATCH) {
            for (j, d) in chunk.iter().enumerate() {
                clients[j % CLIENT_SOCKS].1.stage_reply(addr, d);
            }
            for (shard, pool) in clients.iter_mut() {
                let _ = shard.send_staged(pool);
                pool.clear_replies();
            }
        }
        let mut done = 0u64;
        let mut last_progress = Instant::now();
        while done < QUERIES as u64 && last_progress.elapsed() < Duration::from_millis(250) {
            // the sleep hands the core to the workers; the counter
            // read on wake costs one relaxed atomic load
            std::thread::sleep(Duration::from_micros(20));
            let now = responses.get() - sent_at;
            if now > done {
                done = now;
                last_progress = Instant::now();
            }
        }
        done
    })
}

fn authd_live() -> Vec<Scenario> {
    vec![
        Scenario {
            group: "authd",
            name: "saturation",
            setup: || saturation_scenario(true),
        },
        Scenario {
            group: "authd",
            name: "saturation_single",
            setup: || saturation_scenario(false),
        },
    ]
}

// --- resolver (fleet walks) -----------------------------------------

/// One resolver pass over a fixed stimulus batch through the offline
/// three-tier [`SimTransport`]: root referral, recorded vantage,
/// synthetic leaf. Returns the stimulus count (always nonzero).
fn fleet_walk_batch(
    engine: &simnet::engine::Engine,
    hists: &[std::sync::Arc<obs::Histogram>],
    stims: &[simnet::emerge::Stimulus],
    shared: &resolver::SharedCache,
    seed: u64,
) -> u64 {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use resolver::{IterativeResolver, ResolverConfig};
    use simnet::emerge::SimTransport;
    let fleet = &engine.fleets()[0];
    let mut tr = SimTransport::new(engine, fleet, hists, StdRng::seed_from_u64(seed), None);
    let mut res = IterativeResolver::new(ResolverConfig {
        qmin: true,
        ..Default::default()
    });
    res.attach_shared_cache(shared.clone());
    res.set_log_enabled(false);
    let start = engine.spec().start;
    let mut n = 0u64;
    for s in stims {
        res.set_now_micros(start.as_micros());
        tr.begin(0, start, s.junk);
        let _ = res.resolve(&mut tr, &s.qname, s.qtype);
        n += 1;
    }
    n
}

/// Cold: a fresh shared cache each call, so every stimulus walks the
/// full hierarchy. Cached: one pre-warmed cache persists across calls,
/// so steady state measures the TTL-cache hit path plus leaf requery.
fn resolver_scenario(cached: bool) -> Prepared {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use resolver::SharedCache;
    use simnet::emerge::{ns_rtt_histograms, sample_stimulus, Stimulus};
    use simnet::engine::Engine;

    const STIMULI: usize = 64;
    let engine = Engine::new(dataset(Vantage::Nl, 2020), Scale::tiny(), 9);
    let hists = ns_rtt_histograms(&engine.spec().servers);
    // a fixed batch so cold and cached walk the same demand
    let stims: Vec<Stimulus> = {
        let mut rng = StdRng::seed_from_u64(11);
        let spec = engine.fleets()[0].spec.clone();
        (0..STIMULI)
            .map(|_| {
                sample_stimulus(
                    engine.zone(),
                    engine.zipf(),
                    engine.junk_gen(),
                    &spec,
                    false,
                    &mut rng,
                )
            })
            .collect()
    };
    let shared = SharedCache::with_capacity(resolver::cache::DEFAULT_CAPACITY);
    if cached {
        fleet_walk_batch(&engine, &hists, &stims, &shared, 0);
    }
    Prepared::new(STIMULI as u64, move || {
        if cached {
            fleet_walk_batch(&engine, &hists, &stims, &shared, 1)
        } else {
            let cold = SharedCache::with_capacity(resolver::cache::DEFAULT_CAPACITY);
            fleet_walk_batch(&engine, &hists, &stims, &cold, 1)
        }
    })
}

fn resolver_walks() -> Vec<Scenario> {
    vec![
        Scenario {
            group: "resolver",
            name: "resolve_cold",
            setup: || resolver_scenario(false),
        },
        Scenario {
            group: "resolver",
            name: "resolve_cached",
            setup: || resolver_scenario(true),
        },
    ]
}

// --- fleet (live sockets) -------------------------------------------

/// The end-to-end fleet loop: 16 [`resolver::IterativeResolver`]
/// instances driving 1k vantage queries through a real [`authd`]
/// server over loopback, shared caches and RTT selection live.
fn fleet_live() -> Vec<Scenario> {
    vec![Scenario {
        group: "fleet",
        name: "live_1k",
        setup: || {
            const QUERIES: u64 = 1_000;
            let spec = dataset(Vantage::Nl, 2020);
            let mut config = authd::ServerConfig::for_spec(&spec);
            config.udp_workers = 2;
            config.tcp_workers = 1;
            let server = authd::Server::start(config).expect("server starts");
            let mut fg = authd::FleetgenConfig::new(
                spec,
                Scale::tiny(),
                9,
                server.udp_addr(),
                server.tcp_addr(),
            );
            fg.resolvers = 16;
            fg.workers = 2;
            fg.max_queries = Some(QUERIES);
            Prepared::new(QUERIES, move || {
                // keep the server alive for the whole scenario
                let _ = server.udp_addr();
                let stats = authd::Stats::new();
                let report = authd::run_fleetgen(&fg, &stats).expect("fleetgen runs");
                report.sent
            })
        },
    }]
}

// --- substrates -----------------------------------------------------

fn substrates() -> Vec<Scenario> {
    vec![
        Scenario {
            group: "substrates",
            name: "lpm_trie_45k",
            setup: || {
                use netbase::prefix::IpPrefix;
                use netbase::trie::PrefixTrie;
                use rand::rngs::StdRng;
                use rand::{Rng, SeedableRng};
                use std::net::{IpAddr, Ipv4Addr};
                let mut rng = StdRng::seed_from_u64(1);
                let mut trie = PrefixTrie::new();
                for i in 0..45_000u32 {
                    let len = rng.gen_range(12..=24);
                    let p = IpPrefix::new(IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())), len)
                        .expect("len in range");
                    trie.insert(p, i);
                }
                let probes: Vec<IpAddr> = {
                    let mut rng = StdRng::seed_from_u64(2);
                    (0..1024)
                        .map(|_| IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())))
                        .collect()
                };
                let n = probes.len() as u64;
                Prepared::new(n, move || {
                    probes.iter().filter(|p| trie.lookup(**p).is_some()).count() as u64
                })
            },
        },
        Scenario {
            group: "substrates",
            name: "zone_classify_5.9M",
            setup: || {
                use zonedb::zone::ZoneModel;
                let zone = ZoneModel::nl(5_900_000);
                let qnames: Vec<Name> =
                    (0..256).map(|i| zone.registered_domain(i * 9973)).collect();
                let n = qnames.len() as u64;
                Prepared::new(n, move || {
                    qnames.iter().map(|q| zone.classify(q) as u64).sum()
                })
            },
        },
        Scenario {
            group: "substrates",
            name: "zipf_sample",
            setup: || {
                use rand::rngs::StdRng;
                use rand::SeedableRng;
                use zonedb::popularity::ZipfSampler;
                let zipf = ZipfSampler::new(5_900_000, 0.95);
                let mut rng = StdRng::seed_from_u64(3);
                Prepared::new(1, move || zipf.sample(&mut rng))
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique_and_grouped() {
        let scenarios = all();
        let ids: HashSet<String> = scenarios.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), scenarios.len(), "duplicate scenario ids");
        for required in [
            "wire/message_encode",
            "wire/message_encode_into",
            "wire/message_parse",
            "gen/generate_shard1",
            "gen/generate_shard4",
            "ingest/ingest_and_enrich",
            "pipeline/streamed_shard1",
            "pipeline/streamed_shard4",
            "pipeline/jobs1",
            "pipeline/jobs4",
            "suite/serial",
            "suite/jobs4",
            "analysis/aggregate_rows",
            "analysis/merge",
            "analysis/qmin_cusum",
            "analysis/edns_size",
            "analysis/concentration",
            "warehouse/append",
            "warehouse/scan_full",
            "warehouse/scan_pruned",
            "serve/respond_udp",
            "serve/respond_udp_cached",
            "authd/saturation",
            "authd/saturation_single",
            "resolver/resolve_cold",
            "resolver/resolve_cached",
            "fleet/live_1k",
        ] {
            assert!(ids.contains(required), "missing scenario {required}");
        }
    }

    #[test]
    fn wire_scenarios_run_and_return_nonzero() {
        for s in in_group("wire") {
            let mut p = (s.setup)();
            assert!(p.records_per_iter > 0, "{}: zero records", s.id());
            assert!((p.iter)() > 0, "{}: zero result", s.id());
        }
    }

    #[test]
    fn serve_scenarios_answer_every_query() {
        for s in serve() {
            let mut p = (s.setup)();
            let replies = (p.iter)();
            assert_eq!(replies, p.records_per_iter, "{}: dropped queries", s.id());
        }
    }

    #[test]
    fn saturation_scenarios_absorb_their_bursts() {
        for s in authd_live() {
            let mut p = (s.setup)();
            let served = (p.iter)();
            // UDP on loopback with grown rcvbufs: the burst shouldn't
            // drop anything, but don't make the suite flaky over a
            // stray datagram
            assert!(
                served * 10 >= p.records_per_iter * 9,
                "{}: only {served}/{} queries answered",
                s.id(),
                p.records_per_iter
            );
        }
    }
}

//! Live-serving hot path: decode → authoritative answer → encode.
//!
//! Measures the per-query cost of `authd`'s responder on one thread —
//! i.e. the single-thread ceiling on queries/second — over a realistic
//! query mix sampled from the fleet profiles (delegations, deep names,
//! Q-min NS probes, junk, mixed EDNS sizes).

use authd::respond::{Outcome, Responder};
use bench::quick;
use criterion::{Criterion, Throughput};
use netbase::flow::Transport;
use netbase::time::SimTime;
use simnet::drive::Driver;
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};
use std::net::IpAddr;

fn sample_queries(n: usize) -> Vec<(Vec<u8>, IpAddr)> {
    let spec = dataset(Vantage::Nl, 2020);
    let t = spec.start;
    let mut driver = Driver::new(spec, Scale::tiny(), 42);
    (0..n)
        .map(|_| {
            let q = driver.sample(t);
            (q.wire, q.src)
        })
        .collect()
}

fn benches(c: &mut Criterion) {
    let responder = Responder::for_spec(&dataset(Vantage::Nl, 2020));
    let queries = sample_queries(512);
    let now = SimTime(0);

    let mut group = c.benchmark_group("serve");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("respond_udp_qps", |b| {
        b.iter(|| {
            let mut replies = 0u64;
            for (wire, src) in &queries {
                match responder.handle(wire, Transport::Udp, *src, now, None) {
                    Outcome::Reply { .. } => replies += 1,
                    Outcome::RrlDrop | Outcome::Malformed => {}
                }
            }
            replies
        });
    });
    group.bench_function("respond_tcp_qps", |b| {
        b.iter(|| {
            let mut replies = 0u64;
            for (wire, src) in &queries {
                match responder.handle(wire, Transport::Tcp, *src, now, None) {
                    Outcome::Reply { .. } => replies += 1,
                    Outcome::RrlDrop | Outcome::Malformed => {}
                }
            }
            replies
        });
    });
    group.finish();
}

fn main() {
    let mut c = quick();
    benches(&mut c);
    c.final_summary();
}

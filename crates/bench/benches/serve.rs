//! Live-serving hot path: decode → authoritative answer → encode.
//!
//! Measures the per-query cost of `authd`'s responder on one thread —
//! i.e. the single-thread ceiling on queries/second — over a realistic
//! query mix sampled from the fleet profiles (delegations, deep names,
//! Q-min NS probes, junk, mixed EDNS sizes). `respond_udp_cached` runs
//! the same mix through the per-worker response cache the UDP workers
//! use in production.
//!
//! The scenario bodies live in [`bench::scenarios`] so the criterion
//! harness and `dnscentral bench` time identical code.

use bench::{bench_scenario_group, quick};

fn main() {
    let mut c = quick();
    bench_scenario_group(&mut c, "serve");
    c.final_summary();
}

//! Wire-codec throughput: name and message encode/decode, EDNS.

use bench::quick;
use criterion::{BatchSize, Criterion};
use dns_wire::builder::MessageBuilder;
use dns_wire::message::Message;
use dns_wire::name::{Name, NameCompressor};
use dns_wire::rdata::RData;
use dns_wire::types::{RType, Rcode};

fn sample_names() -> Vec<Name> {
    (0..64)
        .map(|i| {
            format!(
                "{}.example{}.nl.",
                zonedb::names::encode_label(i * 977),
                i % 7
            )
            .parse()
            .expect("generated names parse")
        })
        .collect()
}

fn sample_response() -> Message {
    let qname: Name = "www.bankexample.nl.".parse().expect("static");
    let q = MessageBuilder::query(77, qname.clone(), RType::A)
        .with_edns(1232, true)
        .build();
    MessageBuilder::response(&q, Rcode::NoError)
        .authority(
            "bankexample.nl.".parse().expect("static"),
            3600,
            RData::Ns("ns1.bankexample.nl.".parse().expect("static")),
        )
        .authority(
            "bankexample.nl.".parse().expect("static"),
            3600,
            RData::Ns("ns2.bankexample.nl.".parse().expect("static")),
        )
        .authority(
            "bankexample.nl.".parse().expect("static"),
            3600,
            RData::Ds {
                key_tag: 1,
                algorithm: 8,
                digest_type: 2,
                digest: vec![9; 32],
            },
        )
        .additional(
            "ns1.bankexample.nl.".parse().expect("static"),
            3600,
            RData::A("192.0.2.1".parse().expect("static")),
        )
        .build()
}

fn benches(c: &mut Criterion) {
    let names = sample_names();
    c.bench_function("wire/name_parse", |b| {
        let wires: Vec<Vec<u8>> = names
            .iter()
            .map(|n| {
                let mut v = Vec::new();
                n.encode_uncompressed(&mut v);
                v
            })
            .collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % wires.len();
            Name::parse(&wires[i], 0).expect("valid")
        });
    });

    c.bench_function("wire/name_encode_compressed", |b| {
        b.iter_batched(
            || (NameCompressor::new(), Vec::with_capacity(2048)),
            |(mut comp, mut out)| {
                for n in &names {
                    comp.encode(n, &mut out);
                }
                out
            },
            BatchSize::SmallInput,
        );
    });

    let resp = sample_response();
    c.bench_function("wire/message_encode", |b| {
        b.iter(|| resp.encode().expect("encodes"));
    });

    let bytes = resp.encode().expect("encodes");
    c.bench_function("wire/message_parse", |b| {
        b.iter(|| Message::parse(&bytes).expect("parses"));
    });

    c.bench_function("wire/encode_with_limit_truncating", |b| {
        b.iter(|| resp.encode_with_limit(100 + bytes.len() / 2).expect("fits"));
    });
}

fn main() {
    let mut c = quick();
    benches(&mut c);
    c.final_summary();
}

//! Analysis-pass throughput: row aggregation and the four report
//! builders (Q-min CUSUM, EDNS size CDF, junk ratios, concentration).
//!
//! The scenario bodies live in [`bench::scenarios`] so the criterion
//! harness and `dnscentral bench` time identical code.

use bench::{bench_scenario_group, quick};

fn main() {
    let mut c = quick();
    bench_scenario_group(&mut c, "analysis");
    c.final_summary();
}

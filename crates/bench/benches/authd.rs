//! End-to-end UDP saturation through real sockets: closed-loop bursts
//! against a running `authd::Server` on loopback, RRL slipping instead
//! of dropping so every query drains one reply.
//!
//! `authd/saturation` runs the sharded socket plane (`SO_REUSEPORT` +
//! `recvmmsg`/`sendmmsg` on Linux); `authd/saturation_single` forces
//! the single-socket `try_clone` fallback on the same worker count —
//! the pair is the aggregate-qps win of sharding.
//!
//! The scenario bodies live in [`bench::scenarios`] so the criterion
//! harness and `dnscentral bench` time identical code.

use bench::{bench_scenario_group, quick};

fn main() {
    let mut c = quick();
    bench_scenario_group(&mut c, "authd");
    c.final_summary();
}

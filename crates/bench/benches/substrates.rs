//! Substrate throughput: LPM lookups, zone classification, popularity
//! sampling, resolver caches, distinct counting.
//!
//! The LPM/classify/Zipf bodies live in [`bench::scenarios`] (shared
//! with `dnscentral bench`); the cache, distinct-counter, and full
//! resolver-walk benches are criterion-only and stay inline.

use bench::{bench_scenario_group, quick};
use criterion::Criterion;
use entrada::agg::{DistinctCounter, HyperLogLog};
use netbase::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::cache::{CacheKey, TtlCache};

fn benches(c: &mut Criterion) {
    c.bench_function("substrates/ttl_cache_lookup_insert", |b| {
        let mut cache = TtlCache::new(4096);
        let mut rng = StdRng::seed_from_u64(4);
        let mut now = SimTime::from_unix_secs(0);
        b.iter(|| {
            now += SimDuration::from_millis(50);
            let key = CacheKey {
                domain: rng.gen_range(0..8192),
                rtype: 1,
            };
            if !cache.lookup(key, now) {
                cache.insert(key, now, SimDuration::from_secs(3600));
            }
        });
    });

    c.bench_function("substrates/distinct_exact_observe", |b| {
        let mut d: DistinctCounter<u64> = DistinctCounter::new();
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| d.observe(rng.gen_range(0..2_000_000u64)));
    });

    c.bench_function("substrates/distinct_hll_observe", |b| {
        let mut h = HyperLogLog::new(12);
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| h.observe(&rng.gen_range(0..2_000_000u64)));
    });

    // full iterative resolution walks (cold cache each iteration)
    for (label, qmin) in [("resolve_classic", false), ("resolve_qmin", true)] {
        c.bench_function(&format!("substrates/{label}"), |b| {
            b.iter_batched(
                || {
                    (
                        resolver::hierarchy::sample_world(),
                        resolver::IterativeResolver::new(resolver::ResolverConfig {
                            qmin,
                            ..Default::default()
                        }),
                    )
                },
                |(mut net, mut r)| {
                    r.resolve(
                        &mut net,
                        &"www.example.nl.".parse().unwrap(),
                        dns_wire::types::RType::A,
                    )
                    .expect("resolves")
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
}

fn main() {
    let mut c = quick();
    bench_scenario_group(&mut c, "substrates");
    benches(&mut c);
    c.final_summary();
}

//! Substrate throughput: LPM lookups, zone classification, popularity
//! sampling, resolver caches, distinct counting.

use bench::quick;
use criterion::Criterion;
use entrada::agg::{DistinctCounter, HyperLogLog};
use netbase::prefix::IpPrefix;
use netbase::time::{SimDuration, SimTime};
use netbase::trie::PrefixTrie;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::cache::{CacheKey, TtlCache};
use std::net::{IpAddr, Ipv4Addr};
use zonedb::popularity::ZipfSampler;
use zonedb::zone::ZoneModel;

fn build_trie(n: u32) -> PrefixTrie<u32> {
    let mut rng = StdRng::seed_from_u64(1);
    let mut trie = PrefixTrie::new();
    for i in 0..n {
        let len = rng.gen_range(12..=24);
        let p =
            IpPrefix::new(IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())), len).expect("len in range");
        trie.insert(p, i);
    }
    trie
}

fn benches(c: &mut Criterion) {
    // the paper-scale table: ~40k+ origin prefixes
    let trie = build_trie(45_000);
    let probes: Vec<IpAddr> = {
        let mut rng = StdRng::seed_from_u64(2);
        (0..1024)
            .map(|_| IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())))
            .collect()
    };
    c.bench_function("substrates/lpm_trie_45k", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probes.len();
            trie.lookup(probes[i])
        });
    });

    let zone = ZoneModel::nl(5_900_000);
    let qnames: Vec<dns_wire::name::Name> =
        (0..256).map(|i| zone.registered_domain(i * 9973)).collect();
    c.bench_function("substrates/zone_classify_5.9M", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % qnames.len();
            zone.classify(&qnames[i])
        });
    });

    let zipf = ZipfSampler::new(5_900_000, 0.95);
    c.bench_function("substrates/zipf_sample", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| zipf.sample(&mut rng));
    });

    c.bench_function("substrates/ttl_cache_lookup_insert", |b| {
        let mut cache = TtlCache::new(4096);
        let mut rng = StdRng::seed_from_u64(4);
        let mut now = SimTime::from_unix_secs(0);
        b.iter(|| {
            now += SimDuration::from_millis(50);
            let key = CacheKey {
                domain: rng.gen_range(0..8192),
                rtype: 1,
            };
            if !cache.lookup(key, now) {
                cache.insert(key, now, SimDuration::from_secs(3600));
            }
        });
    });

    c.bench_function("substrates/distinct_exact_observe", |b| {
        let mut d: DistinctCounter<u64> = DistinctCounter::new();
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| d.observe(rng.gen_range(0..2_000_000u64)));
    });

    c.bench_function("substrates/distinct_hll_observe", |b| {
        let mut h = HyperLogLog::new(12);
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| h.observe(&rng.gen_range(0..2_000_000u64)));
    });

    // full iterative resolution walks (cold cache each iteration)
    for (label, qmin) in [("resolve_classic", false), ("resolve_qmin", true)] {
        c.bench_function(&format!("substrates/{label}"), |b| {
            b.iter_batched(
                || {
                    (
                        resolver::hierarchy::sample_world(),
                        resolver::IterativeResolver::new(resolver::ResolverConfig {
                            qmin,
                            ..Default::default()
                        }),
                    )
                },
                |(mut net, mut r)| {
                    r.resolve(
                        &mut net,
                        &"www.example.nl.".parse().unwrap(),
                        dns_wire::types::RType::A,
                    )
                    .expect("resolves")
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
}

fn main() {
    let mut c = quick();
    benches(&mut c);
    c.final_summary();
}

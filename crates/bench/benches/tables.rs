//! Exhibit regenerators, tables: each bench rebuilds one table of the
//! paper from a shared pipeline run, printing the rows once (stderr) and
//! timing the table's analysis stage.

use bench::{quick, shared_broot2020, shared_nl2020};
use criterion::Criterion;
use dnscentral_core::{metrics, report, transport};

/// Setup-time exhibit dump (runs once per bench binary invocation).
fn print_once(what: &str, body: &str) {
    eprintln!("\n--- regenerated {what} ---\n{body}");
}

fn benches(c: &mut Criterion) {
    // Table 1 is static ground truth.
    print_once("Table 1", &report::render_table1());
    c.bench_function("tables/table1_render", |b| b.iter(report::render_table1));

    let nl = shared_nl2020();
    let broot = shared_broot2020();

    // Table 3: dataset summaries.
    let summaries = vec![
        metrics::dataset_summary(&nl.id, &nl.analysis),
        metrics::dataset_summary(&broot.id, &broot.analysis),
    ];
    print_once("Table 3 (scaled)", &report::render_table3(&summaries));
    c.bench_function("tables/table3_dataset_summary", |b| {
        b.iter(|| metrics::dataset_summary(&nl.id, &nl.analysis))
    });

    // Table 4: the Google split.
    print_once(
        "Table 4 (scaled)",
        &report::render_table4(&[metrics::google_split(&nl.id, &nl.analysis)]),
    );
    c.bench_function("tables/table4_google_split", |b| {
        b.iter(|| metrics::google_split(&nl.id, &nl.analysis))
    });

    // Table 5: transport distribution.
    print_once(
        "Table 5 (scaled)",
        &report::render_table5(&[transport::transport_report(&nl.id, &nl.analysis)]),
    );
    c.bench_function("tables/table5_transport", |b| {
        b.iter(|| transport::transport_report(&nl.id, &nl.analysis))
    });

    // Table 6: resolver families.
    let t6: Vec<(String, transport::ResolverFamilyRow)> = [
        asdb::cloud::Provider::Amazon,
        asdb::cloud::Provider::Microsoft,
    ]
    .iter()
    .map(|&p| (nl.id.clone(), transport::resolver_families(&nl.analysis, p)))
    .collect();
    print_once("Table 6 (scaled)", &report::render_table6(&t6));
    c.bench_function("tables/table6_resolver_families", |b| {
        b.iter(|| transport::resolver_families(&nl.analysis, asdb::cloud::Provider::Amazon))
    });

    // Table 2 is scenario configuration; render it from the specs.
    c.bench_function("tables/table2_zone_specs", |b| {
        b.iter(|| {
            use simnet::profile::Vantage;
            use simnet::scenario::dataset;
            let mut acc = 0u64;
            for v in [Vantage::Nl, Vantage::Nz] {
                for y in [2018u16, 2019, 2020] {
                    let spec = dataset(v, y);
                    acc += spec.servers.len() as u64 + spec.total_queries % 97;
                }
            }
            acc
        })
    });
}

fn main() {
    let mut c = quick();
    benches(&mut c);
    c.final_summary();
}

//! End-to-end pipeline throughput: generation, ingestion, and the
//! fused streamed pipeline (1 vs 4 shards) against the historical
//! two-pass file round-trip.
//!
//! The scenario bodies live in [`bench::scenarios`] so the criterion
//! harness and `dnscentral bench` time identical code.

use bench::{bench_scenario_group, quick};

fn main() {
    let mut c = quick();
    bench_scenario_group(&mut c, "gen");
    bench_scenario_group(&mut c, "ingest");
    bench_scenario_group(&mut c, "pipeline");
    c.final_summary();
}

//! End-to-end pipeline throughput: generation, ingestion, analysis.

use bench::{quick, sample_capture_bytes};
use criterion::{BatchSize, Criterion, Throughput};
use dnscentral_core::analysis::DatasetAnalysis;
use entrada::enrich::Enricher;
use entrada::ingest::CaptureIngest;
use netbase::capture::{CaptureReader, CaptureWriter};
use simnet::engine::{plan_config_for, Engine};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};

fn benches(c: &mut Criterion) {
    // generation throughput (queries/sec): one tiny B-Root day
    let spec = dataset(Vantage::BRoot, 2020);
    let engine = Engine::new(spec.clone(), Scale::tiny(), 3);
    let total = engine.scaled_total();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(total));
    group.bench_function("generate_broot_tiny", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(4 << 20);
            let mut w = CaptureWriter::new(&mut buf).expect("writer");
            engine.generate(&mut w).expect("generation");
            w.finish().expect("flush");
            buf.len()
        });
    });

    // ingestion throughput over a fixed capture
    let capture = sample_capture_bytes();
    let nz = dataset(Vantage::Nz, 2020);
    group.throughput(Throughput::Bytes(capture.len() as u64));
    group.bench_function("ingest_and_enrich", |b| {
        b.iter_batched(
            || {
                let plan =
                    asdb::synth::InternetPlan::build(&plan_config_for(&nz, Scale::tiny(), 7));
                Enricher::new(plan.mapper)
            },
            |enricher| {
                let reader = CaptureReader::new(&capture[..]).expect("valid header");
                CaptureIngest::new(reader, enricher).count()
            },
            BatchSize::PerIteration,
        );
    });

    // analysis (aggregation) throughput over pre-ingested rows
    let rows: Vec<entrada::schema::QueryRow> = {
        let plan = asdb::synth::InternetPlan::build(&plan_config_for(&nz, Scale::tiny(), 7));
        let reader = CaptureReader::new(&capture[..]).expect("valid header");
        CaptureIngest::new(reader, Enricher::new(plan.mapper)).collect()
    };
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("aggregate_rows", |b| {
        let zone = nz.zone.build();
        b.iter(|| {
            let mut analysis = DatasetAnalysis::new(zone.clone());
            for row in &rows {
                analysis.push(row);
            }
            analysis.total_queries
        });
    });
    group.finish();
}

fn main() {
    let mut c = quick();
    benches(&mut c);
    c.final_summary();
}

//! End-to-end pipeline throughput: generation, ingestion, analysis.

use bench::{quick, sample_capture_bytes};
use criterion::{BatchSize, Criterion, Throughput};
use dnscentral_core::analysis::DatasetAnalysis;
use dnscentral_core::experiments::{analyze_capture, generate_capture, temp_capture_path};
use dnscentral_core::pipeline::{run_spec_with, PipelineOpts};
use entrada::enrich::Enricher;
use entrada::ingest::CaptureIngest;
use netbase::capture::{CaptureReader, CaptureWriter};
use simnet::engine::{plan_config_for, Engine};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};

fn benches(c: &mut Criterion) {
    // generation throughput (queries/sec): one tiny B-Root day
    let spec = dataset(Vantage::BRoot, 2020);
    let engine = Engine::new(spec.clone(), Scale::tiny(), 3);
    let total = engine.scaled_total();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(total));
    group.bench_function("generate_broot_tiny", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(4 << 20);
            let mut w = CaptureWriter::new(&mut buf).expect("writer");
            engine.generate(&mut w).expect("generation");
            w.finish().expect("flush");
            buf.len()
        });
    });

    // ingestion throughput over a fixed capture
    let capture = sample_capture_bytes();
    let nz = dataset(Vantage::Nz, 2020);
    group.throughput(Throughput::Bytes(capture.len() as u64));
    group.bench_function("ingest_and_enrich", |b| {
        b.iter_batched(
            || {
                let plan =
                    asdb::synth::InternetPlan::build(&plan_config_for(&nz, Scale::tiny(), 7));
                Enricher::new(plan.mapper)
            },
            |enricher| {
                let reader = CaptureReader::new(&capture[..]).expect("valid header");
                CaptureIngest::new(reader, enricher).count()
            },
            BatchSize::PerIteration,
        );
    });

    // analysis (aggregation) throughput over pre-ingested rows
    let rows: Vec<entrada::schema::QueryRow> = {
        let plan = asdb::synth::InternetPlan::build(&plan_config_for(&nz, Scale::tiny(), 7));
        let reader = CaptureReader::new(&capture[..]).expect("valid header");
        CaptureIngest::new(reader, Enricher::new(plan.mapper)).collect()
    };
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("aggregate_rows", |b| {
        let zone = nz.zone.build();
        b.iter(|| {
            let mut analysis = DatasetAnalysis::new(zone.clone());
            for row in &rows {
                analysis.push(row);
            }
            analysis.total_queries
        });
    });
    group.finish();

    // end-to-end dataset runs: the historical two-pass file round-trip
    // against the fused streamed pipeline, single- and multi-shard —
    // the before/after for the pipeline-fusion change.
    let e2e = dataset(Vantage::Nz, 2020);
    let e2e_total = Engine::new(e2e.clone(), Scale::tiny(), 5).scaled_total();
    let mut group = c.benchmark_group("e2e");
    group.throughput(Throughput::Elements(e2e_total));
    group.bench_function("file_roundtrip", |b| {
        b.iter(|| {
            let path = temp_capture_path("bench-e2e", 5);
            generate_capture(&e2e, Scale::tiny(), 5, &path).expect("generate");
            let out = analyze_capture(&e2e, Scale::tiny(), 5, &path).expect("analyze");
            let _ = std::fs::remove_file(&path);
            out.0.total_queries
        });
    });
    group.bench_function("streamed_shard1", |b| {
        b.iter(|| {
            run_spec_with(e2e.clone(), Scale::tiny(), 5, &PipelineOpts::with_shards(1))
                .analysis
                .total_queries
        });
    });
    group.bench_function("streamed_shard4", |b| {
        b.iter(|| {
            run_spec_with(e2e.clone(), Scale::tiny(), 5, &PipelineOpts::with_shards(4))
                .analysis
                .total_queries
        });
    });
    group.finish();
}

fn main() {
    let mut c = quick();
    benches(&mut c);
    c.final_summary();
}

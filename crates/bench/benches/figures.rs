//! Exhibit regenerators, figures: Figures 1-6 from shared pipeline
//! runs; the series is printed once, the analysis stage is timed.

use bench::{quick, shared_broot2020, shared_nl2020};
use criterion::Criterion;
use dnscentral_core::experiments::run_monthly_series;
use dnscentral_core::qmin::{detect_cusum, detect_threshold};
use dnscentral_core::{ednssize, junk, metrics, report};
use simnet::profile::Vantage;
use simnet::scenario::Scale;
use std::net::IpAddr;

fn print_once(what: &str, body: &str) {
    eprintln!("\n--- regenerated {what} ---\n{body}");
}

fn benches(c: &mut Criterion) {
    let nl = shared_nl2020();
    let broot = shared_broot2020();

    // Figure 1: cloud shares.
    let shares = vec![
        metrics::cloud_share(&nl.id, &nl.analysis),
        metrics::cloud_share(&broot.id, &broot.analysis),
    ];
    print_once("Figure 1 (scaled)", &report::render_fig1(&shares));
    c.bench_function("figures/fig1_cloud_share", |b| {
        b.iter(|| metrics::cloud_share(&nl.id, &nl.analysis))
    });

    // Figure 2: qtype mixes.
    let mixes: Vec<_> = asdb::cloud::ALL_PROVIDERS
        .iter()
        .map(|&p| metrics::qtype_mix(&nl.id, &nl.analysis, Some(p)))
        .collect();
    print_once("Figure 2 (scaled)", &report::render_fig2(&mixes));
    c.bench_function("figures/fig2_qtype_mix", |b| {
        b.iter(|| metrics::qtype_mix(&nl.id, &nl.analysis, Some(asdb::cloud::Provider::Google)))
    });

    // Figure 3: the monthly series + change-point detection.
    let series = run_monthly_series(Vantage::Nl, Scale::tiny(), 42);
    let detected = detect_cusum(&series, 0.05, 0.3);
    print_once(
        "Figure 3 (scaled)",
        &report::render_fig3(".nl", &series, detected),
    );
    c.bench_function("figures/fig3_changepoint_cusum", |b| {
        b.iter(|| detect_cusum(&series, 0.05, 0.3))
    });
    c.bench_function("figures/fig3_changepoint_threshold", |b| {
        b.iter(|| detect_threshold(&series, 0.15))
    });

    // Figure 4: junk ratios.
    let junks = vec![
        junk::junk_report(&nl.id, &nl.analysis),
        junk::junk_report(&broot.id, &broot.analysis),
    ];
    print_once("Figure 4 (scaled)", &report::render_fig4(&junks));
    c.bench_function("figures/fig4_junk", |b| {
        b.iter(|| junk::junk_report(&nl.id, &nl.analysis))
    });

    // Figures 5/8: the Facebook site analysis needs mutable access for
    // medians; rebuild a small run for it.
    let run = dnscentral_core::experiments::run_dataset(Vantage::Nl, 2020, Scale::tiny(), 42);
    let server_a: IpAddr = run.spec.servers[0].v4.into();
    let server_b: IpAddr = run.spec.servers[1].v4.into();
    let sites_a = run.dualstack.report_for_server(server_a);
    let sites_b = run.dualstack.report_for_server(server_b);
    print_once(
        "Figure 5 (scaled, server A)",
        &report::render_fig5("nl-A", &sites_a),
    );
    print_once(
        "Figure 8 (scaled, server B)",
        &report::render_fig5("nl-B", &sites_b),
    );
    c.bench_function("figures/fig5_site_report", |b| {
        b.iter(|| run.dualstack.report_for_server(server_a))
    });

    // Figure 6: EDNS CDFs.
    let reports = ednssize::edns_report(&run.analysis);
    print_once("Figure 6 (scaled)", &report::render_fig6(&reports));
    c.bench_function("figures/fig6_edns_cdf", |b| {
        b.iter(|| ednssize::edns_report_for(&run.analysis, asdb::cloud::Provider::Facebook))
    });
}

fn main() {
    let mut c = quick();
    benches(&mut c);
    c.final_summary();
}

//! Ablations of the design choices DESIGN.md §6 calls out:
//!
//! - name compression on/off (message size & encode cost)
//! - LPM trie vs linear-scan baseline
//! - resolver-cache TTL sweep (miss-rate funnel, cf. "Cache Me If You Can")
//! - exact vs HyperLogLog distinct counting (memory/accuracy trade)
//! - CUSUM vs threshold change-point detection under noise

use bench::quick;
use criterion::Criterion;
use dns_wire::builder::MessageBuilder;
use dns_wire::rdata::RData;
use dns_wire::types::{RType, Rcode};
use entrada::agg::{DistinctCounter, HyperLogLog};
use netbase::prefix::IpPrefix;
use netbase::time::{SimDuration, SimTime};
use netbase::trie::{LinearLpm, PrefixTrie};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::cache::{CacheKey, TtlCache};
use std::net::{IpAddr, Ipv4Addr};
use zonedb::popularity::ZipfSampler;

/// Compression ablation: the same referral encoded with the compressor
/// vs each name spelled out.
fn compression(c: &mut Criterion) {
    let zone: dns_wire::name::Name = "nl.".parse().expect("static");
    let delegation = zone.child(b"bigdelegation").expect("short label");
    let mut builder = MessageBuilder::query(1, delegation.child(b"www").expect("x"), RType::A)
        .with_edns(4096, true);
    builder = MessageBuilder::response(&builder.build(), Rcode::NoError);
    let mut b = builder;
    for i in 0..4u8 {
        let ns = delegation
            .child(format!("ns{i}").as_bytes())
            .expect("short");
        b = b.authority(delegation.clone(), 3600, RData::Ns(ns.clone()));
        b = b.additional(ns, 3600, RData::A(Ipv4Addr::new(192, 0, 2, i)));
    }
    let msg = b.build();
    let compressed = msg.encode().expect("encodes").len();
    // uncompressed size: sum of naive encodings
    let mut naive = 12usize;
    for q in &msg.questions {
        naive += q.qname.wire_len() + 4;
    }
    for r in msg
        .answers
        .iter()
        .chain(&msg.authorities)
        .chain(&msg.additionals)
    {
        naive += r.name.wire_len() + 10;
        naive += match &r.rdata {
            RData::Ns(n) => n.wire_len(),
            RData::A(_) => 4,
            _ => 16,
        };
    }
    eprintln!(
        "\n--- ablation: name compression ---\nreferral size: {compressed} B compressed vs ~{naive} B naive ({}% saved)",
        100 - compressed * 100 / naive.max(1)
    );
    c.bench_function("ablations/encode_with_compression", |be| {
        be.iter(|| msg.encode().expect("encodes"))
    });
}

/// LPM ablation: trie vs longest-first linear scan at 45k prefixes.
fn lpm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut trie = PrefixTrie::new();
    let mut linear = LinearLpm::new();
    for i in 0..45_000u32 {
        let len = rng.gen_range(12..=24);
        let p =
            IpPrefix::new(IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())), len).expect("len in range");
        if trie.get(&p).is_none() {
            trie.insert(p, i);
            linear.insert(p, i);
        }
    }
    let probes: Vec<IpAddr> = (0..512)
        .map(|_| IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())))
        .collect();
    c.bench_function("ablations/lpm_trie", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probes.len();
            trie.lookup(probes[i])
        })
    });
    c.bench_function("ablations/lpm_linear_scan", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probes.len();
            linear.lookup(probes[i]).map(|(p, v)| (*p, *v))
        })
    });
}

/// Cache-TTL sweep: the resolver-to-authoritative miss funnel the
/// vantage points live behind. Prints hit ratio per TTL.
fn cache_ttl(c: &mut Criterion) {
    let zipf = ZipfSampler::new(100_000, 0.95);
    eprintln!("\n--- ablation: resolver cache TTL vs hit ratio ---");
    for ttl_secs in [60u64, 600, 3600, 86_400] {
        let mut cache = TtlCache::new(65_536);
        let mut rng = StdRng::seed_from_u64(9);
        let mut now = SimTime::from_unix_secs(0);
        for _ in 0..200_000 {
            now += SimDuration::from_millis(30);
            let key = CacheKey {
                domain: zipf.sample(&mut rng),
                rtype: 1,
            };
            if !cache.lookup(key, now) {
                cache.insert(key, now, SimDuration::from_secs(ttl_secs));
            }
        }
        eprintln!("TTL {ttl_secs:>6}s -> hit ratio {:.3}", cache.hit_ratio());
    }
    c.bench_function("ablations/cache_funnel_3600s", |b| {
        let mut cache = TtlCache::new(65_536);
        let mut rng = StdRng::seed_from_u64(10);
        let mut now = SimTime::from_unix_secs(0);
        b.iter(|| {
            now += SimDuration::from_millis(30);
            let key = CacheKey {
                domain: zipf.sample(&mut rng),
                rtype: 1,
            };
            if !cache.lookup(key, now) {
                cache.insert(key, now, SimDuration::from_secs(3600));
            }
        })
    });
}

/// Distinct-counting ablation: exact set vs HLL at Table 3 scale.
fn distinct(c: &mut Criterion) {
    let n = 500_000u64;
    let mut exact = DistinctCounter::new();
    let mut hll = HyperLogLog::new(12);
    for i in 0..n {
        exact.observe(i);
        hll.observe(&i);
    }
    let err = (hll.estimate() - n as f64).abs() / n as f64;
    eprintln!(
        "\n--- ablation: distinct resolvers ---\nexact: {} entries (~{} MB set), HLL: {} B, error {:.2}%",
        exact.count(),
        exact.count() * 8 / 1_000_000,
        hll.memory_bytes(),
        err * 100.0
    );
    c.bench_function("ablations/distinct_exact", |b| {
        let mut d = DistinctCounter::new();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            d.observe(i % 1_000_000)
        })
    });
    c.bench_function("ablations/distinct_hll", |b| {
        let mut h = HyperLogLog::new(12);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            h.observe(&(i % 1_000_000))
        })
    });
}

/// Detector ablation: CUSUM vs threshold on noisy series; prints the
/// detection outcome per noise level.
fn detectors(c: &mut Criterion) {
    use bench::scenarios::qmin_series as make_series;
    use dnscentral_core::qmin::{detect_cusum, detect_threshold};
    eprintln!("\n--- ablation: change-point detectors under noise ---");
    for noise in [0.01, 0.05, 0.10, 0.18] {
        let mut cusum_hits = 0;
        let mut thresh_hits = 0;
        for seed in 0..50 {
            let s = make_series(noise, seed);
            if detect_cusum(&s, 0.05, 0.3).is_some_and(|cp| (cp.year, cp.month) == (2019, 12)) {
                cusum_hits += 1;
            }
            if detect_threshold(&s, 0.15).is_some_and(|cp| (cp.year, cp.month) == (2019, 12)) {
                thresh_hits += 1;
            }
        }
        eprintln!(
            "noise ±{noise:.2}: CUSUM {cusum_hits}/50 exact, threshold {thresh_hits}/50 exact"
        );
    }
    let series = make_series(0.05, 7);
    c.bench_function("ablations/detector_cusum", |b| {
        b.iter(|| detect_cusum(&series, 0.05, 0.3))
    });
    c.bench_function("ablations/detector_threshold", |b| {
        b.iter(|| detect_threshold(&series, 0.15))
    });
}

/// Row-struct vec vs dictionary-encoded columnar batch: memory and
/// scan speed over the same ingested rows.
fn columnar(c: &mut Criterion) {
    use entrada::table::ColumnarBatch;
    let capture = bench::sample_capture_bytes();
    let nz = simnet::scenario::dataset(simnet::profile::Vantage::Nz, 2020);
    let plan = asdb::synth::InternetPlan::build(&simnet::engine::plan_config_for(
        &nz,
        simnet::scenario::Scale::tiny(),
        7,
    ));
    let rows: Vec<entrada::schema::QueryRow> = entrada::ingest::CaptureIngest::new(
        netbase::capture::CaptureReader::new(&capture[..]).expect("valid"),
        entrada::enrich::Enricher::new(plan.mapper),
    )
    .collect();
    let mut batch = ColumnarBatch::new();
    for r in &rows {
        batch.push(r);
    }
    let row_bytes: usize =
        rows.len() * (std::mem::size_of::<entrada::schema::QueryRow>() + 24/* avg name heap */);
    eprintln!(
        "\n--- ablation: row structs vs columnar batch ---\n{} rows: ~{} KB as structs, {} KB columnar ({} distinct qnames)",
        rows.len(),
        row_bytes / 1024,
        batch.memory_bytes() / 1024,
        batch.dictionary_size()
    );
    c.bench_function("ablations/scan_row_structs", |b| {
        b.iter(|| rows.iter().filter(|r| r.is_junk()).count())
    });
    c.bench_function("ablations/scan_columnar", |b| {
        b.iter(|| batch.iter().filter(|r| r.is_junk()).count())
    });
}

fn main() {
    let mut c = quick();
    compression(&mut c);
    lpm(&mut c);
    cache_ttl(&mut c);
    distinct(&mut c);
    detectors(&mut c);
    columnar(&mut c);
    c.final_summary();
}

//! Networking substrate shared by the simulator and the analytics
//! pipeline: simulated time with calendar math, IP prefixes,
//! longest-prefix-match tries, transport flows, and the `.dnscap`
//! capture-record format that decouples traffic generation from
//! traffic analysis.
//!
//! Nothing here is DNS-specific; `dns-wire` handles the payload format.
//! The split mirrors the paper's setup, where pcap collection at the
//! authoritative servers is a separate layer from the ENTRADA warehouse
//! that analyzes it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
pub mod flow;
pub mod packet;
pub mod pcap;
pub mod prefix;
pub mod time;
pub mod trie;

pub use capture::{CaptureReader, CaptureRecord, CaptureWriter, Direction};
pub use flow::{FlowKey, Transport};
pub use prefix::IpPrefix;
pub use time::{CivilDate, SimDuration, SimTime};
pub use trie::PrefixTrie;

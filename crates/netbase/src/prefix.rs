//! IP prefixes (CIDR blocks) over both address families.

use core::fmt;
use core::str::FromStr;
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// An IPv4 or IPv6 prefix in CIDR notation, stored normalized (host bits
/// zeroed), so `10.1.2.3/8` and `10.0.0.0/8` compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IpPrefix {
    addr: IpAddr,
    len: u8,
}

/// Errors from [`IpPrefix`] construction and parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length exceeds the family maximum (32 or 128).
    LengthOutOfRange,
    /// The text was not `addr/len`.
    Syntax,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange => write!(f, "prefix length out of range"),
            PrefixError::Syntax => write!(f, "expected addr/len"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl IpPrefix {
    /// Build a prefix; host bits of `addr` are masked off.
    pub fn new(addr: IpAddr, len: u8) -> Result<Self, PrefixError> {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        if len > max {
            return Err(PrefixError::LengthOutOfRange);
        }
        Ok(IpPrefix {
            addr: mask_addr(addr, len),
            len,
        })
    }

    /// Convenience v4 constructor.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        IpPrefix::new(IpAddr::V4(Ipv4Addr::new(a, b, c, d)), len)
            .expect("v4 length <= 32 enforced by caller")
    }

    /// The (masked) network address.
    pub fn network(&self) -> IpAddr {
        self.addr
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length catch-all (`0.0.0.0/0` or `::/0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if this is an IPv4 prefix.
    pub fn is_ipv4(&self) -> bool {
        self.addr.is_ipv4()
    }

    /// True when `ip` (same family) falls inside this prefix.
    pub fn contains(&self, ip: IpAddr) -> bool {
        match (self.addr, ip) {
            (IpAddr::V4(net), IpAddr::V4(host)) => {
                let m = mask_v4(self.len);
                u32::from(host) & m == u32::from(net)
            }
            (IpAddr::V6(net), IpAddr::V6(host)) => {
                let m = mask_v6(self.len);
                u128::from(host) & m == u128::from(net)
            }
            _ => false,
        }
    }

    /// True when `other` is fully inside `self` (same family, longer or
    /// equal length, matching network bits).
    pub fn covers(&self, other: &IpPrefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The significant bits of the network address, MSB first.
    pub fn bits(&self) -> PrefixBits {
        PrefixBits {
            value: addr_bits(self.addr),
            len: self.len,
            pos: 0,
        }
    }

    /// Number of host addresses if IPv4 (saturating), for capacity math.
    pub fn v4_size(&self) -> u64 {
        match self.addr {
            IpAddr::V4(_) => 1u64 << (32 - self.len as u32),
            IpAddr::V6(_) => u64::MAX,
        }
    }

    /// The `i`-th host address inside an IPv4 prefix (wrapping within the
    /// block). Panics on IPv6 (use [`IpPrefix::v6_host`]).
    pub fn v4_host(&self, i: u64) -> Ipv4Addr {
        match self.addr {
            IpAddr::V4(net) => {
                let span = 1u64 << (32 - self.len as u32);
                Ipv4Addr::from(u32::from(net).wrapping_add((i % span) as u32))
            }
            IpAddr::V6(_) => panic!("v4_host on an IPv6 prefix"),
        }
    }

    /// The `i`-th host address inside an IPv6 prefix (wrapping within the
    /// low 64 bits of the block). Panics on IPv4.
    pub fn v6_host(&self, i: u64) -> Ipv6Addr {
        match self.addr {
            IpAddr::V6(net) => Ipv6Addr::from(u128::from(net) | i as u128),
            IpAddr::V4(_) => panic!("v6_host on an IPv4 prefix"),
        }
    }
}

/// Iterator over the network bits of a prefix, most significant first.
pub struct PrefixBits {
    value: u128,
    len: u8,
    pos: u8,
}

impl Iterator for PrefixBits {
    type Item = bool;
    fn next(&mut self) -> Option<bool> {
        if self.pos >= self.len {
            return None;
        }
        let bit = (self.value >> (127 - self.pos)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }
}

/// Address bits left-aligned into a u128 (IPv4 occupies the top 32 bits).
pub fn addr_bits(addr: IpAddr) -> u128 {
    match addr {
        IpAddr::V4(v4) => (u32::from(v4) as u128) << 96,
        IpAddr::V6(v6) => u128::from(v6),
    }
}

fn mask_v4(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

fn mask_v6(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

fn mask_addr(addr: IpAddr, len: u8) -> IpAddr {
    match addr {
        IpAddr::V4(v4) => IpAddr::V4(Ipv4Addr::from(u32::from(v4) & mask_v4(len))),
        IpAddr::V6(v6) => IpAddr::V6(Ipv6Addr::from(u128::from(v6) & mask_v6(len))),
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for IpPrefix {
    type Err = PrefixError;
    fn from_str(s: &str) -> Result<Self, PrefixError> {
        let (addr, len) = s.split_once('/').ok_or(PrefixError::Syntax)?;
        let addr: IpAddr = addr.parse().map_err(|_| PrefixError::Syntax)?;
        let len: u8 = len.parse().map_err(|_| PrefixError::Syntax)?;
        IpPrefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(p("8.8.8.0/24").to_string(), "8.8.8.0/24");
        assert_eq!(p("2001:4860::/32").to_string(), "2001:4860::/32");
        assert!("8.8.8.0".parse::<IpPrefix>().is_err());
        assert!("8.8.8.0/33".parse::<IpPrefix>().is_err());
        assert!("::/129".parse::<IpPrefix>().is_err());
        assert!("banana/8".parse::<IpPrefix>().is_err());
    }

    #[test]
    fn normalization() {
        assert_eq!(p("10.1.2.3/8"), p("10.0.0.0/8"));
        assert_eq!(p("2001:db8::1/32"), p("2001:db8::/32"));
    }

    #[test]
    fn containment() {
        let g = p("8.8.8.0/24");
        assert!(g.contains("8.8.8.8".parse().unwrap()));
        assert!(!g.contains("8.8.9.8".parse().unwrap()));
        assert!(!g.contains("2001:db8::1".parse().unwrap()), "cross-family");
        let all = p("0.0.0.0/0");
        assert!(all.contains("255.255.255.255".parse().unwrap()));
        let h = p("192.0.2.1/32");
        assert!(h.contains("192.0.2.1".parse().unwrap()));
        assert!(!h.contains("192.0.2.2".parse().unwrap()));
    }

    #[test]
    fn covers_relation() {
        assert!(p("10.0.0.0/8").covers(&p("10.20.0.0/16")));
        assert!(p("10.0.0.0/8").covers(&p("10.0.0.0/8")));
        assert!(!p("10.20.0.0/16").covers(&p("10.0.0.0/8")));
        assert!(!p("11.0.0.0/8").covers(&p("10.0.0.0/16")));
    }

    #[test]
    fn bit_iteration() {
        let bits: Vec<bool> = p("192.0.0.0/4").bits().collect();
        assert_eq!(bits, vec![true, true, false, false]);
        let v6: Vec<bool> = p("8000::/2").bits().collect();
        assert_eq!(v6, vec![true, false]);
        assert_eq!(p("0.0.0.0/0").bits().count(), 0);
    }

    #[test]
    fn host_enumeration() {
        let net = p("198.51.100.0/24");
        assert_eq!(net.v4_size(), 256);
        assert_eq!(net.v4_host(0), "198.51.100.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(
            net.v4_host(255),
            "198.51.100.255".parse::<Ipv4Addr>().unwrap()
        );
        assert_eq!(net.v4_host(256), net.v4_host(0), "wraps");
        let v6 = p("2001:db8::/64");
        assert_eq!(v6.v6_host(5), "2001:db8::5".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    #[should_panic(expected = "v4_host on an IPv6 prefix")]
    fn v4_host_on_v6_panics() {
        p("2001:db8::/64").v4_host(0);
    }
}

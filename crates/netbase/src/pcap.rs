//! Classic libpcap-format export: materialize `.dnscap` records as an
//! Ethernet/IP/UDP(TCP) packet capture that tcpdump and Wireshark open
//! directly.
//!
//! The paper's inputs were pcaps; our capture format keeps only what
//! analysis needs. This module closes the loop for interoperability:
//! every record becomes one link-layer frame with synthetic MACs,
//! correct IP headers and valid transport checksums. TCP records are
//! emitted as a single PSH+ACK segment carrying the already-framed
//! DNS-over-TCP payload — enough for packet tools to dissect the DNS
//! layer (full handshake emulation is out of scope and noted in the
//! file header comment).

use crate::capture::{CaptureRecord, Direction};
use crate::flow::Transport;
use crate::packet;
use std::io::{self, Write};
use std::net::IpAddr;

/// pcap magic, microsecond timestamps, little-endian.
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// Link type LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
    frames: u64,
    ident: u16,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&PCAP_MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // major
        out.write_all(&4u16.to_le_bytes())?; // minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter {
            out,
            frames: 0,
            ident: 1,
        })
    }

    /// Convert and append one capture record.
    pub fn write_record(&mut self, rec: &CaptureRecord) -> io::Result<()> {
        let frame = self.build_frame(rec);
        let ts = rec.timestamp.as_micros();
        self.out
            .write_all(&((ts / 1_000_000) as u32).to_le_bytes())?;
        self.out
            .write_all(&((ts % 1_000_000) as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&frame)?;
        self.frames += 1;
        Ok(())
    }

    /// Frames written.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// Flush and return the writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }

    fn build_frame(&mut self, rec: &CaptureRecord) -> Vec<u8> {
        // stable synthetic MACs: resolver side 02:…, server side 06:…
        let (src_mac, dst_mac) = match rec.direction {
            Direction::Query => ([0x02, 0, 0, 0, 0, 1], [0x06, 0, 0, 0, 0, 1]),
            Direction::Response => ([0x06, 0, 0, 0, 0, 1], [0x02, 0, 0, 0, 0, 1]),
        };
        let mut transport = Vec::with_capacity(rec.payload.len() + 20);
        match rec.flow.transport {
            Transport::Udp => packet::encode_udp(
                rec.flow.src,
                rec.flow.dst,
                rec.flow.src_port,
                rec.flow.dst_port,
                &rec.payload,
                &mut transport,
            ),
            Transport::Tcp => {
                // one data segment; seq/ack derived from the timestamp so
                // a flow's two directions stay plausible
                let seq = (rec.timestamp.as_micros() & 0xffff_ffff) as u32;
                packet::encode_tcp(
                    rec.flow.src,
                    rec.flow.dst,
                    rec.flow.src_port,
                    rec.flow.dst_port,
                    seq,
                    seq.wrapping_add(1),
                    packet::TcpFlags {
                        syn: false,
                        ack: true,
                        psh: true,
                        fin: false,
                    },
                    &rec.payload,
                    &mut transport,
                );
            }
        }
        let mut frame = Vec::with_capacity(transport.len() + 54);
        match (rec.flow.src, rec.flow.dst) {
            (IpAddr::V4(s), IpAddr::V4(d)) => {
                packet::encode_ethernet(dst_mac, src_mac, packet::ETHERTYPE_IPV4, &mut frame);
                let proto = match rec.flow.transport {
                    Transport::Udp => packet::IPPROTO_UDP,
                    Transport::Tcp => packet::IPPROTO_TCP,
                };
                self.ident = self.ident.wrapping_add(1);
                packet::encode_ipv4(s, d, proto, transport.len(), 60, self.ident, &mut frame);
            }
            (IpAddr::V6(s), IpAddr::V6(d)) => {
                packet::encode_ethernet(dst_mac, src_mac, packet::ETHERTYPE_IPV6, &mut frame);
                let proto = match rec.flow.transport {
                    Transport::Udp => packet::IPPROTO_UDP,
                    Transport::Tcp => packet::IPPROTO_TCP,
                };
                packet::encode_ipv6(s, d, proto, transport.len(), 60, &mut frame);
            }
            _ => unreachable!("flows never mix families"),
        }
        frame.extend_from_slice(&transport);
        frame
    }
}

/// Read back a pcap produced by [`PcapWriter`] (tests / tooling).
pub fn read_pcap(data: &[u8]) -> Option<Vec<(u64, Vec<u8>)>> {
    if data.len() < 24 {
        return None;
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().ok()?);
    if magic != PCAP_MAGIC {
        return None;
    }
    let mut out = Vec::new();
    let mut pos = 24;
    while pos + 16 <= data.len() {
        let secs = u32::from_le_bytes(data[pos..pos + 4].try_into().ok()?) as u64;
        let usecs = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().ok()?) as u64;
        let caplen = u32::from_le_bytes(data[pos + 8..pos + 12].try_into().ok()?) as usize;
        pos += 16;
        if pos + caplen > data.len() {
            return None;
        }
        out.push((secs * 1_000_000 + usecs, data[pos..pos + caplen].to_vec()));
        pos += caplen;
    }
    Some(out)
}

/// Import a pcap into capture records: the reverse direction, so the
/// analysis pipeline can ingest externally captured DNS traffic.
///
/// Direction is inferred from port 53 (queries go *to* 53). TCP
/// handshake RTTs cannot be recovered from single frames and are left
/// at 0; multi-segment TCP streams are not reassembled (frames whose
/// payload is not a whole length-prefixed message will be counted as
/// malformed downstream). Frames that are not UDP/TCP port-53 IP
/// packets are skipped and counted.
pub fn import_pcap(data: &[u8]) -> Option<(Vec<CaptureRecord>, u64)> {
    let frames = read_pcap(data)?;
    let mut out = Vec::with_capacity(frames.len());
    let mut skipped = 0u64;
    for (ts_us, frame) in frames {
        let Some(p) = packet::decode_frame(&frame) else {
            skipped += 1;
            continue;
        };
        let (direction, flow) = if p.dst_port == 53 {
            (
                Direction::Query,
                crate::flow::FlowKey {
                    src: p.src,
                    src_port: p.src_port,
                    dst: p.dst,
                    dst_port: p.dst_port,
                    transport: if p.protocol == packet::IPPROTO_TCP {
                        Transport::Tcp
                    } else {
                        Transport::Udp
                    },
                },
            )
        } else if p.src_port == 53 {
            (
                Direction::Response,
                crate::flow::FlowKey {
                    src: p.src,
                    src_port: p.src_port,
                    dst: p.dst,
                    dst_port: p.dst_port,
                    transport: if p.protocol == packet::IPPROTO_TCP {
                        Transport::Tcp
                    } else {
                        Transport::Udp
                    },
                },
            )
        } else {
            skipped += 1;
            continue;
        };
        if p.payload.is_empty() {
            // bare ACKs and handshake segments carry no DNS
            skipped += 1;
            continue;
        }
        out.push(CaptureRecord {
            timestamp: crate::time::SimTime(ts_us),
            direction,
            flow,
            tcp_rtt_us: 0,
            payload: p.payload,
        });
    }
    Some((out, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::time::SimTime;

    fn rec(tcp: bool, v6: bool, dir: Direction) -> CaptureRecord {
        let query_flow = FlowKey {
            src: if v6 {
                "2a03:2880::9".parse().unwrap()
            } else {
                "31.13.64.9".parse().unwrap()
            },
            src_port: 40000,
            dst: if v6 {
                "2a04:b900::53".parse().unwrap()
            } else {
                "194.0.28.53".parse().unwrap()
            },
            dst_port: 53,
            transport: if tcp { Transport::Tcp } else { Transport::Udp },
        };
        CaptureRecord {
            timestamp: SimTime(1_586_000_123_456_789 / 1000),
            direction: dir,
            // responses travel server->resolver, as the engine writes them
            flow: match dir {
                Direction::Query => query_flow,
                Direction::Response => query_flow.reversed(),
            },
            tcp_rtt_us: if tcp { 20_000 } else { 0 },
            payload: b"\xab\xcd\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00".to_vec(),
        }
    }

    #[test]
    fn pcap_roundtrips_frames() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).unwrap();
            for r in [
                rec(false, false, Direction::Query),
                rec(false, true, Direction::Response),
                rec(true, false, Direction::Query),
                rec(true, true, Direction::Response),
            ] {
                w.write_record(&r).unwrap();
            }
            assert_eq!(w.frames_written(), 4);
            w.finish().unwrap();
        }
        let frames = read_pcap(&buf).expect("valid pcap");
        assert_eq!(frames.len(), 4);
        for (ts, frame) in &frames {
            assert!(*ts > 0);
            let decoded = packet::decode_frame(frame).expect("decodable frame");
            assert!(decoded.dst_port == 53 || decoded.src_port == 53);
            assert!(packet::verify_transport_checksum(frame), "checksums valid");
        }
    }

    #[test]
    fn payload_survives_the_packet_stack() {
        let original = rec(false, false, Direction::Query);
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_record(&original).unwrap();
        w.finish().unwrap();
        let frames = read_pcap(&buf).unwrap();
        let decoded = packet::decode_frame(&frames[0].1).unwrap();
        assert_eq!(decoded.payload, original.payload);
        assert_eq!(decoded.src, original.flow.src);
        assert_eq!(decoded.dst, original.flow.dst);
    }

    #[test]
    fn foreign_bytes_are_not_a_pcap() {
        assert!(read_pcap(b"DNSC\x01\x00").is_none());
        assert!(read_pcap(&[]).is_none());
    }

    #[test]
    fn export_then_import_roundtrips() {
        let originals = vec![
            rec(false, false, Direction::Query),
            rec(false, true, Direction::Response),
            rec(true, false, Direction::Query),
        ];
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        for r in &originals {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();
        let (imported, skipped) = import_pcap(&buf).expect("valid pcap");
        assert_eq!(skipped, 0);
        assert_eq!(imported.len(), originals.len());
        for (got, want) in imported.iter().zip(&originals) {
            assert_eq!(got.direction, want.direction);
            assert_eq!(got.flow, want.flow);
            assert_eq!(got.payload, want.payload);
            assert_eq!(got.timestamp, want.timestamp);
            // the one lossy field: handshake RTTs are not recoverable
            assert_eq!(got.tcp_rtt_us, 0);
        }
    }

    #[test]
    fn import_skips_non_dns_frames() {
        // a UDP frame on unrelated ports
        let mut frame = Vec::new();
        let src: std::net::Ipv4Addr = "10.0.0.1".parse().unwrap();
        let dst: std::net::Ipv4Addr = "10.0.0.2".parse().unwrap();
        let mut udp = Vec::new();
        packet::encode_udp(src.into(), dst.into(), 1000, 2000, b"not dns", &mut udp);
        packet::encode_ethernet([2; 6], [4; 6], packet::ETHERTYPE_IPV4, &mut frame);
        packet::encode_ipv4(src, dst, packet::IPPROTO_UDP, udp.len(), 64, 1, &mut frame);
        frame.extend_from_slice(&udp);
        let mut pcap = Vec::new();
        {
            let mut w = PcapWriter::new(&mut pcap).unwrap();
            w.write_record(&rec(false, false, Direction::Query))
                .unwrap();
            w.finish().unwrap();
        }
        // splice the foreign frame in manually
        pcap.extend_from_slice(&8u32.to_le_bytes()); // ts sec
        pcap.extend_from_slice(&0u32.to_le_bytes()); // ts usec
        pcap.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        pcap.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        pcap.extend_from_slice(&frame);
        let (records, skipped) = import_pcap(&pcap).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(skipped, 1);
    }
}

//! The `.dnscap` capture format: the boundary between traffic generation
//! and traffic analysis.
//!
//! A capture file is a stream of timestamped DNS-over-{UDP,TCP} frames as
//! seen at one authoritative server, the same information a pcap tap at
//! the paper's vantage points yields after link/IP/transport reassembly:
//! addresses, ports, transport, direction, the DNS payload, and — for TCP
//! — the handshake RTT the capture box measured (the paper computes
//! Figure 5's RTTs from TCP handshakes the same way).
//!
//! Format (all integers little-endian):
//!
//! ```text
//! file   := magic(4)="DNSC" version:u16 flags:u16 record*
//! record := len:u32 body
//! body   := ts_us:u64 dir:u8 transport:u8 rtt_us:u32 (0 = unmeasured)
//!           src_ip:ip src_port:u16 dst_ip:ip dst_port:u16
//!           payload_len:u32 payload:bytes
//! ip     := tag:u8 (4|6) octets(4|16)
//! ```

use crate::flow::{FlowKey, Transport};
use crate::time::SimTime;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// File magic.
pub const MAGIC: [u8; 4] = *b"DNSC";
/// Current format version.
pub const VERSION: u16 = 1;

/// Whether a frame travels resolver→authoritative or back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Resolver to authoritative server.
    Query,
    /// Authoritative server to resolver.
    Response,
}

/// One captured frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureRecord {
    /// Capture timestamp.
    pub timestamp: SimTime,
    /// Frame direction.
    pub direction: Direction,
    /// The flow this frame belongs to (src = sender of this frame).
    pub flow: FlowKey,
    /// TCP handshake RTT in microseconds measured by the capture box for
    /// this flow; 0 when unmeasured (all UDP frames).
    pub tcp_rtt_us: u32,
    /// The raw DNS message bytes.
    pub payload: Vec<u8>,
}

/// A borrowed view of one frame, for writers on allocation-free hot
/// paths (authd's capture tap writes these straight off the socket
/// buffers).
#[derive(Debug, Clone, Copy)]
pub struct RecordRef<'a> {
    /// Capture timestamp.
    pub timestamp: SimTime,
    /// Frame direction.
    pub direction: Direction,
    /// The flow this frame belongs to (src = sender of this frame).
    pub flow: FlowKey,
    /// TCP handshake RTT in microseconds; 0 when unmeasured.
    pub tcp_rtt_us: u32,
    /// The raw DNS message bytes.
    pub payload: &'a [u8],
}

impl CaptureRecord {
    /// Borrow this record as a [`RecordRef`].
    pub fn as_ref(&self) -> RecordRef<'_> {
        RecordRef {
            timestamp: self.timestamp,
            direction: self.direction,
            flow: self.flow,
            tcp_rtt_us: self.tcp_rtt_us,
            payload: &self.payload,
        }
    }
}

/// Errors from reading a capture stream.
#[derive(Debug)]
pub enum CaptureError {
    /// Underlying I/O failed.
    Io(io::Error),
    /// Magic or version mismatch.
    BadHeader,
    /// A record was internally inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Io(e) => write!(f, "capture i/o: {e}"),
            CaptureError::BadHeader => write!(f, "not a DNSC capture (bad magic/version)"),
            CaptureError::Corrupt(what) => write!(f, "corrupt capture record: {what}"),
        }
    }
}

impl std::error::Error for CaptureError {}

impl From<io::Error> for CaptureError {
    fn from(e: io::Error) -> Self {
        CaptureError::Io(e)
    }
}

/// Anything that accepts a stream of [`CaptureRecord`]s in order.
///
/// The traffic generator is written against this trait so the same
/// generation code can feed a `.dnscap` file on disk
/// ([`CaptureWriter`]), an in-memory buffer (`Vec<CaptureRecord>`), or
/// a channel into a downstream consumer — the streamed pipeline mode
/// that skips the intermediate capture file entirely.
pub trait RecordSink {
    /// Accept the next record of the stream.
    fn emit(&mut self, rec: CaptureRecord) -> io::Result<()>;

    /// All records of time slice `slot` have been emitted.
    ///
    /// The generator produces traffic in self-contained time slices
    /// (every query/response exchange falls entirely within one slice)
    /// and calls this after each slice's records, in slice order. Sinks
    /// that partition downstream work — the parallel-analysis pipeline
    /// routes whole slices to workers — hook this; file/vector sinks
    /// keep the no-op default.
    fn slice_end(&mut self, slot: u64) -> io::Result<()> {
        let _ = slot;
        Ok(())
    }
}

impl<W: Write> RecordSink for CaptureWriter<W> {
    fn emit(&mut self, rec: CaptureRecord) -> io::Result<()> {
        self.write(&rec)
    }
}

impl RecordSink for Vec<CaptureRecord> {
    fn emit(&mut self, rec: CaptureRecord) -> io::Result<()> {
        self.push(rec);
        Ok(())
    }
}

/// Anything that yields a stream of [`CaptureRecord`]s in order.
///
/// The analysis side (entrada's `CaptureIngest`) is written against
/// this trait so it consumes a capture file ([`CaptureReader`]), an
/// in-memory record vector, or a live channel identically.
pub trait RecordSource {
    /// The next record; `Ok(None)` at clean end-of-stream, `Err` on a
    /// torn or corrupt record (the stream cannot continue past it).
    fn next_record(&mut self) -> Result<Option<CaptureRecord>, CaptureError>;
}

impl<R: Read> RecordSource for CaptureReader<R> {
    fn next_record(&mut self) -> Result<Option<CaptureRecord>, CaptureError> {
        CaptureReader::next_record(self)
    }
}

impl RecordSource for std::vec::IntoIter<CaptureRecord> {
    fn next_record(&mut self) -> Result<Option<CaptureRecord>, CaptureError> {
        Ok(self.next())
    }
}

/// Streaming writer for `.dnscap` data.
pub struct CaptureWriter<W: Write> {
    out: BufWriter<W>,
    records: u64,
    /// Reused body-encode buffer: after warmup, [`write_ref`] performs
    /// zero heap allocations per record.
    ///
    /// [`write_ref`]: CaptureWriter::write_ref
    scratch: Vec<u8>,
}

impl<W: Write> CaptureWriter<W> {
    /// Write the file header and return a ready writer.
    pub fn new(inner: W) -> io::Result<Self> {
        let mut out = BufWriter::new(inner);
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?; // flags, reserved
        Ok(CaptureWriter {
            out,
            records: 0,
            scratch: Vec::new(),
        })
    }

    /// Append one record.
    pub fn write(&mut self, rec: &CaptureRecord) -> io::Result<()> {
        self.write_ref(rec.as_ref())
    }

    /// Append one record from borrowed parts, reusing the internal
    /// encode buffer (no per-record allocation in steady state).
    pub fn write_ref(&mut self, rec: RecordRef<'_>) -> io::Result<()> {
        let body = &mut self.scratch;
        body.clear();
        body.extend_from_slice(&rec.timestamp.as_micros().to_le_bytes());
        body.push(match rec.direction {
            Direction::Query => 0,
            Direction::Response => 1,
        });
        body.push(match rec.flow.transport {
            Transport::Udp => 0,
            Transport::Tcp => 1,
        });
        body.extend_from_slice(&rec.tcp_rtt_us.to_le_bytes());
        write_ip(body, rec.flow.src);
        body.extend_from_slice(&rec.flow.src_port.to_le_bytes());
        write_ip(body, rec.flow.dst);
        body.extend_from_slice(&rec.flow.dst_port.to_le_bytes());
        body.extend_from_slice(&(rec.payload.len() as u32).to_le_bytes());
        body.extend_from_slice(rec.payload);
        self.out.write_all(&(body.len() as u32).to_le_bytes())?;
        self.out.write_all(body)?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flush and return the inner writer.
    pub fn finish(self) -> io::Result<W> {
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

fn write_ip(out: &mut Vec<u8>, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            out.push(4);
            out.extend_from_slice(&v4.octets());
        }
        IpAddr::V6(v6) => {
            out.push(6);
            out.extend_from_slice(&v6.octets());
        }
    }
}

/// Streaming reader for `.dnscap` data.
pub struct CaptureReader<R: Read> {
    input: BufReader<R>,
}

impl<R: Read> CaptureReader<R> {
    /// Validate the file header and return a ready reader.
    pub fn new(inner: R) -> Result<Self, CaptureError> {
        let mut input = BufReader::new(inner);
        let mut header = [0u8; 8];
        input.read_exact(&mut header)?;
        if header[..4] != MAGIC || u16::from_le_bytes([header[4], header[5]]) != VERSION {
            return Err(CaptureError::BadHeader);
        }
        Ok(CaptureReader { input })
    }

    /// Read the next record; `Ok(None)` at clean end-of-stream.
    pub fn next_record(&mut self) -> Result<Option<CaptureRecord>, CaptureError> {
        let mut len_buf = [0u8; 4];
        match self.input.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > 1 << 24 {
            return Err(CaptureError::Corrupt("record length over 16 MiB"));
        }
        let mut body = vec![0u8; len];
        self.input.read_exact(&mut body)?;
        parse_body(&body).map(Some)
    }
}

impl<R: Read> Iterator for CaptureReader<R> {
    type Item = Result<CaptureRecord, CaptureError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

fn parse_body(body: &[u8]) -> Result<CaptureRecord, CaptureError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], CaptureError> {
        if *pos + n > body.len() {
            return Err(CaptureError::Corrupt("short body"));
        }
        let s = &body[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let ts = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    let dir = match take(&mut pos, 1)?[0] {
        0 => Direction::Query,
        1 => Direction::Response,
        _ => return Err(CaptureError::Corrupt("bad direction")),
    };
    let transport = match take(&mut pos, 1)?[0] {
        0 => Transport::Udp,
        1 => Transport::Tcp,
        _ => return Err(CaptureError::Corrupt("bad transport")),
    };
    let rtt = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
    let src = read_ip(body, &mut pos)?;
    let src_port = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
    let dst = read_ip(body, &mut pos)?;
    let dst_port = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
    let plen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let payload = take(&mut pos, plen)?.to_vec();
    if pos != body.len() {
        return Err(CaptureError::Corrupt("trailing bytes"));
    }
    Ok(CaptureRecord {
        timestamp: SimTime(ts),
        direction: dir,
        flow: FlowKey {
            src,
            src_port,
            dst,
            dst_port,
            transport,
        },
        tcp_rtt_us: rtt,
        payload,
    })
}

fn read_ip(body: &[u8], pos: &mut usize) -> Result<IpAddr, CaptureError> {
    let tag = *body.get(*pos).ok_or(CaptureError::Corrupt("short ip"))?;
    *pos += 1;
    match tag {
        4 => {
            if *pos + 4 > body.len() {
                return Err(CaptureError::Corrupt("short v4"));
            }
            let o: [u8; 4] = body[*pos..*pos + 4].try_into().unwrap();
            *pos += 4;
            Ok(IpAddr::V4(Ipv4Addr::from(o)))
        }
        6 => {
            if *pos + 16 > body.len() {
                return Err(CaptureError::Corrupt("short v6"));
            }
            let o: [u8; 16] = body[*pos..*pos + 16].try_into().unwrap();
            *pos += 16;
            Ok(IpAddr::V6(Ipv6Addr::from(o)))
        }
        _ => Err(CaptureError::Corrupt("bad ip tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, tcp: bool) -> CaptureRecord {
        CaptureRecord {
            timestamp: SimTime(ts),
            direction: if ts.is_multiple_of(2) {
                Direction::Query
            } else {
                Direction::Response
            },
            flow: FlowKey {
                src: if tcp {
                    "2001:db8::9".parse().unwrap()
                } else {
                    "192.0.2.9".parse().unwrap()
                },
                src_port: 40000 + ts as u16 % 1000,
                dst: "192.0.2.53".parse().unwrap(),
                dst_port: 53,
                transport: if tcp { Transport::Tcp } else { Transport::Udp },
            },
            tcp_rtt_us: if tcp { 23_500 } else { 0 },
            payload: vec![ts as u8; (ts % 64) as usize + 12],
        }
    }

    #[test]
    fn roundtrip_many_records() {
        let mut buf = Vec::new();
        {
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            for i in 0..100 {
                w.write(&rec(i, i % 3 == 0)).unwrap();
            }
            assert_eq!(w.records_written(), 100);
            w.finish().unwrap();
        }
        let r = CaptureReader::new(&buf[..]).unwrap();
        let records: Result<Vec<_>, _> = r.collect();
        let records = records.unwrap();
        assert_eq!(records.len(), 100);
        for (i, got) in records.iter().enumerate() {
            assert_eq!(got, &rec(i as u64, i % 3 == 0));
        }
    }

    #[test]
    fn write_ref_matches_owned_write() {
        let mut owned = Vec::new();
        let mut borrowed = Vec::new();
        {
            let mut w = CaptureWriter::new(&mut owned).unwrap();
            for i in 0..20 {
                w.write(&rec(i, i % 3 == 0)).unwrap();
            }
            w.finish().unwrap();
        }
        {
            let mut w = CaptureWriter::new(&mut borrowed).unwrap();
            for i in 0..20 {
                let r = rec(i, i % 3 == 0);
                w.write_ref(r.as_ref()).unwrap();
            }
            assert_eq!(w.records_written(), 20);
            w.finish().unwrap();
        }
        assert_eq!(owned, borrowed, "borrowed writes are byte-identical");
    }

    #[test]
    fn empty_capture_is_valid() {
        let mut buf = Vec::new();
        CaptureWriter::new(&mut buf).unwrap().finish().unwrap();
        let mut r = CaptureReader::new(&buf[..]).unwrap();
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"PCAP\x01\x00\x00\x00".to_vec();
        assert!(matches!(
            CaptureReader::new(&buf[..]),
            Err(CaptureError::BadHeader)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            CaptureReader::new(&buf[..]),
            Err(CaptureError::BadHeader)
        ));
    }

    #[test]
    fn truncated_record_is_io_error_not_panic() {
        let mut buf = Vec::new();
        {
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            w.write(&rec(7, true)).unwrap();
            w.finish().unwrap();
        }
        // chop the last 5 bytes
        buf.truncate(buf.len() - 5);
        let mut r = CaptureReader::new(&buf[..]).unwrap();
        assert!(r.next_record().is_err());
    }

    #[test]
    fn corrupt_direction_detected() {
        let mut buf = Vec::new();
        {
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            w.write(&rec(4, false)).unwrap();
            w.finish().unwrap();
        }
        // direction byte lives at header(8) + len(4) + ts(8)
        buf[8 + 4 + 8] = 9;
        let mut r = CaptureReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_record(), Err(CaptureError::Corrupt(_))));
    }

    #[test]
    fn oversized_record_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        let mut r = CaptureReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_record(), Err(CaptureError::Corrupt(_))));
    }

    #[test]
    fn trailing_garbage_in_body_detected() {
        let mut buf = Vec::new();
        {
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            w.write(&rec(2, false)).unwrap();
            w.finish().unwrap();
        }
        // extend the declared record length by 1 and append a byte
        let len_at = 8;
        let old = u32::from_le_bytes(buf[len_at..len_at + 4].try_into().unwrap());
        buf.splice(len_at..len_at + 4, (old + 1).to_le_bytes());
        buf.push(0xaa);
        let mut r = CaptureReader::new(&buf[..]).unwrap();
        assert!(matches!(
            r.next_record(),
            Err(CaptureError::Corrupt("trailing bytes"))
        ));
    }
}

//! Longest-prefix-match binary tries over [`IpPrefix`] keys.
//!
//! One trie holds both families (IPv4 bits are left-aligned into the
//! 128-bit key space but families never collide because lookups walk the
//! family's own root). This is the substrate for IP→AS mapping at
//! 40k+ prefixes, the scale the paper's vantage points observe.

use crate::prefix::{addr_bits, IpPrefix};
use std::net::IpAddr;

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<(IpPrefix, V)>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn empty() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A binary LPM trie mapping prefixes to values.
#[derive(Clone)]
pub struct PrefixTrie<V> {
    root_v4: Node<V>,
    root_v6: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root_v4: Node::empty(),
            root_v6: Node::empty(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `prefix -> value`; returns the previous value if the exact
    /// prefix was already present.
    pub fn insert(&mut self, prefix: IpPrefix, value: V) -> Option<V> {
        let root = if prefix.is_ipv4() {
            &mut self.root_v4
        } else {
            &mut self.root_v6
        };
        let mut node = root;
        for bit in prefix.bits() {
            let idx = usize::from(bit);
            node = node.children[idx].get_or_insert_with(|| Box::new(Node::empty()));
        }
        let old = node.value.replace((prefix, value));
        if old.is_none() {
            self.len += 1;
        }
        old.map(|(_, v)| v)
    }

    /// Longest-prefix match for `ip`: the most-specific stored prefix
    /// containing it, with its value.
    pub fn lookup(&self, ip: IpAddr) -> Option<(&IpPrefix, &V)> {
        let (root, max_bits) = match ip {
            IpAddr::V4(_) => (&self.root_v4, 32u8),
            IpAddr::V6(_) => (&self.root_v6, 128u8),
        };
        let bits = addr_bits(ip);
        let mut node = root;
        let mut best: Option<&(IpPrefix, V)> = node.value.as_ref();
        for depth in 0..max_bits {
            let bit = (bits >> (127 - depth)) & 1;
            match &node.children[bit as usize] {
                Some(child) => {
                    node = child;
                    if node.value.is_some() {
                        best = node.value.as_ref();
                    }
                }
                None => break,
            }
        }
        best.map(|(p, v)| (p, v))
    }

    /// Exact-match retrieval.
    pub fn get(&self, prefix: &IpPrefix) -> Option<&V> {
        let root = if prefix.is_ipv4() {
            &self.root_v4
        } else {
            &self.root_v6
        };
        let mut node = root;
        for bit in prefix.bits() {
            node = node.children[usize::from(bit)].as_deref()?;
        }
        match &node.value {
            Some((p, v)) if p == prefix => Some(v),
            _ => None,
        }
    }

    /// Visit every `(prefix, value)` pair (order: v4 pre-order, then v6).
    pub fn for_each<'a>(&'a self, mut f: impl FnMut(&'a IpPrefix, &'a V)) {
        fn walk<'a, V>(node: &'a Node<V>, f: &mut impl FnMut(&'a IpPrefix, &'a V)) {
            if let Some((p, v)) = &node.value {
                f(p, v);
            }
            for child in node.children.iter().flatten() {
                walk(child, f);
            }
        }
        walk(&self.root_v4, &mut f);
        walk(&self.root_v6, &mut f);
    }

    /// Collect all stored pairs into a vec (mainly for tests/reports).
    pub fn entries(&self) -> Vec<(&IpPrefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|p, v| out.push((p, v)));
        out
    }
}

/// A baseline LPM implementation for the ablation bench and differential
/// testing: sorted vec scanned from longest to shortest length.
pub struct LinearLpm<V> {
    entries: Vec<(IpPrefix, V)>,
    sorted: bool,
}

impl<V> Default for LinearLpm<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> LinearLpm<V> {
    /// An empty table.
    pub fn new() -> Self {
        LinearLpm {
            entries: Vec::new(),
            sorted: true,
        }
    }

    /// Add an entry (duplicates replace on next `lookup` by length order).
    pub fn insert(&mut self, prefix: IpPrefix, value: V) {
        self.entries.push((prefix, value));
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // longest prefixes first so the first hit is the best match
            self.entries.sort_by_key(|e| std::cmp::Reverse(e.0.len()));
            self.sorted = true;
        }
    }

    /// Longest-prefix match by linear scan.
    pub fn lookup(&mut self, ip: IpAddr) -> Option<(&IpPrefix, &V)> {
        self.ensure_sorted();
        self.entries
            .iter()
            .find(|(p, _)| p.contains(ip))
            .map(|(p, v)| (p, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t: PrefixTrie<u32> = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("8.8.8.8")), None);
        assert_eq!(t.lookup(ip("2001:db8::1")), None);
    }

    #[test]
    fn longest_match_wins() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.20.0.0/16"), 16);
        t.insert(p("10.20.30.0/24"), 24);
        assert_eq!(t.lookup(ip("10.20.30.40")).unwrap().1, &24);
        assert_eq!(t.lookup(ip("10.20.99.1")).unwrap().1, &16);
        assert_eq!(t.lookup(ip("10.99.99.1")).unwrap().1, &8);
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn families_are_disjoint() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "v4");
        t.insert(p("::/0"), "v6");
        assert_eq!(t.lookup(ip("1.2.3.4")).unwrap().1, &"v4");
        assert_eq!(t.lookup(ip("2001:db8::1")).unwrap().1, &"v6");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn default_route_as_fallback() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("192.0.2.0/24"), 1);
        assert_eq!(t.lookup(ip("192.0.2.9")).unwrap().1, &1);
        assert_eq!(t.lookup(ip("8.8.8.8")).unwrap().1, &0);
    }

    #[test]
    fn insert_replaces_exact() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn exact_get_does_not_aggregate() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.get(&p("10.0.0.0/16")), None);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&1));
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(p("8.8.8.8/32"), "dns");
        t.insert(p("2001:4860:4860::8888/128"), "dns6");
        assert_eq!(t.lookup(ip("8.8.8.8")).unwrap().1, &"dns");
        assert_eq!(t.lookup(ip("8.8.8.9")), None);
        assert_eq!(t.lookup(ip("2001:4860:4860::8888")).unwrap().1, &"dns6");
    }

    #[test]
    fn v6_deep_prefixes() {
        let mut t = PrefixTrie::new();
        t.insert(p("2a00:1450::/29"), "goog");
        t.insert(p("2a00:1450:4000::/36"), "goog-eu");
        assert_eq!(t.lookup(ip("2a00:1450:4013::5e")).unwrap().1, &"goog-eu");
        assert_eq!(t.lookup(ip("2a00:1450:c000::1")).unwrap().1, &"goog");
    }

    #[test]
    fn entries_visits_all() {
        let mut t = PrefixTrie::new();
        for (i, s) in ["1.0.0.0/8", "2.0.0.0/8", "2001:db8::/32"]
            .iter()
            .enumerate()
        {
            t.insert(p(s), i);
        }
        let mut got: Vec<String> = t.entries().iter().map(|(p, _)| p.to_string()).collect();
        got.sort();
        assert_eq!(got, vec!["1.0.0.0/8", "2.0.0.0/8", "2001:db8::/32"]);
    }

    #[test]
    fn trie_agrees_with_linear_baseline() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut trie = PrefixTrie::new();
        let mut linear = LinearLpm::new();
        for i in 0..500u32 {
            let len = rng.gen_range(8..=28);
            let addr = std::net::Ipv4Addr::from(rng.gen::<u32>());
            let pfx = IpPrefix::new(IpAddr::V4(addr), len).unwrap();
            // skip duplicate prefixes so both structures agree on values
            if trie.get(&pfx).is_none() {
                trie.insert(pfx, i);
                linear.insert(pfx, i);
            }
        }
        for _ in 0..2000 {
            let probe = IpAddr::V4(std::net::Ipv4Addr::from(rng.gen::<u32>()));
            let a = trie.lookup(probe).map(|(p, v)| (*p, *v));
            let b = linear.lookup(probe).map(|(p, v)| (*p, *v));
            // linear returns *a* longest match; lengths must agree, and if
            // unique so must the entries
            match (a, b) {
                (None, None) => {}
                (Some((pa, _)), Some((pb, _))) => {
                    assert_eq!(pa.len(), pb.len(), "probe {probe}");
                }
                other => panic!("disagreement on {probe}: {other:?}"),
            }
        }
    }
}

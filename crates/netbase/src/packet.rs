//! Packet-header codecs: Ethernet II, IPv4, IPv6, UDP and TCP, with
//! real Internet checksums — enough to materialize a captured DNS
//! exchange as bytes any packet tool can decode (see [`crate::pcap`]).
//!
//! Encoding is smoltcp-flavoured: plain functions over byte buffers, no
//! allocation tricks, every field explicit. Decoding supports the
//! subset the tests verify round-trips.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86dd;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;

/// The Internet checksum (RFC 1071) over `data`, with an initial sum
/// (for pseudo-headers).
pub fn internet_checksum(data: &[u8], initial: u32) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Sum (not folded) of a byte slice, for pseudo-header accumulation.
fn partial_sum(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    sum
}

/// Append an Ethernet II header.
pub fn encode_ethernet(dst: [u8; 6], src: [u8; 6], ethertype: u16, out: &mut Vec<u8>) {
    out.extend_from_slice(&dst);
    out.extend_from_slice(&src);
    out.extend_from_slice(&ethertype.to_be_bytes());
}

/// Append an IPv4 header (no options) for a payload of `payload_len`
/// bytes carried by `protocol`. Header checksum is computed.
pub fn encode_ipv4(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    payload_len: usize,
    ttl: u8,
    ident: u16,
    out: &mut Vec<u8>,
) {
    let total_len = 20 + payload_len;
    let start = out.len();
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP/ECN
    out.extend_from_slice(&(total_len as u16).to_be_bytes());
    out.extend_from_slice(&ident.to_be_bytes());
    out.extend_from_slice(&0x4000u16.to_be_bytes()); // DF
    out.push(ttl);
    out.push(protocol);
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&src.octets());
    out.extend_from_slice(&dst.octets());
    let csum = internet_checksum(&out[start..start + 20], 0);
    out[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());
}

/// Append an IPv6 header.
pub fn encode_ipv6(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    next_header: u8,
    payload_len: usize,
    hop_limit: u8,
    out: &mut Vec<u8>,
) {
    out.extend_from_slice(&0x6000_0000u32.to_be_bytes()); // version 6
    out.extend_from_slice(&(payload_len as u16).to_be_bytes());
    out.push(next_header);
    out.push(hop_limit);
    out.extend_from_slice(&src.octets());
    out.extend_from_slice(&dst.octets());
}

/// The transport pseudo-header sum for checksums.
fn pseudo_header_sum(src: IpAddr, dst: IpAddr, protocol: u8, transport_len: usize) -> u32 {
    let mut sum = 0u32;
    match (src, dst) {
        (IpAddr::V4(s), IpAddr::V4(d)) => {
            sum += partial_sum(&s.octets());
            sum += partial_sum(&d.octets());
        }
        (IpAddr::V6(s), IpAddr::V6(d)) => {
            sum += partial_sum(&s.octets());
            sum += partial_sum(&d.octets());
        }
        _ => unreachable!("mixed-family flow"),
    }
    sum += protocol as u32;
    sum += transport_len as u32;
    sum
}

/// Append a UDP header + payload with a correct checksum.
pub fn encode_udp(
    src: IpAddr,
    dst: IpAddr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let len = 8 + payload.len();
    let start = out.len();
    out.extend_from_slice(&src_port.to_be_bytes());
    out.extend_from_slice(&dst_port.to_be_bytes());
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(payload);
    let pseudo = pseudo_header_sum(src, dst, IPPROTO_UDP, len);
    let mut csum = internet_checksum(&out[start..], pseudo);
    if csum == 0 {
        csum = 0xffff; // RFC 768: transmitted as all-ones
    }
    out[start + 6..start + 8].copy_from_slice(&csum.to_be_bytes());
}

/// Minimal TCP flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// PSH.
    pub psh: bool,
    /// FIN.
    pub fin: bool,
}

impl TcpFlags {
    fn bits(self) -> u8 {
        (self.fin as u8)
            | ((self.syn as u8) << 1)
            | ((self.psh as u8) << 3)
            | ((self.ack as u8) << 4)
    }
}

/// Append a TCP header (no options) + payload with a correct checksum.
#[allow(clippy::too_many_arguments)]
pub fn encode_tcp(
    src: IpAddr,
    dst: IpAddr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let len = 20 + payload.len();
    let start = out.len();
    out.extend_from_slice(&src_port.to_be_bytes());
    out.extend_from_slice(&dst_port.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&ack.to_be_bytes());
    out.push(5 << 4); // data offset 5 words
    out.push(flags.bits());
    out.extend_from_slice(&0xffffu16.to_be_bytes()); // window
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&[0, 0]); // urgent
    out.extend_from_slice(payload);
    let pseudo = pseudo_header_sum(src, dst, IPPROTO_TCP, len);
    let csum = internet_checksum(&out[start..], pseudo);
    out[start + 16..start + 18].copy_from_slice(&csum.to_be_bytes());
}

/// A decoded packet summary (enough for tests and tooling).
#[derive(Debug, PartialEq, Eq)]
pub struct DecodedPacket {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// IP protocol / next header.
    pub protocol: u8,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport payload (after UDP/TCP header).
    pub payload: Vec<u8>,
}

/// Decode an Ethernet frame produced by this module.
pub fn decode_frame(frame: &[u8]) -> Option<DecodedPacket> {
    if frame.len() < 14 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    let (src, dst, protocol, transport): (IpAddr, IpAddr, u8, &[u8]) = match ethertype {
        ETHERTYPE_IPV4 => {
            let ip = &frame[14..];
            if ip.len() < 20 || ip[0] >> 4 != 4 {
                return None;
            }
            let ihl = ((ip[0] & 0x0f) as usize) * 4;
            let total = u16::from_be_bytes([ip[2], ip[3]]) as usize;
            if ip.len() < total || total < ihl {
                return None;
            }
            let src = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
            let dst = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
            (src.into(), dst.into(), ip[9], &ip[ihl..total])
        }
        ETHERTYPE_IPV6 => {
            let ip = &frame[14..];
            if ip.len() < 40 || ip[0] >> 4 != 6 {
                return None;
            }
            let plen = u16::from_be_bytes([ip[4], ip[5]]) as usize;
            if ip.len() < 40 + plen {
                return None;
            }
            let mut s = [0u8; 16];
            s.copy_from_slice(&ip[8..24]);
            let mut d = [0u8; 16];
            d.copy_from_slice(&ip[24..40]);
            (
                Ipv6Addr::from(s).into(),
                Ipv6Addr::from(d).into(),
                ip[6],
                &ip[40..40 + plen],
            )
        }
        _ => return None,
    };
    match protocol {
        IPPROTO_UDP => {
            if transport.len() < 8 {
                return None;
            }
            Some(DecodedPacket {
                src,
                dst,
                protocol,
                src_port: u16::from_be_bytes([transport[0], transport[1]]),
                dst_port: u16::from_be_bytes([transport[2], transport[3]]),
                payload: transport[8..].to_vec(),
            })
        }
        IPPROTO_TCP => {
            if transport.len() < 20 {
                return None;
            }
            let off = ((transport[12] >> 4) as usize) * 4;
            if transport.len() < off {
                return None;
            }
            Some(DecodedPacket {
                src,
                dst,
                protocol,
                src_port: u16::from_be_bytes([transport[0], transport[1]]),
                dst_port: u16::from_be_bytes([transport[2], transport[3]]),
                payload: transport[off..].to_vec(),
            })
        }
        _ => None,
    }
}

/// Verify the transport checksum of a decoded frame (tests).
pub fn verify_transport_checksum(frame: &[u8]) -> bool {
    let Some(p) = decode_frame(frame) else {
        return false;
    };
    // re-extract the raw transport bytes
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    let transport: &[u8] = match ethertype {
        ETHERTYPE_IPV4 => {
            let ip = &frame[14..];
            let ihl = ((ip[0] & 0x0f) as usize) * 4;
            let total = u16::from_be_bytes([ip[2], ip[3]]) as usize;
            &ip[ihl..total]
        }
        ETHERTYPE_IPV6 => {
            let ip = &frame[14..];
            let plen = u16::from_be_bytes([ip[4], ip[5]]) as usize;
            &ip[40..40 + plen]
        }
        _ => return false,
    };
    let pseudo = pseudo_header_sum(p.src, p.dst, p.protocol, transport.len());
    // a valid checksum makes the folded sum over the whole segment zero
    internet_checksum(transport, pseudo) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_rfc1071_example() {
        // classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2 -> !0xddf2
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data, 0), !0xddf2u16);
    }

    #[test]
    fn odd_length_checksum() {
        let even = internet_checksum(&[0xab, 0xcd, 0xef, 0x00], 0);
        let odd = internet_checksum(&[0xab, 0xcd, 0xef], 0);
        assert_eq!(even, odd, "trailing zero pad");
    }

    #[test]
    fn udp_v4_frame_roundtrips_and_checksums() {
        let src: Ipv4Addr = "192.0.2.9".parse().unwrap();
        let dst: Ipv4Addr = "194.0.28.53".parse().unwrap();
        let payload = b"dns bytes here";
        let mut udp = Vec::new();
        encode_udp(src.into(), dst.into(), 5353, 53, payload, &mut udp);
        let mut frame = Vec::new();
        encode_ethernet([2; 6], [4; 6], ETHERTYPE_IPV4, &mut frame);
        encode_ipv4(src, dst, IPPROTO_UDP, udp.len(), 64, 7, &mut frame);
        frame.extend_from_slice(&udp);

        let decoded = decode_frame(&frame).expect("decodes");
        assert_eq!(decoded.src, IpAddr::V4(src));
        assert_eq!(decoded.dst, IpAddr::V4(dst));
        assert_eq!(decoded.src_port, 5353);
        assert_eq!(decoded.dst_port, 53);
        assert_eq!(decoded.payload, payload);
        assert!(verify_transport_checksum(&frame), "UDP checksum valid");
    }

    #[test]
    fn udp_v6_frame_roundtrips_and_checksums() {
        let src: Ipv6Addr = "2a03:2880::1".parse().unwrap();
        let dst: Ipv6Addr = "2a04:b900::53".parse().unwrap();
        let payload = vec![0xaa; 33]; // odd length
        let mut udp = Vec::new();
        encode_udp(src.into(), dst.into(), 40000, 53, &payload, &mut udp);
        let mut frame = Vec::new();
        encode_ethernet([2; 6], [4; 6], ETHERTYPE_IPV6, &mut frame);
        encode_ipv6(src, dst, IPPROTO_UDP, udp.len(), 64, &mut frame);
        frame.extend_from_slice(&udp);
        let decoded = decode_frame(&frame).expect("decodes");
        assert_eq!(decoded.payload, payload);
        assert!(verify_transport_checksum(&frame));
    }

    #[test]
    fn tcp_frame_roundtrips_and_checksums() {
        let src: Ipv4Addr = "31.13.64.7".parse().unwrap();
        let dst: Ipv4Addr = "194.0.28.53".parse().unwrap();
        let payload = b"\x00\x05hello"; // framed DNS
        let mut tcp = Vec::new();
        encode_tcp(
            src.into(),
            dst.into(),
            40001,
            53,
            1000,
            2000,
            TcpFlags {
                syn: false,
                ack: true,
                psh: true,
                fin: false,
            },
            payload,
            &mut tcp,
        );
        let mut frame = Vec::new();
        encode_ethernet([2; 6], [4; 6], ETHERTYPE_IPV4, &mut frame);
        encode_ipv4(src, dst, IPPROTO_TCP, tcp.len(), 64, 8, &mut frame);
        frame.extend_from_slice(&tcp);
        let decoded = decode_frame(&frame).expect("decodes");
        assert_eq!(decoded.protocol, IPPROTO_TCP);
        assert_eq!(decoded.payload, payload);
        assert!(verify_transport_checksum(&frame));
    }

    #[test]
    fn ipv4_header_checksum_is_valid() {
        let src: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let dst: Ipv4Addr = "10.0.0.2".parse().unwrap();
        let mut buf = Vec::new();
        encode_ipv4(src, dst, IPPROTO_UDP, 100, 64, 42, &mut buf);
        assert_eq!(internet_checksum(&buf[..20], 0), 0, "folded sum is zero");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let src: Ipv4Addr = "192.0.2.9".parse().unwrap();
        let dst: Ipv4Addr = "194.0.28.53".parse().unwrap();
        let mut udp = Vec::new();
        encode_udp(src.into(), dst.into(), 5353, 53, b"payload", &mut udp);
        let mut frame = Vec::new();
        encode_ethernet([2; 6], [4; 6], ETHERTYPE_IPV4, &mut frame);
        encode_ipv4(src, dst, IPPROTO_UDP, udp.len(), 64, 7, &mut frame);
        frame.extend_from_slice(&udp);
        assert!(verify_transport_checksum(&frame));
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        assert!(!verify_transport_checksum(&frame));
    }

    #[test]
    fn short_and_foreign_frames_rejected() {
        assert_eq!(decode_frame(&[]), None);
        assert_eq!(decode_frame(&[0; 13]), None);
        let mut arp = Vec::new();
        encode_ethernet([2; 6], [4; 6], 0x0806, &mut arp);
        arp.extend_from_slice(&[0; 28]);
        assert_eq!(decode_frame(&arp), None);
    }
}

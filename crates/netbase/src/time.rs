//! Simulated time: a microsecond tick since the Unix epoch, durations,
//! and proleptic-Gregorian calendar math for the paper's week/month
//! bucketing (w2018 = Nov 4-10 2018, monthly series Nov 2018 - Apr 2020).
//!
//! No wall clock is used anywhere in the workspace; all timestamps are
//! simulation artifacts, which keeps every run reproducible.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

/// An instant in simulated time: microseconds since 1970-01-01T00:00:00Z.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }
    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }
    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }
    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }
    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }
    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000_000)
    }

    /// As microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// As (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
    /// As (truncated) seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }
    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by a float factor, saturating at zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k).max(0.0) as u64)
    }
}

impl SimTime {
    /// Construct from seconds since the epoch.
    pub const fn from_unix_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from a civil UTC date at midnight.
    pub fn from_date(year: i32, month: u32, day: u32) -> Self {
        let days = days_from_civil(year, month, day);
        debug_assert!(days >= 0, "pre-epoch dates unsupported");
        SimTime(days as u64 * 86_400_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// Seconds since the epoch (truncated).
    pub const fn as_unix_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The civil UTC date containing this instant.
    pub fn civil_date(self) -> CivilDate {
        let days = (self.0 / 86_400_000_000) as i64;
        civil_from_days(days)
    }

    /// Seconds elapsed since UTC midnight of the same day.
    pub fn seconds_of_day(self) -> u64 {
        (self.0 / 1_000_000) % 86_400
    }

    /// Fractional hour-of-day in [0, 24), for diurnal load shaping.
    pub fn hour_of_day_f64(self) -> f64 {
        self.seconds_of_day() as f64 / 3600.0
    }

    /// Day of week, 0 = Monday .. 6 = Sunday (1970-01-01 was a Thursday).
    pub fn weekday(self) -> u32 {
        let days = self.0 / 86_400_000_000;
        ((days + 3) % 7) as u32
    }

    /// `(year, month)` pair, for monthly bucketing (Figure 3).
    pub fn year_month(self) -> (i32, u32) {
        let d = self.civil_date();
        (d.year, d.month)
    }

    /// Saturating difference.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.civil_date();
        let s = self.as_unix_secs() % 86_400;
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            d.year,
            d.month,
            d.day,
            s / 3600,
            (s / 60) % 60,
            s % 60
        )
    }
}

/// A civil (proleptic Gregorian) UTC date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    /// Year, e.g. 2020.
    pub year: i32,
    /// Month 1..=12.
    pub month: u32,
    /// Day of month 1..=31.
    pub day: u32,
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m as i64) + 9) % 12; // Mar=0..Feb=11
    let doy = (153 * mp + 2) / 5 + (d as i64) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for a days-since-epoch count (inverse of
/// [`days_from_civil`]).
pub fn civil_from_days(z: i64) -> CivilDate {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    CivilDate {
        year: (if m <= 2 { y + 1 } else { y }) as i32,
        month: m,
        day: d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(
            civil_from_days(0),
            CivilDate {
                year: 1970,
                month: 1,
                day: 1
            }
        );
    }

    #[test]
    fn paper_collection_weeks() {
        // w2018 starts Sunday Nov 4 2018; w2019 Sunday Nov 3 2019;
        // w2020 Sunday April 5 2020 (paper Table 2).
        assert_eq!(SimTime::from_date(2018, 11, 4).weekday(), 6, "Sunday");
        assert_eq!(SimTime::from_date(2019, 11, 3).weekday(), 6, "Sunday");
        assert_eq!(SimTime::from_date(2020, 4, 5).weekday(), 6, "Sunday");
    }

    #[test]
    fn civil_roundtrip_200_years() {
        for days in (0..(200 * 366)).step_by(17) {
            let d = civil_from_days(days);
            assert_eq!(days_from_civil(d.year, d.month, d.day), days);
        }
    }

    #[test]
    fn leap_years_handled() {
        assert_eq!(
            civil_from_days(days_from_civil(2020, 2, 29)),
            CivilDate {
                year: 2020,
                month: 2,
                day: 29
            }
        );
        // 2100 is not a leap year: Feb 28 + 1 day = Mar 1
        let feb28_2100 = days_from_civil(2100, 2, 28);
        assert_eq!(
            civil_from_days(feb28_2100 + 1),
            CivilDate {
                year: 2100,
                month: 3,
                day: 1
            }
        );
    }

    #[test]
    fn year_month_bucketing() {
        let t = SimTime::from_date(2019, 12, 15) + SimDuration::from_hours(13);
        assert_eq!(t.year_month(), (2019, 12));
        let t2 = SimTime::from_date(2020, 1, 1);
        assert_eq!(t2.year_month(), (2020, 1));
    }

    #[test]
    fn day_fraction_and_weekday() {
        let midnight = SimTime::from_date(2020, 4, 6); // a Monday
        assert_eq!(midnight.weekday(), 0);
        assert_eq!(midnight.seconds_of_day(), 0);
        let t = midnight + SimDuration::from_hours(6) + SimDuration::from_mins(30);
        assert!((t.hour_of_day_f64() - 6.5).abs() < 1e-9);
        assert_eq!(t.weekday(), 0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimTime::from_unix_secs(100);
        let b = a + SimDuration::from_secs(50);
        assert_eq!((b - a).as_secs(), 50);
        assert_eq!((a - b), SimDuration::ZERO, "saturating");
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
        assert_eq!(SimDuration::from_secs(2).mul_f64(1.5).as_millis(), 3000);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_date(2020, 4, 5) + SimDuration::from_secs(3661);
        assert_eq!(t.to_string(), "2020-04-05T01:01:01Z");
        assert_eq!(t.civil_date().to_string(), "2020-04-05");
    }
}

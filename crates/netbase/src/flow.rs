//! Transport-layer identifiers: protocols and 5-tuple flow keys.

use core::fmt;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Transport protocol of a DNS exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Transport {
    /// DNS over UDP (the default).
    Udp,
    /// DNS over TCP — used after truncation, for large DNSSEC payloads,
    /// or under response-rate-limiting pressure (paper §4.4).
    Tcp,
}

impl Transport {
    /// Mnemonic, uppercase, as the paper's Table 5 prints.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Transport::Udp => "UDP",
            Transport::Tcp => "TCP",
        }
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// IP version of an exchange, derived from the source address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IpVersion {
    /// IPv4.
    V4,
    /// IPv6.
    V6,
}

impl IpVersion {
    /// Classify an address.
    pub fn of(ip: IpAddr) -> Self {
        match ip {
            IpAddr::V4(_) => IpVersion::V4,
            IpAddr::V6(_) => IpVersion::V6,
        }
    }

    /// Mnemonic, as the paper's Table 5/6 print.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IpVersion::V4 => "IPv4",
            IpVersion::V6 => "IPv6",
        }
    }
}

impl fmt::Display for IpVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A 5-tuple flow key (source-oriented: `src` is the resolver, `dst` the
/// authoritative server in this workspace's captures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Resolver address.
    pub src: IpAddr,
    /// Resolver port.
    pub src_port: u16,
    /// Authoritative server address.
    pub dst: IpAddr,
    /// Authoritative server port (53).
    pub dst_port: u16,
    /// UDP or TCP.
    pub transport: Transport,
}

impl FlowKey {
    /// The flow with source and destination swapped (the response path).
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            src_port: self.dst_port,
            dst: self.src,
            dst_port: self.src_port,
            transport: self.transport,
        }
    }

    /// IP version of the flow (both ends always share a family).
    pub fn ip_version(&self) -> IpVersion {
        IpVersion::of(self.src)
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}#{} -> {}#{}",
            self.transport, self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowKey {
        FlowKey {
            src: "2001:db8::1".parse().unwrap(),
            src_port: 5353,
            dst: "2001:db8::53".parse().unwrap(),
            dst_port: 53,
            transport: Transport::Tcp,
        }
    }

    #[test]
    fn reversal_is_involutive() {
        let f = flow();
        assert_eq!(f.reversed().reversed(), f);
        assert_eq!(f.reversed().src, f.dst);
        assert_eq!(f.reversed().dst_port, 5353);
    }

    #[test]
    fn version_classification() {
        assert_eq!(flow().ip_version(), IpVersion::V6);
        assert_eq!(IpVersion::of("192.0.2.1".parse().unwrap()), IpVersion::V4);
    }

    #[test]
    fn mnemonics_match_paper_tables() {
        assert_eq!(Transport::Udp.to_string(), "UDP");
        assert_eq!(Transport::Tcp.to_string(), "TCP");
        assert_eq!(IpVersion::V4.to_string(), "IPv4");
        assert_eq!(IpVersion::V6.to_string(), "IPv6");
    }
}

//! Property tests for the networking substrate.

use netbase::capture::{CaptureReader, CaptureRecord, CaptureWriter, Direction};
use netbase::flow::{FlowKey, Transport};
use netbase::prefix::IpPrefix;
use netbase::time::{civil_from_days, days_from_civil, SimDuration, SimTime};
use netbase::trie::{LinearLpm, PrefixTrie};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn ip_addr() -> impl Strategy<Value = IpAddr> {
    prop_oneof![
        any::<u32>().prop_map(|v| IpAddr::V4(Ipv4Addr::from(v))),
        any::<u128>().prop_map(|v| IpAddr::V6(Ipv6Addr::from(v))),
    ]
}

fn prefix() -> impl Strategy<Value = IpPrefix> {
    prop_oneof![
        (any::<u32>(), 0u8..=32)
            .prop_map(|(a, l)| IpPrefix::new(IpAddr::V4(Ipv4Addr::from(a)), l).unwrap()),
        (any::<u128>(), 0u8..=128).prop_map(|(a, l)| IpPrefix::new(
            IpAddr::V6(Ipv6Addr::from(a)),
            l
        )
        .unwrap()),
    ]
}

fn capture_record() -> impl Strategy<Value = CaptureRecord> {
    (
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
        ip_addr(),
        any::<u16>(),
        ip_addr(),
        any::<u16>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..=200),
    )
        .prop_map(
            |(ts, dir, tcp, src, sp, dst, dp, rtt, payload)| CaptureRecord {
                timestamp: SimTime(ts),
                direction: if dir {
                    Direction::Query
                } else {
                    Direction::Response
                },
                flow: FlowKey {
                    src,
                    src_port: sp,
                    dst,
                    dst_port: dp,
                    transport: if tcp { Transport::Tcp } else { Transport::Udp },
                },
                tcp_rtt_us: rtt,
                payload,
            },
        )
}

proptest! {
    /// Prefix parse <-> display round-trip.
    #[test]
    fn prefix_text_roundtrip(p in prefix()) {
        let s = p.to_string();
        let back: IpPrefix = s.parse().unwrap();
        prop_assert_eq!(back, p);
    }

    /// A prefix always contains its own network address, and containment
    /// implies the LPM trie can find it.
    #[test]
    fn prefix_contains_network(p in prefix()) {
        prop_assert!(p.contains(p.network()));
        let mut t = PrefixTrie::new();
        t.insert(p, ());
        prop_assert!(t.lookup(p.network()).is_some());
    }

    /// Trie and the linear-scan baseline always agree on best-match length.
    #[test]
    fn trie_matches_linear_baseline(
        prefixes in prop::collection::vec(prefix(), 1..40),
        probes in prop::collection::vec(ip_addr(), 1..40),
    ) {
        let mut trie = PrefixTrie::new();
        let mut linear = LinearLpm::new();
        for (i, p) in prefixes.iter().enumerate() {
            if trie.get(p).is_none() {
                trie.insert(*p, i);
                linear.insert(*p, i);
            }
        }
        for probe in probes {
            let a = trie.lookup(probe).map(|(p, _)| p.len());
            let b = linear.lookup(probe).map(|(p, _)| p.len());
            prop_assert_eq!(a, b, "probe {}", probe);
        }
    }

    /// The LPM result, when present, contains the probe.
    #[test]
    fn lpm_result_contains_probe(
        prefixes in prop::collection::vec(prefix(), 1..40),
        probe in ip_addr(),
    ) {
        let mut trie = PrefixTrie::new();
        for p in &prefixes {
            trie.insert(*p, ());
        }
        if let Some((m, _)) = trie.lookup(probe) {
            prop_assert!(m.contains(probe));
            // and no stored prefix longer than m contains the probe
            for p in &prefixes {
                if p.contains(probe) {
                    prop_assert!(p.len() <= m.len());
                }
            }
        } else {
            for p in &prefixes {
                prop_assert!(!p.contains(probe));
            }
        }
    }

    /// Civil calendar conversion is a bijection over a wide range.
    #[test]
    fn civil_bijection(days in 0i64..200_000) {
        let d = civil_from_days(days);
        prop_assert_eq!(days_from_civil(d.year, d.month, d.day), days);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!((1..=31).contains(&d.day));
    }

    /// Time arithmetic: (t + d) - t == d.
    #[test]
    fn time_add_sub(t in any::<u32>(), d in any::<u32>()) {
        let t = SimTime::from_unix_secs(t as u64);
        let d = SimDuration::from_micros(d as u64);
        prop_assert_eq!((t + d) - t, d);
    }

    /// Capture records round-trip through the writer/reader in order.
    #[test]
    fn capture_roundtrip(records in prop::collection::vec(capture_record(), 0..20)) {
        let mut buf = Vec::new();
        {
            let mut w = CaptureWriter::new(&mut buf).unwrap();
            for r in &records {
                w.write(r).unwrap();
            }
            w.finish().unwrap();
        }
        let got: Result<Vec<_>, _> = CaptureReader::new(&buf[..]).unwrap().collect();
        prop_assert_eq!(got.unwrap(), records);
    }

    /// The capture reader never panics on arbitrary bytes.
    #[test]
    fn capture_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(reader) = CaptureReader::new(&bytes[..]) {
            for item in reader.take(50) {
                if item.is_err() {
                    break;
                }
            }
        }
    }
}

//! Core DNS enumerations: record types, classes, opcodes and rcodes.
//!
//! All enums round-trip through their numeric wire representation and keep
//! unknown code points (as `Unknown(u16)` / `Unknown(u8)`), because a
//! passive measurement pipeline must classify, not reject, exotic traffic.

use core::fmt;

/// A DNS resource-record type (the TYPE / QTYPE field).
///
/// The set of named variants covers every type the IMC'20 analysis
/// inspects (Figure 2 distinguishes A, AAAA, NS, DS, DNSKEY, MX, SOA,
/// TXT and "other"). Anything else is preserved as [`RType::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RType {
    /// IPv4 host address (RFC 1035).
    A,
    /// Authoritative name server (RFC 1035).
    Ns,
    /// Canonical alias name (RFC 1035).
    Cname,
    /// Start of authority (RFC 1035).
    Soa,
    /// Domain-name pointer, used for reverse DNS (RFC 1035).
    Ptr,
    /// Mail exchange (RFC 1035).
    Mx,
    /// Free-form text strings (RFC 1035).
    Txt,
    /// IPv6 host address (RFC 3596).
    Aaaa,
    /// Server selection (RFC 2782).
    Srv,
    /// Naming-authority pointer (RFC 3403).
    Naptr,
    /// Delegation signer digest (RFC 4034).
    Ds,
    /// DNSSEC signature (RFC 4034).
    Rrsig,
    /// Authenticated denial of existence (RFC 4034).
    Nsec,
    /// DNSSEC public key (RFC 4034).
    Dnskey,
    /// Hashed authenticated denial (RFC 5155).
    Nsec3,
    /// EDNS(0) pseudo-record (RFC 6891); only valid in the additional section.
    Opt,
    /// TLSA certificate association (RFC 6698).
    Tlsa,
    /// Child DS (RFC 7344).
    Cds,
    /// Child DNSKEY (RFC 7344).
    Cdnskey,
    /// Certification Authority Authorization (RFC 8659).
    Caa,
    /// HTTPS service binding (RFC 9460).
    Https,
    /// Service binding (RFC 9460).
    Svcb,
    /// Any (the QTYPE `*` of RFC 1035, deprecated by RFC 8482).
    Any,
    /// A type code this crate has no named variant for.
    Unknown(u16),
}

impl RType {
    /// Decode from the 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RType::A,
            2 => RType::Ns,
            5 => RType::Cname,
            6 => RType::Soa,
            12 => RType::Ptr,
            15 => RType::Mx,
            16 => RType::Txt,
            28 => RType::Aaaa,
            33 => RType::Srv,
            35 => RType::Naptr,
            43 => RType::Ds,
            46 => RType::Rrsig,
            47 => RType::Nsec,
            48 => RType::Dnskey,
            50 => RType::Nsec3,
            41 => RType::Opt,
            52 => RType::Tlsa,
            59 => RType::Cds,
            60 => RType::Cdnskey,
            257 => RType::Caa,
            65 => RType::Https,
            64 => RType::Svcb,
            255 => RType::Any,
            other => RType::Unknown(other),
        }
    }

    /// Encode to the 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RType::A => 1,
            RType::Ns => 2,
            RType::Cname => 5,
            RType::Soa => 6,
            RType::Ptr => 12,
            RType::Mx => 15,
            RType::Txt => 16,
            RType::Aaaa => 28,
            RType::Srv => 33,
            RType::Naptr => 35,
            RType::Ds => 43,
            RType::Rrsig => 46,
            RType::Nsec => 47,
            RType::Dnskey => 48,
            RType::Nsec3 => 50,
            RType::Opt => 41,
            RType::Tlsa => 52,
            RType::Cds => 59,
            RType::Cdnskey => 60,
            RType::Caa => 257,
            RType::Https => 65,
            RType::Svcb => 64,
            RType::Any => 255,
            RType::Unknown(v) => v,
        }
    }

    /// True for the record types that only appear in DNSSEC validation
    /// traffic (the signal behind Figure 2's DS/DNSKEY analysis).
    pub fn is_dnssec(self) -> bool {
        matches!(
            self,
            RType::Ds
                | RType::Dnskey
                | RType::Rrsig
                | RType::Nsec
                | RType::Nsec3
                | RType::Cds
                | RType::Cdnskey
        )
    }

    /// The mnemonic, as used in zone files and in the paper's figures.
    pub fn mnemonic(self) -> String {
        match self {
            RType::A => "A".into(),
            RType::Ns => "NS".into(),
            RType::Cname => "CNAME".into(),
            RType::Soa => "SOA".into(),
            RType::Ptr => "PTR".into(),
            RType::Mx => "MX".into(),
            RType::Txt => "TXT".into(),
            RType::Aaaa => "AAAA".into(),
            RType::Srv => "SRV".into(),
            RType::Naptr => "NAPTR".into(),
            RType::Ds => "DS".into(),
            RType::Rrsig => "RRSIG".into(),
            RType::Nsec => "NSEC".into(),
            RType::Dnskey => "DNSKEY".into(),
            RType::Nsec3 => "NSEC3".into(),
            RType::Opt => "OPT".into(),
            RType::Tlsa => "TLSA".into(),
            RType::Cds => "CDS".into(),
            RType::Cdnskey => "CDNSKEY".into(),
            RType::Caa => "CAA".into(),
            RType::Https => "HTTPS".into(),
            RType::Svcb => "SVCB".into(),
            RType::Any => "ANY".into(),
            RType::Unknown(v) => format!("TYPE{v}"),
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

impl serde::Serialize for RType {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.mnemonic())
    }
}

impl<'de> serde::Deserialize<'de> for RType {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        // accept both mnemonics and RFC 3597 "TYPEnnn"
        let known = [
            RType::A,
            RType::Ns,
            RType::Cname,
            RType::Soa,
            RType::Ptr,
            RType::Mx,
            RType::Txt,
            RType::Aaaa,
            RType::Srv,
            RType::Naptr,
            RType::Ds,
            RType::Rrsig,
            RType::Nsec,
            RType::Dnskey,
            RType::Nsec3,
            RType::Opt,
            RType::Tlsa,
            RType::Cds,
            RType::Cdnskey,
            RType::Caa,
            RType::Https,
            RType::Svcb,
            RType::Any,
        ];
        if let Some(t) = known.iter().find(|t| t.mnemonic() == s) {
            return Ok(*t);
        }
        if let Some(num) = s.strip_prefix("TYPE") {
            if let Ok(v) = num.parse::<u16>() {
                return Ok(RType::from_u16(v));
            }
        }
        Err(serde::de::Error::custom(format!(
            "unknown record type {s:?}"
        )))
    }
}

/// A DNS class (the CLASS / QCLASS field). Almost always `In`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RClass {
    /// The Internet.
    In,
    /// Chaosnet, still used for `version.bind` style probes.
    Ch,
    /// Hesiod.
    Hs,
    /// QCLASS NONE (RFC 2136).
    None,
    /// QCLASS ANY.
    Any,
    /// Unrecognized class.
    Unknown(u16),
}

impl RClass {
    /// Decode from the 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RClass::In,
            3 => RClass::Ch,
            4 => RClass::Hs,
            254 => RClass::None,
            255 => RClass::Any,
            other => RClass::Unknown(other),
        }
    }

    /// Encode to the 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RClass::In => 1,
            RClass::Ch => 3,
            RClass::Hs => 4,
            RClass::None => 254,
            RClass::Any => 255,
            RClass::Unknown(v) => v,
        }
    }
}

/// A DNS opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Zone change notification (RFC 1996).
    Notify,
    /// Dynamic update (RFC 2136).
    Update,
    /// Unrecognized opcode.
    Unknown(u8),
}

impl Opcode {
    /// Decode from the 4-bit wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0f {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Unknown(other),
        }
    }

    /// Encode to the 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Unknown(v) => v & 0x0f,
        }
    }
}

/// A DNS response code.
///
/// The paper's "junk" definition (§3) is *any query whose response carries
/// a non-NOERROR rcode*; [`Rcode::is_junk`] encodes exactly that test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rcode {
    /// No error (0).
    NoError,
    /// Format error (1).
    FormErr,
    /// Server failure (2).
    ServFail,
    /// Non-existent domain (3).
    NxDomain,
    /// Not implemented (4).
    NotImp,
    /// Refused (5).
    Refused,
    /// YXDOMAIN (6, RFC 2136).
    YxDomain,
    /// NOTAUTH (9).
    NotAuth,
    /// BADVERS / BADSIG (16, with EDNS extension bits).
    BadVers,
    /// Unrecognized rcode (includes extended values carried by OPT).
    Unknown(u16),
}

impl Rcode {
    /// Decode from the (possibly EDNS-extended) numeric value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            6 => Rcode::YxDomain,
            9 => Rcode::NotAuth,
            16 => Rcode::BadVers,
            other => Rcode::Unknown(other),
        }
    }

    /// Encode to the numeric value (low 4 bits go in the header; the high
    /// 8 bits, if any, belong in the OPT TTL per RFC 6891).
    pub fn to_u16(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::YxDomain => 6,
            Rcode::NotAuth => 9,
            Rcode::BadVers => 16,
            Rcode::Unknown(v) => v,
        }
    }

    /// The paper's §3 junk criterion: anything but NOERROR.
    pub fn is_junk(self) -> bool {
        self != Rcode::NoError
    }

    /// Presentation mnemonic.
    pub fn mnemonic(self) -> String {
        match self {
            Rcode::NoError => "NOERROR".into(),
            Rcode::FormErr => "FORMERR".into(),
            Rcode::ServFail => "SERVFAIL".into(),
            Rcode::NxDomain => "NXDOMAIN".into(),
            Rcode::NotImp => "NOTIMP".into(),
            Rcode::Refused => "REFUSED".into(),
            Rcode::YxDomain => "YXDOMAIN".into(),
            Rcode::NotAuth => "NOTAUTH".into(),
            Rcode::BadVers => "BADVERS".into(),
            Rcode::Unknown(v) => format!("RCODE{v}"),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtype_roundtrip_named() {
        for v in 0..300u16 {
            let t = RType::from_u16(v);
            assert_eq!(t.to_u16(), v, "rtype {v} must round-trip");
        }
    }

    #[test]
    fn rtype_known_codes() {
        assert_eq!(RType::from_u16(1), RType::A);
        assert_eq!(RType::from_u16(28), RType::Aaaa);
        assert_eq!(RType::from_u16(2), RType::Ns);
        assert_eq!(RType::from_u16(43), RType::Ds);
        assert_eq!(RType::from_u16(48), RType::Dnskey);
        assert_eq!(RType::from_u16(41), RType::Opt);
        assert_eq!(RType::from_u16(9999), RType::Unknown(9999));
    }

    #[test]
    fn dnssec_classification() {
        assert!(RType::Ds.is_dnssec());
        assert!(RType::Dnskey.is_dnssec());
        assert!(RType::Rrsig.is_dnssec());
        assert!(!RType::A.is_dnssec());
        assert!(!RType::Ns.is_dnssec());
        assert!(!RType::Opt.is_dnssec());
    }

    #[test]
    fn rclass_roundtrip() {
        for v in [1u16, 3, 4, 254, 255, 42] {
            assert_eq!(RClass::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn opcode_roundtrip_masks_high_bits() {
        for v in 0..16u8 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v & 0x0f);
        }
        assert_eq!(Opcode::from_u8(0x10), Opcode::Query, "high bits ignored");
    }

    #[test]
    fn rcode_junk_criterion_matches_paper() {
        assert!(!Rcode::NoError.is_junk());
        for r in [
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::Refused,
            Rcode::Unknown(23),
        ] {
            assert!(r.is_junk(), "{r} must count as junk");
        }
    }

    #[test]
    fn rcode_roundtrip() {
        for v in 0..20u16 {
            assert_eq!(Rcode::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn rtype_serde_roundtrip() {
        for v in [1u16, 2, 28, 43, 48, 65, 255, 999] {
            let t = RType::from_u16(v);
            let json = serde_json::to_string(&t).unwrap();
            let back: RType = serde_json::from_str(&json).unwrap();
            assert_eq!(back, t, "{json}");
        }
        assert_eq!(serde_json::to_string(&RType::Aaaa).unwrap(), "\"AAAA\"");
        let t: RType = serde_json::from_str("\"TYPE4242\"").unwrap();
        assert_eq!(t, RType::Unknown(4242));
        assert!(serde_json::from_str::<RType>("\"NOPE\"").is_err());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(RType::Aaaa.to_string(), "AAAA");
        assert_eq!(RType::Unknown(300).to_string(), "TYPE300");
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
    }
}

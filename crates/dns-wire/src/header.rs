//! The 12-octet DNS message header (RFC 1035 §4.1.1).

use crate::error::WireError;
use crate::types::{Opcode, Rcode};

/// Wire size of the header.
pub const HEADER_LEN: usize = 12;

/// Decoded DNS header.
///
/// The four count fields are not stored here; [`crate::message::Message`]
/// derives them from its section vectors at encode time. The `rcode`
/// field holds only the low 4 header bits; EDNS extended-rcode bits are
/// merged by the message parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Transaction identifier.
    pub id: u16,
    /// True for responses (QR bit).
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer (AA).
    pub authoritative: bool,
    /// Truncation (TC): the response did not fit and was cut; the client
    /// should retry over TCP. Central to the paper's §4.4 analysis.
    pub truncated: bool,
    /// Recursion desired (RD).
    pub recursion_desired: bool,
    /// Recursion available (RA).
    pub recursion_available: bool,
    /// Authentic data (AD, RFC 4035).
    pub authentic_data: bool,
    /// Checking disabled (CD, RFC 4035).
    pub checking_disabled: bool,
    /// Response code (low 4 bits only at this layer).
    pub rcode: Rcode,
}

impl Header {
    /// A request header with the given id: QR=0, opcode QUERY, all flags
    /// clear except RD (resolvers talking to authoritatives typically
    /// clear RD too; the builder decides).
    pub fn request(id: u16) -> Self {
        Header {
            id,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: false,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::NoError,
        }
    }

    /// A response header answering `req` with `rcode`.
    pub fn response_to(req: &Header, rcode: Rcode) -> Self {
        Header {
            id: req.id,
            response: true,
            opcode: req.opcode,
            authoritative: true,
            truncated: false,
            recursion_desired: req.recursion_desired,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: req.checking_disabled,
            rcode,
        }
    }

    /// Parse the fixed header; returns it plus the four section counts
    /// `(qd, an, ns, ar)`.
    pub fn parse(msg: &[u8]) -> Result<(Header, [u16; 4]), WireError> {
        if msg.len() < HEADER_LEN {
            return Err(WireError::Truncated { offset: msg.len() });
        }
        let id = u16::from_be_bytes([msg[0], msg[1]]);
        let b2 = msg[2];
        let b3 = msg[3];
        let header = Header {
            id,
            response: b2 & 0x80 != 0,
            opcode: Opcode::from_u8((b2 >> 3) & 0x0f),
            authoritative: b2 & 0x04 != 0,
            truncated: b2 & 0x02 != 0,
            recursion_desired: b2 & 0x01 != 0,
            recursion_available: b3 & 0x80 != 0,
            authentic_data: b3 & 0x20 != 0,
            checking_disabled: b3 & 0x10 != 0,
            rcode: Rcode::from_u16((b3 & 0x0f) as u16),
        };
        let counts = [
            u16::from_be_bytes([msg[4], msg[5]]),
            u16::from_be_bytes([msg[6], msg[7]]),
            u16::from_be_bytes([msg[8], msg[9]]),
            u16::from_be_bytes([msg[10], msg[11]]),
        ];
        Ok((header, counts))
    }

    /// Encode with explicit section counts.
    pub fn encode(&self, counts: [u16; 4], out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut b2 = 0u8;
        if self.response {
            b2 |= 0x80;
        }
        b2 |= (self.opcode.to_u8() & 0x0f) << 3;
        if self.authoritative {
            b2 |= 0x04;
        }
        if self.truncated {
            b2 |= 0x02;
        }
        if self.recursion_desired {
            b2 |= 0x01;
        }
        let mut b3 = 0u8;
        if self.recursion_available {
            b3 |= 0x80;
        }
        if self.authentic_data {
            b3 |= 0x20;
        }
        if self.checking_disabled {
            b3 |= 0x10;
        }
        b3 |= (self.rcode.to_u16() & 0x0f) as u8;
        out.push(b2);
        out.push(b3);
        for c in counts {
            out.extend_from_slice(&c.to_be_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_flags() {
        let h = Header {
            id: 0xbeef,
            response: true,
            opcode: Opcode::Status,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            authentic_data: true,
            checking_disabled: true,
            rcode: Rcode::Refused,
        };
        let mut buf = Vec::new();
        h.encode([1, 2, 3, 4], &mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let (parsed, counts) = Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(counts, [1, 2, 3, 4]);
    }

    #[test]
    fn roundtrip_no_flags() {
        let h = Header::request(7);
        let mut buf = Vec::new();
        h.encode([1, 0, 0, 0], &mut buf);
        let (parsed, counts) = Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(counts, [1, 0, 0, 0]);
    }

    #[test]
    fn response_mirrors_request() {
        let mut req = Header::request(99);
        req.recursion_desired = true;
        let resp = Header::response_to(&req, Rcode::NxDomain);
        assert!(resp.response);
        assert_eq!(resp.id, 99);
        assert!(resp.recursion_desired);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.authoritative);
    }

    #[test]
    fn short_input_is_error() {
        assert!(matches!(
            Header::parse(&[0u8; 11]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn z_bit_ignored() {
        let mut buf = Vec::new();
        Header::request(1).encode([0; 4], &mut buf);
        buf[3] |= 0x40; // the reserved Z bit
        let (h, _) = Header::parse(&buf).unwrap();
        assert_eq!(h, Header::request(1), "Z bit must be ignored");
    }
}

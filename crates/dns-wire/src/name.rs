//! Domain names: storage, comparison, wire decoding (with compression
//! pointers) and compressing wire encoding.
//!
//! Names are stored in canonical wire form — a sequence of
//! length-prefixed labels terminated by the root label — with the
//! original octets preserved (DNS names are case-*preserving* but
//! case-*insensitive*; comparisons and hashing fold ASCII case, per
//! RFC 1035 §2.3.3 / RFC 4343).
//!
//! The label-counting helpers ([`Name::label_count`],
//! [`Name::is_minimized_child_of`]) implement the exact test the paper
//! uses to recognize QNAME-minimized queries: a qname "stripped to just
//! one label more than the zone for which the server is authoritative"
//! (RFC 7816).

use crate::error::WireError;
use core::fmt;
use core::hash::{Hash, Hasher};
use core::str::FromStr;

/// Maximum length of one label, in octets (RFC 1035 §3.1).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a whole encoded name, in octets (RFC 1035 §3.1).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum compression-pointer hops tolerated before declaring a loop.
const MAX_POINTER_HOPS: usize = 63;

/// A fully-qualified domain name in wire form.
///
/// Internally: the uncompressed wire encoding, e.g. `example.nl.` is
/// `\x07example\x02nl\x00`. The root name is the single byte `\x00`.
#[derive(Clone, Eq)]
pub struct Name {
    wire: Vec<u8>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { wire: vec![0] }
    }

    /// Build a name from an iterator of label byte-slices (top label last).
    ///
    /// ```
    /// # use dns_wire::name::Name;
    /// let n = Name::from_labels([b"www".as_slice(), b"example", b"nl"]).unwrap();
    /// assert_eq!(n.to_string(), "www.example.nl.");
    /// ```
    pub fn from_labels<'a, I>(labels: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut wire = Vec::new();
        for label in labels {
            if label.is_empty() {
                return Err(WireError::BadNameString);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(label.len()));
            }
            wire.push(label.len() as u8);
            wire.extend_from_slice(label);
        }
        wire.push(0);
        if wire.len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire.len()));
        }
        Ok(Name { wire })
    }

    /// The uncompressed wire encoding of this name.
    pub fn as_wire(&self) -> &[u8] {
        &self.wire
    }

    /// Length of the uncompressed wire encoding in octets.
    pub fn wire_len(&self) -> usize {
        self.wire.len()
    }

    /// True if this is the root name.
    pub fn is_root(&self) -> bool {
        self.wire.len() == 1
    }

    /// Iterate over the labels, leftmost (deepest) first.
    pub fn labels(&self) -> LabelIter<'_> {
        LabelIter {
            wire: &self.wire,
            pos: 0,
        }
    }

    /// Number of labels, excluding the root. `example.nl.` has 2.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Strip the leftmost label, yielding the parent domain.
    /// The parent of the root is the root.
    pub fn parent(&self) -> Name {
        if self.is_root() {
            return self.clone();
        }
        let skip = 1 + self.wire[0] as usize;
        Name {
            wire: self.wire[skip..].to_vec(),
        }
    }

    /// Prepend one label to this name.
    pub fn child(&self, label: &[u8]) -> Result<Name, WireError> {
        if label.is_empty() {
            return Err(WireError::BadNameString);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(label.len()));
        }
        let mut wire = Vec::with_capacity(1 + label.len() + self.wire.len());
        wire.push(label.len() as u8);
        wire.extend_from_slice(label);
        wire.extend_from_slice(&self.wire);
        if wire.len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire.len()));
        }
        Ok(Name { wire })
    }

    /// True if `self` equals `zone` or is underneath it (case-insensitive).
    ///
    /// ```
    /// # use dns_wire::name::Name;
    /// let zone: Name = "nl.".parse().unwrap();
    /// let host: Name = "www.EXAMPLE.NL.".parse().unwrap();
    /// assert!(host.is_subdomain_of(&zone));
    /// assert!(!zone.is_subdomain_of(&host));
    /// ```
    pub fn is_subdomain_of(&self, zone: &Name) -> bool {
        if zone.is_root() {
            return true;
        }
        let mine: Vec<&[u8]> = self.labels().collect();
        let theirs: Vec<&[u8]> = zone.labels().collect();
        if theirs.len() > mine.len() {
            return false;
        }
        mine.iter()
            .rev()
            .zip(theirs.iter().rev())
            .all(|(a, b)| eq_fold(a, b))
    }

    /// The QNAME-minimization test of RFC 7816 as applied by the paper:
    /// true when `self` has *exactly one* more label than `zone` and lies
    /// underneath it. A Q-min resolver asking a `.nl` server about
    /// `a.b.example.nl` sends `example.nl` — minimized; a classic resolver
    /// sends the full `a.b.example.nl` — not minimized.
    pub fn is_minimized_child_of(&self, zone: &Name) -> bool {
        self.label_count() == zone.label_count() + 1 && self.is_subdomain_of(zone)
    }

    /// Decode a (possibly compressed) name from `msg` starting at `pos`.
    ///
    /// Returns the name and the position just past its encoding *in the
    /// original stream* (i.e. past the pointer, if the name ended with
    /// one). Pointers must point strictly backwards; hop count is capped
    /// to defeat loops.
    pub fn parse(msg: &[u8], pos: usize) -> Result<(Name, usize), WireError> {
        let mut wire = Vec::new();
        let mut cursor = pos;
        let mut after: Option<usize> = None; // resume point in the outer stream
        let mut hops = 0usize;
        let mut min_ptr_target = pos; // each pointer must go strictly before this

        loop {
            let len_byte = *msg
                .get(cursor)
                .ok_or(WireError::Truncated { offset: cursor })?;
            match len_byte & 0xc0 {
                0x00 => {
                    let len = len_byte as usize;
                    if len == 0 {
                        wire.push(0);
                        let end = after.unwrap_or(cursor + 1);
                        if wire.len() > MAX_NAME_LEN {
                            return Err(WireError::NameTooLong(wire.len()));
                        }
                        return Ok((Name { wire }, end));
                    }
                    let label_end = cursor + 1 + len;
                    if label_end > msg.len() {
                        return Err(WireError::Truncated { offset: msg.len() });
                    }
                    wire.push(len_byte);
                    wire.extend_from_slice(&msg[cursor + 1..label_end]);
                    if wire.len() > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(wire.len()));
                    }
                    cursor = label_end;
                }
                0xc0 => {
                    let second = *msg
                        .get(cursor + 1)
                        .ok_or(WireError::Truncated { offset: cursor + 1 })?;
                    let target = (((len_byte & 0x3f) as usize) << 8) | second as usize;
                    if target >= min_ptr_target {
                        return Err(WireError::BadPointer { at: cursor, target });
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer { at: cursor, target });
                    }
                    if after.is_none() {
                        after = Some(cursor + 2);
                    }
                    min_ptr_target = target;
                    cursor = target;
                }
                other => return Err(WireError::BadLabelType(other)),
            }
        }
    }

    /// Append the uncompressed encoding to `out`.
    pub fn encode_uncompressed(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.wire);
    }
}

/// Case-folding byte-slice equality (ASCII only, per RFC 4343).
fn eq_fold(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.eq_ignore_ascii_case(y))
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        if self.wire.len() != other.wire.len() {
            return false;
        }
        // Label lengths are never in the ASCII-letter range collision zone?
        // They are: length 0x41..=0x5a would case-fold wrongly. Compare
        // label-wise to be exact.
        self.labels().count() == other.labels().count()
            && self
                .labels()
                .zip(other.labels())
                .all(|(a, b)| eq_fold(a, b))
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for label in self.labels() {
            state.write_usize(label.len());
            for &b in label {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering (RFC 4034 §6.1): compare label sequences
    /// right-to-left, case-folded.
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        let mine: Vec<&[u8]> = self.labels().collect();
        let theirs: Vec<&[u8]> = other.labels().collect();
        for (a, b) in mine.iter().rev().zip(theirs.iter().rev()) {
            let fa = a.iter().map(|c| c.to_ascii_lowercase());
            let fb = b.iter().map(|c| c.to_ascii_lowercase());
            match fa.cmp(fb) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        mine.len().cmp(&theirs.len())
    }
}

/// Iterator over the labels of a [`Name`], deepest label first.
pub struct LabelIter<'a> {
    wire: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let len = *self.wire.get(self.pos)? as usize;
        if len == 0 {
            return None;
        }
        let start = self.pos + 1;
        self.pos = start + len;
        Some(&self.wire[start..start + len])
    }
}

impl fmt::Display for Name {
    /// Presentation format with a trailing dot; non-printable bytes are
    /// escaped `\DDD`, literal dots in labels as `\.`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return f.write_str(".");
        }
        for label in self.labels() {
            for &b in label {
                match b {
                    b'.' => f.write_str("\\.")?,
                    b'\\' => f.write_str("\\\\")?,
                    0x21..=0x7e => write!(f, "{}", b as char)?,
                    _ => write!(f, "\\{b:03}")?,
                }
            }
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl FromStr for Name {
    type Err = WireError;

    /// Parse presentation format. Accepts with or without trailing dot;
    /// supports `\.`, `\\` and `\DDD` escapes. `"."` is the root.
    fn from_str(s: &str) -> Result<Self, WireError> {
        if s == "." || s.is_empty() {
            return Ok(Name::root());
        }
        let bytes = s.as_bytes();
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut current: Vec<u8> = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => {
                    let next = *bytes.get(i + 1).ok_or(WireError::BadNameString)?;
                    if next.is_ascii_digit() {
                        if i + 3 >= bytes.len() {
                            return Err(WireError::BadNameString);
                        }
                        let ddd = &s[i + 1..i + 4];
                        let v: u16 = ddd.parse().map_err(|_| WireError::BadNameString)?;
                        if v > 255 {
                            return Err(WireError::BadNameString);
                        }
                        current.push(v as u8);
                        i += 4;
                    } else {
                        current.push(next);
                        i += 2;
                    }
                }
                b'.' => {
                    if current.is_empty() {
                        return Err(WireError::BadNameString);
                    }
                    labels.push(core::mem::take(&mut current));
                    i += 1;
                }
                b => {
                    current.push(b);
                    i += 1;
                }
            }
        }
        if !current.is_empty() {
            labels.push(current);
        }
        Name::from_labels(labels.iter().map(|l| l.as_slice()))
    }
}

/// A compression map used while encoding a message: remembers, for every
/// name suffix already emitted, its offset, so later names can point at it
/// (RFC 1035 §4.1.4). Offsets beyond 0x3FFF cannot be pointed at.
#[derive(Default)]
pub struct NameCompressor {
    /// Suffix (in lowercased wire form) -> offset in the message.
    seen: std::collections::HashMap<Vec<u8>, u16>,
}

impl NameCompressor {
    /// Create an empty compressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode `name` at the current end of `out`, compressing against
    /// earlier names, and record its suffixes for future reuse.
    pub fn encode(&mut self, name: &Name, out: &mut Vec<u8>) {
        let wire = name.as_wire();
        let mut pos = 0usize;
        while wire[pos] != 0 {
            let suffix_key = lower_wire(&wire[pos..]);
            if let Some(&offset) = self.seen.get(&suffix_key) {
                out.push(0xc0 | ((offset >> 8) as u8));
                out.push(offset as u8);
                return;
            }
            let here = out.len();
            if here <= 0x3fff {
                self.seen.insert(suffix_key, here as u16);
            }
            let len = wire[pos] as usize;
            out.extend_from_slice(&wire[pos..pos + 1 + len]);
            pos += 1 + len;
        }
        out.push(0);
    }
}

fn lower_wire(w: &[u8]) -> Vec<u8> {
    w.iter().map(|b| b.to_ascii_lowercase()).collect()
}

/// Strategy for emitting a name into a message under construction.
///
/// [`NameCompressor`] is the straightforward per-message implementation;
/// [`ReusableCompressor`] trades exactness of its suffix table (hashes,
/// verified against the output buffer) for allocation-free reuse across
/// messages on hot paths.
pub trait NameEncoder {
    /// Append `name` (possibly compressed) at the current end of `out`.
    fn encode_name(&mut self, name: &Name, out: &mut Vec<u8>);
}

impl NameEncoder for NameCompressor {
    fn encode_name(&mut self, name: &Name, out: &mut Vec<u8>) {
        self.encode(name, out);
    }
}

/// FNV-1a over the case-folded wire suffix.
fn fnv_lower(w: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in w {
        h ^= b.to_ascii_lowercase() as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// True when the name suffix starting at `msg[at]` (following
/// compression pointers, strictly backwards) equals `suffix`
/// (uncompressed, well-formed wire), ASCII case-folded.
fn suffix_matches(msg: &[u8], at: usize, suffix: &[u8]) -> bool {
    let mut mp = at;
    let mut sp = 0usize;
    let mut hops = 0usize;
    let mut min_target = at;
    loop {
        let Some(&len_byte) = msg.get(mp) else {
            return false;
        };
        match len_byte & 0xc0 {
            0x00 => {
                let len = len_byte as usize;
                let s_len = suffix[sp] as usize;
                if len == 0 {
                    return s_len == 0;
                }
                if s_len != len {
                    return false;
                }
                let m_end = mp + 1 + len;
                if m_end > msg.len() {
                    return false;
                }
                if !msg[mp + 1..m_end].eq_ignore_ascii_case(&suffix[sp + 1..sp + 1 + len]) {
                    return false;
                }
                mp = m_end;
                sp += 1 + len;
            }
            0xc0 => {
                let Some(&second) = msg.get(mp + 1) else {
                    return false;
                };
                let target = (((len_byte & 0x3f) as usize) << 8) | second as usize;
                if target >= min_target || hops >= MAX_POINTER_HOPS {
                    return false;
                }
                hops += 1;
                min_target = target;
                mp = target;
            }
            _ => return false,
        }
    }
}

/// A [`NameEncoder`] designed for reuse across many messages without
/// allocating: the suffix table keys are 64-bit FNV hashes instead of
/// owned byte strings, so [`ReusableCompressor::reset`] between
/// messages keeps the map's capacity and steady-state encoding performs
/// zero heap allocations.
///
/// Hash entries are *verified* against the actual output buffer before
/// a pointer is emitted (`suffix_matches`); a colliding hash merely
/// loses compression for the rest of that name — the produced message
/// is always correct.
#[derive(Default)]
pub struct ReusableCompressor {
    /// FNV of the lowercased suffix -> offset in the message.
    seen: std::collections::HashMap<u64, u16>,
}

impl ReusableCompressor {
    /// Create an empty compressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget all recorded suffixes but keep the table's capacity; call
    /// between messages.
    pub fn reset(&mut self) {
        self.seen.clear();
    }
}

impl NameEncoder for ReusableCompressor {
    fn encode_name(&mut self, name: &Name, out: &mut Vec<u8>) {
        let wire = name.as_wire();
        let mut pos = 0usize;
        while wire[pos] != 0 {
            let key = fnv_lower(&wire[pos..]);
            match self.seen.get(&key) {
                Some(&offset) if suffix_matches(out, offset as usize, &wire[pos..]) => {
                    out.push(0xc0 | ((offset >> 8) as u8));
                    out.push(offset as u8);
                    return;
                }
                Some(_) => {
                    // hash collision: emit the rest uncompressed
                    out.extend_from_slice(&wire[pos..]);
                    return;
                }
                None => {
                    let here = out.len();
                    if here <= 0x3fff {
                        self.seen.insert(key, here as u16);
                    }
                    let len = wire[pos] as usize;
                    out.extend_from_slice(&wire[pos..pos + 1 + len]);
                    pos += 1 + len;
                }
            }
        }
        out.push(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("example.nl").to_string(), "example.nl.");
        assert_eq!(n("example.nl.").to_string(), "example.nl.");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("a.b.c.example.co.nz").label_count(), 6);
    }

    #[test]
    fn root_properties() {
        let r = Name::root();
        assert!(r.is_root());
        assert_eq!(r.label_count(), 0);
        assert_eq!(r.parent(), r);
        assert_eq!(r.wire_len(), 1);
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        let a = n("WWW.Example.NL");
        let b = n("www.example.nl");
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn display_preserves_case() {
        assert_eq!(n("ExAmPlE.nl").to_string(), "ExAmPlE.nl.");
    }

    #[test]
    fn parent_and_child() {
        let d = n("www.example.nl");
        assert_eq!(d.parent(), n("example.nl"));
        assert_eq!(d.parent().parent(), n("nl"));
        assert_eq!(d.parent().parent().parent(), Name::root());
        assert_eq!(n("nl").child(b"sidn").unwrap(), n("sidn.nl"));
    }

    #[test]
    fn subdomain_relation() {
        let nl = n("nl");
        assert!(n("example.nl").is_subdomain_of(&nl));
        assert!(n("a.b.example.nl").is_subdomain_of(&nl));
        assert!(n("nl").is_subdomain_of(&nl));
        assert!(!n("example.nz").is_subdomain_of(&nl));
        assert!(!n("nl").is_subdomain_of(&n("example.nl")));
        assert!(n("anything.at.all").is_subdomain_of(&Name::root()));
        // suffix-in-label must not count: "foonl" is not under "nl"
        assert!(!n("foonl").is_subdomain_of(&nl));
    }

    #[test]
    fn qmin_test_matches_rfc7816() {
        let nl = n("nl");
        assert!(n("example.nl").is_minimized_child_of(&nl));
        assert!(!n("www.example.nl").is_minimized_child_of(&nl));
        assert!(!n("nl").is_minimized_child_of(&nl));
        let conz = n("co.nz");
        assert!(n("example.co.nz").is_minimized_child_of(&conz));
        assert!(!n("example.co.nz").is_minimized_child_of(&n("nz")));
    }

    #[test]
    fn label_limits() {
        let long = vec![b'a'; 64];
        assert_eq!(
            Name::from_labels([long.as_slice()]),
            Err(WireError::LabelTooLong(64))
        );
        let ok = vec![b'a'; 63];
        assert!(Name::from_labels([ok.as_slice()]).is_ok());
    }

    #[test]
    fn name_length_limit() {
        // 4 labels of 63 bytes = 4*64+1 = 257 > 255
        let l = vec![b'x'; 63];
        let r = Name::from_labels([l.as_slice(), &l, &l, &l]);
        assert!(matches!(r, Err(WireError::NameTooLong(_))));
    }

    #[test]
    fn escapes_roundtrip() {
        let name = n("a\\.b.example.nl");
        assert_eq!(name.label_count(), 3);
        assert_eq!(name.labels().next().unwrap(), b"a.b");
        assert_eq!(name.to_string(), "a\\.b.example.nl.");
        let esc = n("\\001\\255.nl");
        assert_eq!(esc.labels().next().unwrap(), &[1u8, 255]);
        assert_eq!(esc.to_string(), "\\001\\255.nl.");
        // and the Display output parses back to the same name
        assert_eq!(n(&esc.to_string()), esc);
    }

    #[test]
    fn bad_presentation_forms() {
        assert!("a..b".parse::<Name>().is_err());
        assert!(".leading".parse::<Name>().is_err());
        assert!("trail\\".parse::<Name>().is_err());
        assert!("big\\999escape".parse::<Name>().is_err());
    }

    #[test]
    fn wire_parse_simple() {
        let msg = b"\x07example\x02nl\x00";
        let (name, end) = Name::parse(msg, 0).unwrap();
        assert_eq!(name, n("example.nl"));
        assert_eq!(end, msg.len());
    }

    #[test]
    fn wire_parse_with_pointer() {
        // offset 0: "nl." ; offset 4: "www" + pointer to 0
        let mut msg = Vec::new();
        msg.extend_from_slice(b"\x02nl\x00");
        let www_at = msg.len();
        msg.extend_from_slice(b"\x03www");
        msg.extend_from_slice(&[0xc0, 0x00]);
        let (name, end) = Name::parse(&msg, www_at).unwrap();
        assert_eq!(name, n("www.nl"));
        assert_eq!(end, msg.len());
    }

    #[test]
    fn wire_parse_pointer_chain() {
        // 0: "nl." ; 4: "example" + ptr->0 ; 14: "www" + ptr->4
        let mut msg = Vec::new();
        msg.extend_from_slice(b"\x02nl\x00");
        msg.extend_from_slice(b"\x07example");
        msg.extend_from_slice(&[0xc0, 0x00]);
        let www_at = msg.len();
        msg.extend_from_slice(b"\x03www");
        msg.extend_from_slice(&[0xc0, 0x04]);
        let (name, _) = Name::parse(&msg, www_at).unwrap();
        assert_eq!(name, n("www.example.nl"));
    }

    #[test]
    fn wire_parse_rejects_forward_pointer() {
        let msg = [0xc0u8, 0x02, 0x00, 0x00];
        assert!(matches!(
            Name::parse(&msg, 0),
            Err(WireError::BadPointer { .. })
        ));
    }

    #[test]
    fn wire_parse_rejects_self_pointer() {
        let msg = [0xc0u8, 0x00];
        assert!(matches!(
            Name::parse(&msg, 0),
            Err(WireError::BadPointer { .. })
        ));
    }

    #[test]
    fn wire_parse_rejects_pointer_loop() {
        // two pointers pointing at each other can't happen (strictly
        // decreasing targets), but verify a long chain is refused via the
        // strictly-backwards rule.
        let mut msg = Vec::new();
        msg.extend_from_slice(&[0xc0, 0x00]); // points at itself
        msg.extend_from_slice(&[0xc0, 0x00]); // points backwards at the self-pointer
        let r = Name::parse(&msg, 2);
        assert!(matches!(r, Err(WireError::BadPointer { .. })));
    }

    #[test]
    fn wire_parse_rejects_truncation_and_bad_type() {
        assert!(matches!(
            Name::parse(b"\x05abc", 0),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            Name::parse(&[0x80, 0x00], 0),
            Err(WireError::BadLabelType(0x80))
        ));
        assert!(matches!(
            Name::parse(&[0x40], 0),
            Err(WireError::BadLabelType(0x40))
        ));
        assert!(matches!(
            Name::parse(&[], 0),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn compressor_reuses_suffixes() {
        let mut out = Vec::new();
        let mut comp = NameCompressor::new();
        comp.encode(&n("www.example.nl"), &mut out);
        let first_len = out.len();
        assert_eq!(first_len, 16); // 4+8+3+1
        comp.encode(&n("mail.example.nl"), &mut out);
        // "mail" label (5 bytes) + pointer (2 bytes)
        assert_eq!(out.len(), first_len + 7);
        // both decode correctly
        let (a, next) = Name::parse(&out, 0).unwrap();
        assert_eq!(a, n("www.example.nl"));
        let (b, _) = Name::parse(&out, next).unwrap();
        assert_eq!(b, n("mail.example.nl"));
    }

    #[test]
    fn compressor_case_insensitive_reuse() {
        let mut out = Vec::new();
        let mut comp = NameCompressor::new();
        comp.encode(&n("a.EXAMPLE.NL"), &mut out);
        let len = out.len();
        comp.encode(&n("b.example.nl"), &mut out);
        assert_eq!(out.len(), len + 4, "one label + pointer");
    }

    #[test]
    fn compressor_identical_name_is_single_pointer() {
        let mut out = Vec::new();
        let mut comp = NameCompressor::new();
        comp.encode(&n("example.nl"), &mut out);
        let len = out.len();
        comp.encode(&n("example.nl"), &mut out);
        assert_eq!(out.len(), len + 2);
    }

    #[test]
    fn reusable_compressor_matches_exact_compressor() {
        let names = [
            n("www.example.nl"),
            n("mail.EXAMPLE.nl"),
            n("www.example.nl"),
            n("other.nl"),
            n("deep.a.b.example.nl"),
        ];
        let mut exact_out = Vec::new();
        let mut exact = NameCompressor::new();
        let mut fast_out = Vec::new();
        let mut fast = ReusableCompressor::new();
        for name in &names {
            exact.encode_name(name, &mut exact_out);
            fast.encode_name(name, &mut fast_out);
        }
        assert_eq!(exact_out, fast_out, "same bytes as the exact compressor");
        // and after reset the table is empty again: same output stream
        fast.reset();
        let mut second = Vec::new();
        for name in &names {
            fast.encode_name(name, &mut second);
        }
        assert_eq!(second, fast_out);
    }

    #[test]
    fn reusable_compressor_output_decodes() {
        let names = [
            n("a.b.c.example.nl"),
            n("x.b.c.example.nl"),
            n("c.example.nl"),
        ];
        let mut out = Vec::new();
        let mut comp = ReusableCompressor::new();
        for name in &names {
            comp.encode_name(name, &mut out);
        }
        let mut pos = 0;
        for name in &names {
            let (decoded, next) = Name::parse(&out, pos).unwrap();
            assert_eq!(&decoded, name);
            pos = next;
        }
        assert_eq!(pos, out.len());
    }

    #[test]
    fn suffix_matcher_follows_pointers_and_rejects_mismatch() {
        // build: "example.nl." then "www" + ptr, via the compressor itself
        let mut out = Vec::new();
        let mut comp = ReusableCompressor::new();
        comp.encode_name(&n("example.nl"), &mut out);
        let www_at = out.len();
        comp.encode_name(&n("www.example.nl"), &mut out);
        assert!(suffix_matches(&out, 0, n("example.nl").as_wire()));
        assert!(suffix_matches(&out, 0, n("EXAMPLE.NL").as_wire()));
        assert!(suffix_matches(&out, www_at, n("www.example.nl").as_wire()));
        assert!(!suffix_matches(&out, 0, n("example.nz").as_wire()));
        assert!(!suffix_matches(&out, 0, n("sub.example.nl").as_wire()));
        assert!(!suffix_matches(&out, 0, n("nl").as_wire()));
    }

    #[test]
    fn canonical_ordering() {
        // RFC 4034 §6.1 example ordering flavor
        let mut v = vec![
            n("z.example.nl"),
            n("a.example.nl"),
            n("example.nl"),
            n("nl"),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                n("nl"),
                n("example.nl"),
                n("a.example.nl"),
                n("z.example.nl")
            ]
        );
    }
}

//! DNS wire format, from scratch.
//!
//! This crate implements the DNS message format of RFC 1034/1035 together
//! with the extensions the IMC 2020 paper *"Clouding up the Internet"*
//! depends on: EDNS(0) (RFC 6891), the DNSSEC record types DS / DNSKEY /
//! RRSIG / NSEC (RFC 4034), and the truncation (TC) semantics that drive
//! UDP-to-TCP fallback.
//!
//! Design follows the smoltcp school: plain data structures, explicit
//! errors (no panics on untrusted input), no clever type-level tricks,
//! and exhaustive tests including round-trip property tests.
//!
//! # Layout
//!
//! - [`name`] — domain names: labels, case-insensitive comparison,
//!   compression-pointer decoding and compressing encoder.
//! - [`types`] — enumerations: [`RType`], [`RClass`], [`Rcode`], [`Opcode`].
//! - [`header`] — the 12-byte message header and its flag bits.
//! - [`rdata`] — typed RDATA for the record types the pipeline inspects.
//! - [`edns`] — the OPT pseudo-record: UDP payload size, DO bit, options.
//! - [`message`] — full messages: parse, encode, truncate.
//! - [`builder`] — ergonomic query/response construction.
//!
//! # Example
//!
//! ```
//! use dns_wire::{builder::MessageBuilder, name::Name, types::RType};
//!
//! let qname: Name = "example.nl.".parse().unwrap();
//! let query = MessageBuilder::query(0x1234, qname.clone(), RType::A)
//!     .with_edns(1232, false)
//!     .build();
//! let bytes = query.encode().unwrap();
//! let parsed = dns_wire::message::Message::parse(&bytes).unwrap();
//! assert_eq!(parsed.questions[0].qname, qname);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod edns;
pub mod error;
pub mod header;
pub mod message;
pub mod name;
pub mod rdata;
pub mod tcp;
pub mod types;

pub use builder::MessageBuilder;
pub use error::WireError;
pub use header::Header;
pub use message::{Message, Question, Record};
pub use name::Name;
pub use types::{Opcode, RClass, RType, Rcode};

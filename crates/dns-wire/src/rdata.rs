//! Typed RDATA for the record types the analysis pipeline inspects.
//!
//! Unknown types are carried opaquely (RFC 3597 style) so that nothing in
//! a capture is ever dropped on the floor.

use crate::error::WireError;
use crate::name::{Name, NameEncoder};
use crate::types::RType;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Decoded RDATA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name server.
    Ns(Name),
    /// Canonical name.
    Cname(Name),
    /// Reverse pointer.
    Ptr(Name),
    /// Mail exchange: preference and exchange host.
    Mx {
        /// Preference value, lower wins.
        preference: u16,
        /// The mail host.
        exchange: Name,
    },
    /// Start of authority.
    Soa {
        /// Primary master name.
        mname: Name,
        /// Responsible mailbox.
        rname: Name,
        /// Zone serial.
        serial: u32,
        /// Refresh interval, seconds.
        refresh: u32,
        /// Retry interval, seconds.
        retry: u32,
        /// Expiry, seconds.
        expire: u32,
        /// Negative-caching TTL (RFC 2308).
        minimum: u32,
    },
    /// Text strings (each at most 255 octets).
    Txt(Vec<Vec<u8>>),
    /// Delegation signer (RFC 4034 §5).
    Ds {
        /// Key tag of the referenced DNSKEY.
        key_tag: u16,
        /// Signing algorithm.
        algorithm: u8,
        /// Digest algorithm.
        digest_type: u8,
        /// The digest itself.
        digest: Vec<u8>,
    },
    /// DNSSEC public key (RFC 4034 §2).
    Dnskey {
        /// Flags (256 = ZSK, 257 = KSK).
        flags: u16,
        /// Always 3.
        protocol: u8,
        /// Signing algorithm.
        algorithm: u8,
        /// Public key material.
        public_key: Vec<u8>,
    },
    /// DNSSEC signature (RFC 4034 §3), abbreviated to the fields the
    /// pipeline sizes responses with.
    Rrsig {
        /// Type covered by this signature.
        type_covered: RType,
        /// Signing algorithm.
        algorithm: u8,
        /// Labels in the owner name.
        labels: u8,
        /// Original TTL.
        original_ttl: u32,
        /// Expiration timestamp.
        expiration: u32,
        /// Inception timestamp.
        inception: u32,
        /// Key tag.
        key_tag: u16,
        /// Signer name.
        signer: Name,
        /// Signature bytes.
        signature: Vec<u8>,
    },
    /// Authenticated denial (RFC 4034 §4): next name + type bitmap,
    /// bitmap kept raw.
    Nsec {
        /// Next owner name in canonical order.
        next: Name,
        /// Raw type-bitmap octets.
        type_bitmaps: Vec<u8>,
    },
    /// Hashed authenticated denial (RFC 5155 §3).
    Nsec3 {
        /// Hash algorithm (1 = SHA-1).
        hash_algorithm: u8,
        /// Flags (bit 0 = opt-out).
        flags: u8,
        /// Hash iterations.
        iterations: u16,
        /// Salt octets (empty = no salt).
        salt: Vec<u8>,
        /// Hashed next owner.
        next_hashed: Vec<u8>,
        /// Raw type-bitmap octets.
        type_bitmaps: Vec<u8>,
    },
    /// Certification Authority Authorization (RFC 8659).
    Caa {
        /// Flags (bit 7 = critical).
        flags: u8,
        /// Property tag (e.g. `issue`).
        tag: Vec<u8>,
        /// Property value.
        value: Vec<u8>,
    },
    /// Service binding (RFC 9460): SVCB, and HTTPS via
    /// [`RData::Https`].
    Svcb {
        /// Priority (0 = alias mode).
        priority: u16,
        /// Target name (never compressed).
        target: Name,
        /// Service parameters, raw `(key, value)` pairs in key order.
        params: Vec<(u16, Vec<u8>)>,
    },
    /// HTTPS service binding (RFC 9460), same shape as SVCB.
    Https {
        /// Priority (0 = alias mode).
        priority: u16,
        /// Target name (never compressed).
        target: Name,
        /// Service parameters, raw `(key, value)` pairs in key order.
        params: Vec<(u16, Vec<u8>)>,
    },
    /// Anything else, kept as raw octets with its type code.
    Unknown {
        /// The record type this blob belongs to.
        rtype: RType,
        /// Raw RDATA.
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type this RDATA encodes.
    pub fn rtype(&self) -> RType {
        match self {
            RData::A(_) => RType::A,
            RData::Aaaa(_) => RType::Aaaa,
            RData::Ns(_) => RType::Ns,
            RData::Cname(_) => RType::Cname,
            RData::Ptr(_) => RType::Ptr,
            RData::Mx { .. } => RType::Mx,
            RData::Soa { .. } => RType::Soa,
            RData::Txt(_) => RType::Txt,
            RData::Ds { .. } => RType::Ds,
            RData::Dnskey { .. } => RType::Dnskey,
            RData::Rrsig { .. } => RType::Rrsig,
            RData::Nsec { .. } => RType::Nsec,
            RData::Nsec3 { .. } => RType::Nsec3,
            RData::Caa { .. } => RType::Caa,
            RData::Svcb { .. } => RType::Svcb,
            RData::Https { .. } => RType::Https,
            RData::Unknown { rtype, .. } => *rtype,
        }
    }

    /// Parse RDATA of type `rtype` from `msg[start..start+rdlen]`.
    ///
    /// `msg` is the whole message because several types embed names which
    /// may use compression pointers into earlier parts of the message.
    pub fn parse(rtype: RType, msg: &[u8], start: usize, rdlen: usize) -> Result<RData, WireError> {
        let end = start
            .checked_add(rdlen)
            .ok_or(WireError::Truncated { offset: start })?;
        if end > msg.len() {
            return Err(WireError::Truncated { offset: msg.len() });
        }
        let slice = &msg[start..end];
        let exact = |need: usize| -> Result<(), WireError> {
            if rdlen == need {
                Ok(())
            } else {
                Err(WireError::BadRdataLength {
                    declared: rdlen,
                    consumed: need,
                })
            }
        };
        match rtype {
            RType::A => {
                exact(4)?;
                Ok(RData::A(Ipv4Addr::new(
                    slice[0], slice[1], slice[2], slice[3],
                )))
            }
            RType::Aaaa => {
                exact(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(slice);
                Ok(RData::Aaaa(Ipv6Addr::from(o)))
            }
            RType::Ns | RType::Cname | RType::Ptr => {
                let (name, consumed_to) = Name::parse(msg, start)?;
                if consumed_to != end {
                    return Err(WireError::BadRdataLength {
                        declared: rdlen,
                        consumed: consumed_to - start,
                    });
                }
                Ok(match rtype {
                    RType::Ns => RData::Ns(name),
                    RType::Cname => RData::Cname(name),
                    _ => RData::Ptr(name),
                })
            }
            RType::Mx => {
                if rdlen < 3 {
                    return Err(WireError::Truncated { offset: end });
                }
                let preference = u16::from_be_bytes([slice[0], slice[1]]);
                let (exchange, consumed_to) = Name::parse(msg, start + 2)?;
                if consumed_to != end {
                    return Err(WireError::BadRdataLength {
                        declared: rdlen,
                        consumed: consumed_to - start,
                    });
                }
                Ok(RData::Mx {
                    preference,
                    exchange,
                })
            }
            RType::Soa => {
                let (mname, p1) = Name::parse(msg, start)?;
                let (rname, p2) = Name::parse(msg, p1)?;
                if p2 + 20 != end {
                    return Err(WireError::BadRdataLength {
                        declared: rdlen,
                        consumed: p2 + 20 - start,
                    });
                }
                let g = |i: usize| {
                    u32::from_be_bytes([
                        msg[p2 + i],
                        msg[p2 + i + 1],
                        msg[p2 + i + 2],
                        msg[p2 + i + 3],
                    ])
                };
                Ok(RData::Soa {
                    mname,
                    rname,
                    serial: g(0),
                    refresh: g(4),
                    retry: g(8),
                    expire: g(12),
                    minimum: g(16),
                })
            }
            RType::Txt => {
                let mut strings = Vec::new();
                let mut pos = 0usize;
                while pos < slice.len() {
                    let len = slice[pos] as usize;
                    if pos + 1 + len > slice.len() {
                        return Err(WireError::Truncated {
                            offset: start + pos,
                        });
                    }
                    strings.push(slice[pos + 1..pos + 1 + len].to_vec());
                    pos += 1 + len;
                }
                if strings.is_empty() {
                    // RFC 1035: TXT must contain at least one string.
                    strings.push(Vec::new());
                }
                Ok(RData::Txt(strings))
            }
            RType::Ds => {
                if rdlen < 4 {
                    return Err(WireError::Truncated { offset: end });
                }
                Ok(RData::Ds {
                    key_tag: u16::from_be_bytes([slice[0], slice[1]]),
                    algorithm: slice[2],
                    digest_type: slice[3],
                    digest: slice[4..].to_vec(),
                })
            }
            RType::Dnskey => {
                if rdlen < 4 {
                    return Err(WireError::Truncated { offset: end });
                }
                Ok(RData::Dnskey {
                    flags: u16::from_be_bytes([slice[0], slice[1]]),
                    protocol: slice[2],
                    algorithm: slice[3],
                    public_key: slice[4..].to_vec(),
                })
            }
            RType::Rrsig => {
                if rdlen < 18 {
                    return Err(WireError::Truncated { offset: end });
                }
                let type_covered = RType::from_u16(u16::from_be_bytes([slice[0], slice[1]]));
                let (signer, p) = Name::parse(msg, start + 18)?;
                if p > end {
                    return Err(WireError::BadRdataLength {
                        declared: rdlen,
                        consumed: p - start,
                    });
                }
                Ok(RData::Rrsig {
                    type_covered,
                    algorithm: slice[2],
                    labels: slice[3],
                    original_ttl: u32::from_be_bytes([slice[4], slice[5], slice[6], slice[7]]),
                    expiration: u32::from_be_bytes([slice[8], slice[9], slice[10], slice[11]]),
                    inception: u32::from_be_bytes([slice[12], slice[13], slice[14], slice[15]]),
                    key_tag: u16::from_be_bytes([slice[16], slice[17]]),
                    signer,
                    signature: msg[p..end].to_vec(),
                })
            }
            RType::Nsec => {
                let (next, p) = Name::parse(msg, start)?;
                if p > end {
                    return Err(WireError::BadRdataLength {
                        declared: rdlen,
                        consumed: p - start,
                    });
                }
                Ok(RData::Nsec {
                    next,
                    type_bitmaps: msg[p..end].to_vec(),
                })
            }
            RType::Nsec3 => {
                if rdlen < 5 {
                    return Err(WireError::Truncated { offset: end });
                }
                let salt_len = slice[4] as usize;
                if 5 + salt_len + 1 > rdlen {
                    return Err(WireError::Truncated { offset: end });
                }
                let hash_len = slice[5 + salt_len] as usize;
                if 5 + salt_len + 1 + hash_len > rdlen {
                    return Err(WireError::Truncated { offset: end });
                }
                Ok(RData::Nsec3 {
                    hash_algorithm: slice[0],
                    flags: slice[1],
                    iterations: u16::from_be_bytes([slice[2], slice[3]]),
                    salt: slice[5..5 + salt_len].to_vec(),
                    next_hashed: slice[6 + salt_len..6 + salt_len + hash_len].to_vec(),
                    type_bitmaps: slice[6 + salt_len + hash_len..].to_vec(),
                })
            }
            RType::Caa => {
                if rdlen < 2 {
                    return Err(WireError::Truncated { offset: end });
                }
                let tag_len = slice[1] as usize;
                if 2 + tag_len > rdlen {
                    return Err(WireError::Truncated { offset: end });
                }
                Ok(RData::Caa {
                    flags: slice[0],
                    tag: slice[2..2 + tag_len].to_vec(),
                    value: slice[2 + tag_len..].to_vec(),
                })
            }
            RType::Svcb | RType::Https => {
                if rdlen < 3 {
                    return Err(WireError::Truncated { offset: end });
                }
                let priority = u16::from_be_bytes([slice[0], slice[1]]);
                let (target, p) = Name::parse(msg, start + 2)?;
                let mut params = Vec::new();
                let mut pos = p;
                while pos < end {
                    if pos + 4 > end {
                        return Err(WireError::Truncated { offset: pos });
                    }
                    let key = u16::from_be_bytes([msg[pos], msg[pos + 1]]);
                    let len = u16::from_be_bytes([msg[pos + 2], msg[pos + 3]]) as usize;
                    if pos + 4 + len > end {
                        return Err(WireError::Truncated { offset: pos + 4 });
                    }
                    params.push((key, msg[pos + 4..pos + 4 + len].to_vec()));
                    pos += 4 + len;
                }
                Ok(if rtype == RType::Svcb {
                    RData::Svcb {
                        priority,
                        target,
                        params,
                    }
                } else {
                    RData::Https {
                        priority,
                        target,
                        params,
                    }
                })
            }
            other => Ok(RData::Unknown {
                rtype: other,
                data: slice.to_vec(),
            }),
        }
    }

    /// Append the wire encoding to `out`, compressing embedded names where
    /// RFC 3597 permits (NS/CNAME/PTR/MX/SOA — the "well known" types).
    /// Returns nothing; the caller patches RDLENGTH around this.
    pub fn encode<C: NameEncoder>(&self, comp: &mut C, out: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            RData::A(a) => out.extend_from_slice(&a.octets()),
            RData::Aaaa(a) => out.extend_from_slice(&a.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => comp.encode_name(n, out),
            RData::Mx {
                preference,
                exchange,
            } => {
                out.extend_from_slice(&preference.to_be_bytes());
                comp.encode_name(exchange, out);
            }
            RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                comp.encode_name(mname, out);
                comp.encode_name(rname, out);
                for v in [serial, refresh, retry, expire, minimum] {
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            RData::Txt(strings) => {
                for s in strings {
                    if s.len() > 255 {
                        return Err(WireError::StringTooLong(s.len()));
                    }
                    out.push(s.len() as u8);
                    out.extend_from_slice(s);
                }
            }
            RData::Ds {
                key_tag,
                algorithm,
                digest_type,
                digest,
            } => {
                out.extend_from_slice(&key_tag.to_be_bytes());
                out.push(*algorithm);
                out.push(*digest_type);
                out.extend_from_slice(digest);
            }
            RData::Dnskey {
                flags,
                protocol,
                algorithm,
                public_key,
            } => {
                out.extend_from_slice(&flags.to_be_bytes());
                out.push(*protocol);
                out.push(*algorithm);
                out.extend_from_slice(public_key);
            }
            RData::Rrsig {
                type_covered,
                algorithm,
                labels,
                original_ttl,
                expiration,
                inception,
                key_tag,
                signer,
                signature,
            } => {
                out.extend_from_slice(&type_covered.to_u16().to_be_bytes());
                out.push(*algorithm);
                out.push(*labels);
                out.extend_from_slice(&original_ttl.to_be_bytes());
                out.extend_from_slice(&expiration.to_be_bytes());
                out.extend_from_slice(&inception.to_be_bytes());
                out.extend_from_slice(&key_tag.to_be_bytes());
                // RFC 4034 §3.1.7: signer name MUST NOT be compressed.
                signer.encode_uncompressed(out);
                out.extend_from_slice(signature);
            }
            RData::Nsec { next, type_bitmaps } => {
                // RFC 4034 §4.1.1: next name MUST NOT be compressed.
                next.encode_uncompressed(out);
                out.extend_from_slice(type_bitmaps);
            }
            RData::Nsec3 {
                hash_algorithm,
                flags,
                iterations,
                salt,
                next_hashed,
                type_bitmaps,
            } => {
                if salt.len() > 255 {
                    return Err(WireError::StringTooLong(salt.len()));
                }
                if next_hashed.len() > 255 {
                    return Err(WireError::StringTooLong(next_hashed.len()));
                }
                out.push(*hash_algorithm);
                out.push(*flags);
                out.extend_from_slice(&iterations.to_be_bytes());
                out.push(salt.len() as u8);
                out.extend_from_slice(salt);
                out.push(next_hashed.len() as u8);
                out.extend_from_slice(next_hashed);
                out.extend_from_slice(type_bitmaps);
            }
            RData::Caa { flags, tag, value } => {
                if tag.len() > 255 {
                    return Err(WireError::StringTooLong(tag.len()));
                }
                out.push(*flags);
                out.push(tag.len() as u8);
                out.extend_from_slice(tag);
                out.extend_from_slice(value);
            }
            RData::Svcb {
                priority,
                target,
                params,
            }
            | RData::Https {
                priority,
                target,
                params,
            } => {
                out.extend_from_slice(&priority.to_be_bytes());
                // RFC 9460 §2.2: target name is never compressed
                target.encode_uncompressed(out);
                for (key, value) in params {
                    out.extend_from_slice(&key.to_be_bytes());
                    out.extend_from_slice(&(value.len() as u16).to_be_bytes());
                    out.extend_from_slice(value);
                }
            }
            RData::Unknown { data, .. } => out.extend_from_slice(data),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NameCompressor;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    /// Encode standalone (no prior message context), then reparse.
    fn roundtrip(rd: &RData) -> RData {
        let mut comp = NameCompressor::new();
        let mut out = Vec::new();
        rd.encode(&mut comp, &mut out).unwrap();
        RData::parse(rd.rtype(), &out, 0, out.len()).unwrap()
    }

    #[test]
    fn a_and_aaaa_roundtrip() {
        let a = RData::A("192.0.2.1".parse().unwrap());
        assert_eq!(roundtrip(&a), a);
        let aaaa = RData::Aaaa("2001:db8::53".parse().unwrap());
        assert_eq!(roundtrip(&aaaa), aaaa);
    }

    #[test]
    fn a_with_wrong_length_is_rejected() {
        assert!(matches!(
            RData::parse(RType::A, &[1, 2, 3], 0, 3),
            Err(WireError::BadRdataLength { .. })
        ));
        assert!(matches!(
            RData::parse(RType::Aaaa, &[0; 4], 0, 4),
            Err(WireError::BadRdataLength { .. })
        ));
    }

    #[test]
    fn name_types_roundtrip() {
        for rd in [
            RData::Ns(n("ns1.dns.nl")),
            RData::Cname(n("alias.example.nz")),
            RData::Ptr(n("resolver-ams4.fb.example")),
        ] {
            assert_eq!(roundtrip(&rd), rd);
        }
    }

    #[test]
    fn mx_roundtrip() {
        let mx = RData::Mx {
            preference: 10,
            exchange: n("mx1.example.nl"),
        };
        assert_eq!(roundtrip(&mx), mx);
    }

    #[test]
    fn soa_roundtrip() {
        let soa = RData::Soa {
            mname: n("ns1.dns.nl"),
            rname: n("hostmaster.domain-registry.nl"),
            serial: 2020041101,
            refresh: 3600,
            retry: 600,
            expire: 2419200,
            minimum: 600,
        };
        assert_eq!(roundtrip(&soa), soa);
    }

    #[test]
    fn txt_roundtrip_multi_string() {
        let txt = RData::Txt(vec![b"v=spf1 -all".to_vec(), vec![0u8; 255]]);
        assert_eq!(roundtrip(&txt), txt);
    }

    #[test]
    fn txt_overlong_string_rejected_on_encode() {
        let txt = RData::Txt(vec![vec![0u8; 256]]);
        let mut comp = NameCompressor::new();
        let mut out = Vec::new();
        assert_eq!(
            txt.encode(&mut comp, &mut out),
            Err(WireError::StringTooLong(256))
        );
    }

    #[test]
    fn dnssec_types_roundtrip() {
        let ds = RData::Ds {
            key_tag: 20826,
            algorithm: 8,
            digest_type: 2,
            digest: vec![0xab; 32],
        };
        assert_eq!(roundtrip(&ds), ds);
        let key = RData::Dnskey {
            flags: 257,
            protocol: 3,
            algorithm: 13,
            public_key: vec![1; 64],
        };
        assert_eq!(roundtrip(&key), key);
        let sig = RData::Rrsig {
            type_covered: RType::Ns,
            algorithm: 13,
            labels: 2,
            original_ttl: 3600,
            expiration: 1_600_000_000,
            inception: 1_598_000_000,
            key_tag: 12345,
            signer: n("nl"),
            signature: vec![7; 64],
        };
        assert_eq!(roundtrip(&sig), sig);
        let nsec = RData::Nsec {
            next: n("aaa.nl"),
            type_bitmaps: vec![0, 6, 0x40, 0, 0, 0, 0x03],
        };
        assert_eq!(roundtrip(&nsec), nsec);
    }

    #[test]
    fn nsec3_roundtrip() {
        let rd = RData::Nsec3 {
            hash_algorithm: 1,
            flags: 1, // opt-out
            iterations: 10,
            salt: vec![0xde, 0xad],
            next_hashed: vec![0x5a; 20],
            type_bitmaps: vec![0, 6, 0x40, 0, 0, 0, 0x03],
        };
        assert_eq!(roundtrip(&rd), rd);
        // empty salt is legal
        let rd = RData::Nsec3 {
            hash_algorithm: 1,
            flags: 0,
            iterations: 0,
            salt: vec![],
            next_hashed: vec![1; 20],
            type_bitmaps: vec![],
        };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn nsec3_truncated_rejected() {
        assert!(RData::parse(RType::Nsec3, &[1, 0, 0, 10], 0, 4).is_err());
        // salt length runs past the end
        assert!(RData::parse(RType::Nsec3, &[1, 0, 0, 10, 200, 1], 0, 6).is_err());
    }

    #[test]
    fn caa_roundtrip() {
        let rd = RData::Caa {
            flags: 0x80,
            tag: b"issue".to_vec(),
            value: b"letsencrypt.org".to_vec(),
        };
        assert_eq!(roundtrip(&rd), rd);
        assert!(RData::parse(RType::Caa, &[0], 0, 1).is_err());
        assert!(RData::parse(RType::Caa, &[0, 200, 1], 0, 3).is_err());
    }

    #[test]
    fn svcb_https_roundtrip() {
        let svcb = RData::Svcb {
            priority: 0,
            target: n("pool.svc.example.nl"),
            params: vec![],
        };
        assert_eq!(roundtrip(&svcb), svcb);
        let https = RData::Https {
            priority: 1,
            target: n("."),
            params: vec![(1, b"\x02h2".to_vec()), (4, vec![192, 0, 2, 1])],
        };
        assert_eq!(roundtrip(&https), https);
        // truncated param TLV
        assert!(RData::parse(RType::Https, &[0, 1, 0, 0, 1, 0, 9], 0, 7).is_err());
    }

    #[test]
    fn unknown_type_is_opaque() {
        let rd = RData::Unknown {
            rtype: RType::Unknown(4242),
            data: vec![1, 2, 3, 4, 5],
        };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn ns_with_trailing_garbage_rejected() {
        // valid name followed by an extra byte inside the declared rdlen
        let mut buf = Vec::new();
        n("ns1.nl").encode_uncompressed(&mut buf);
        buf.push(0xff);
        assert!(matches!(
            RData::parse(RType::Ns, &buf, 0, buf.len()),
            Err(WireError::BadRdataLength { .. })
        ));
    }

    #[test]
    fn ds_too_short_rejected() {
        assert!(matches!(
            RData::parse(RType::Ds, &[0, 1, 2], 0, 3),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn compression_pointer_in_rdata_resolves() {
        // message: name at 0, then NS rdata that points back to it
        let mut msg = Vec::new();
        n("example.nl").encode_uncompressed(&mut msg);
        let rdata_at = msg.len();
        msg.extend_from_slice(b"\x03ns1");
        msg.extend_from_slice(&[0xc0, 0x00]);
        let rd = RData::parse(RType::Ns, &msg, rdata_at, msg.len() - rdata_at).unwrap();
        assert_eq!(rd, RData::Ns(n("ns1.example.nl")));
    }
}

//! EDNS(0), RFC 6891: the OPT pseudo-record.
//!
//! The OPT record's *requestor UDP payload size* field is the subject of
//! the paper's Figure 6 (CDF of EDNS(0) UDP message size, Facebook vs
//! Google) and drives the truncation / TCP-fallback behaviour of §4.4:
//! an authoritative answer larger than the advertised size is truncated,
//! forcing the resolver to retry over TCP.

use crate::error::WireError;
use crate::types::RType;

/// The classic pre-EDNS UDP payload limit (RFC 1035 §4.2.1).
pub const CLASSIC_UDP_LIMIT: u16 = 512;
/// The DNS-flag-day-2020 recommended payload size, widely used by
/// Google/Microsoft resolvers in the paper's w2020 data.
pub const FLAG_DAY_2020_SIZE: u16 = 1232;

/// A decoded EDNS(0) OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Requestor's advertised maximum UDP payload size.
    pub udp_payload_size: u16,
    /// Extended-rcode high bits (combined with the header's low 4 bits).
    pub extended_rcode_bits: u8,
    /// EDNS version; 0 is the only deployed version.
    pub version: u8,
    /// DNSSEC-OK bit: the requestor wants DNSSEC records in the answer.
    pub dnssec_ok: bool,
    /// Uninterpreted options (code, payload) — e.g. cookies, NSID.
    pub options: Vec<(u16, Vec<u8>)>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: FLAG_DAY_2020_SIZE,
            extended_rcode_bits: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// A plain OPT advertising `size` bytes, optionally with DO set.
    pub fn with_size(size: u16, dnssec_ok: bool) -> Self {
        Edns {
            udp_payload_size: size,
            dnssec_ok,
            ..Default::default()
        }
    }

    /// The effective UDP limit this OPT imposes on a responder: values
    /// below 512 are treated as 512 (RFC 6891 §6.2.5).
    pub fn effective_udp_limit(&self) -> u16 {
        self.udp_payload_size.max(CLASSIC_UDP_LIMIT)
    }

    /// Decode from the generic record fields of an additional-section
    /// record whose type is OPT. `class_field` carries the payload size,
    /// `ttl_field` the extended rcode/version/flags (RFC 6891 §6.1.3).
    pub fn from_record_fields(
        class_field: u16,
        ttl_field: u32,
        rdata: &[u8],
    ) -> Result<Edns, WireError> {
        let mut options = Vec::new();
        let mut pos = 0usize;
        while pos < rdata.len() {
            if pos + 4 > rdata.len() {
                return Err(WireError::Truncated { offset: pos });
            }
            let code = u16::from_be_bytes([rdata[pos], rdata[pos + 1]]);
            let len = u16::from_be_bytes([rdata[pos + 2], rdata[pos + 3]]) as usize;
            if pos + 4 + len > rdata.len() {
                return Err(WireError::Truncated { offset: pos + 4 });
            }
            options.push((code, rdata[pos + 4..pos + 4 + len].to_vec()));
            pos += 4 + len;
        }
        Ok(Edns {
            udp_payload_size: class_field,
            extended_rcode_bits: (ttl_field >> 24) as u8,
            version: (ttl_field >> 16) as u8,
            dnssec_ok: ttl_field & 0x8000 != 0,
            options,
        })
    }

    /// Encode as a full additional-section record (owner = root).
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.encode_with_rcode_bits(self.extended_rcode_bits, out);
    }

    /// [`Edns::encode`] with the extended-rcode high bits overridden —
    /// used by message encoding to merge the header's rcode without
    /// cloning the OPT.
    pub fn encode_with_rcode_bits(&self, rcode_bits: u8, out: &mut Vec<u8>) {
        out.push(0); // root owner name, uncompressed
        out.extend_from_slice(&RType::Opt.to_u16().to_be_bytes());
        out.extend_from_slice(&self.udp_payload_size.to_be_bytes());
        let mut ttl: u32 = ((rcode_bits as u32) << 24) | ((self.version as u32) << 16);
        if self.dnssec_ok {
            ttl |= 0x8000;
        }
        out.extend_from_slice(&ttl.to_be_bytes());
        let mut rdata = Vec::new();
        for (code, payload) in &self.options {
            rdata.extend_from_slice(&code.to_be_bytes());
            rdata.extend_from_slice(&(payload.len() as u16).to_be_bytes());
            rdata.extend_from_slice(payload);
        }
        out.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
        out.extend_from_slice(&rdata);
    }

    /// Encoded size in octets.
    pub fn encoded_len(&self) -> usize {
        11 + self.options.iter().map(|(_, p)| 4 + p.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_plain() {
        let e = Edns::with_size(4096, true);
        let mut out = Vec::new();
        e.encode(&mut out);
        assert_eq!(out.len(), e.encoded_len());
        // skip name(1) + type(2): class at 3..5, ttl at 5..9, rdlen 9..11
        let class = u16::from_be_bytes([out[3], out[4]]);
        let ttl = u32::from_be_bytes([out[5], out[6], out[7], out[8]]);
        let rdlen = u16::from_be_bytes([out[9], out[10]]) as usize;
        let parsed = Edns::from_record_fields(class, ttl, &out[11..11 + rdlen]).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn roundtrip_with_options() {
        let e = Edns {
            udp_payload_size: 1232,
            extended_rcode_bits: 1,
            version: 0,
            dnssec_ok: false,
            options: vec![(10, vec![1, 2, 3, 4, 5, 6, 7, 8]), (3, vec![])],
        };
        let mut out = Vec::new();
        e.encode(&mut out);
        let class = u16::from_be_bytes([out[3], out[4]]);
        let ttl = u32::from_be_bytes([out[5], out[6], out[7], out[8]]);
        let rdlen = u16::from_be_bytes([out[9], out[10]]) as usize;
        let parsed = Edns::from_record_fields(class, ttl, &out[11..11 + rdlen]).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn truncated_option_rejected() {
        assert!(matches!(
            Edns::from_record_fields(512, 0, &[0, 10, 0, 9, 1, 2]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            Edns::from_record_fields(512, 0, &[0, 10, 0]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn effective_limit_floors_at_512() {
        assert_eq!(Edns::with_size(0, false).effective_udp_limit(), 512);
        assert_eq!(Edns::with_size(100, false).effective_udp_limit(), 512);
        assert_eq!(Edns::with_size(512, false).effective_udp_limit(), 512);
        assert_eq!(Edns::with_size(1232, false).effective_udp_limit(), 1232);
    }

    #[test]
    fn do_bit_placement() {
        let e = Edns::with_size(512, true);
        let mut out = Vec::new();
        e.encode(&mut out);
        let ttl = u32::from_be_bytes([out[5], out[6], out[7], out[8]]);
        assert_eq!(ttl, 0x8000);
    }
}

//! Error types for wire-format parsing and encoding.

use core::fmt;

/// Errors produced while parsing or encoding DNS wire data.
///
/// Parsing untrusted bytes must never panic; every malformed-input
/// condition maps to a variant here so callers (the analytics pipeline's
/// ingest stage) can count and skip bad frames, as ENTRADA does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete field could be read.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// A domain-name label exceeded 63 octets.
    LabelTooLong(usize),
    /// An assembled domain name exceeded 255 octets.
    NameTooLong(usize),
    /// A compression pointer pointed at or after its own position,
    /// or the pointer chain exceeded the hop limit (loop protection).
    BadPointer {
        /// Offset of the offending pointer.
        at: usize,
        /// Target the pointer referenced.
        target: usize,
    },
    /// A label length byte used the reserved 0b10/0b01 prefixes.
    BadLabelType(u8),
    /// RDLENGTH disagreed with the actual RDATA encoding.
    BadRdataLength {
        /// Declared RDLENGTH.
        declared: usize,
        /// Bytes actually consumed.
        consumed: usize,
    },
    /// An OPT record appeared somewhere other than the additional section,
    /// or more than one OPT record was present (RFC 6891 §6.1.1).
    MalformedEdns,
    /// A count field in the header promised more records than the body held.
    CountMismatch {
        /// Which section the mismatch was in.
        section: &'static str,
    },
    /// A text string (TXT character-string) exceeded 255 octets on encode.
    StringTooLong(usize),
    /// The message would not fit the requested size limit and could not be
    /// truncated to fit (even an empty answer set overflows).
    WontFit {
        /// The size limit that could not be met.
        limit: usize,
    },
    /// A name string could not be parsed (empty label, bad escape, etc.).
    BadNameString,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { offset } => {
                write!(f, "input truncated at offset {offset}")
            }
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadPointer { at, target } => {
                write!(f, "bad compression pointer at {at} -> {target}")
            }
            WireError::BadLabelType(b) => write!(f, "reserved label type byte {b:#04x}"),
            WireError::BadRdataLength { declared, consumed } => {
                write!(f, "rdlength {declared} but {consumed} bytes consumed")
            }
            WireError::MalformedEdns => write!(f, "malformed EDNS(0) OPT record placement"),
            WireError::CountMismatch { section } => {
                write!(f, "header count exceeds records in {section} section")
            }
            WireError::StringTooLong(n) => {
                write!(f, "character-string of {n} octets exceeds 255")
            }
            WireError::WontFit { limit } => {
                write!(f, "message cannot fit in {limit} octets")
            }
            WireError::BadNameString => write!(f, "invalid presentation-format name"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated { offset: 12 };
        assert!(e.to_string().contains("12"));
        let e = WireError::BadPointer { at: 30, target: 31 };
        let s = e.to_string();
        assert!(s.contains("30") && s.contains("31"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(WireError::MalformedEdns, WireError::MalformedEdns);
        assert_ne!(
            WireError::LabelTooLong(64),
            WireError::NameTooLong(64),
            "distinct variants must differ"
        );
    }
}

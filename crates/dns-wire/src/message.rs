//! Full DNS messages: questions, records, parse and encode.

use crate::edns::Edns;
use crate::error::WireError;
use crate::header::{Header, HEADER_LEN};
use crate::name::{Name, NameCompressor, NameEncoder, ReusableCompressor};
use crate::rdata::RData;
use crate::types::{RClass, RType, Rcode};

/// A question-section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RType,
    /// Queried class (almost always IN).
    pub qclass: RClass,
}

impl Question {
    /// A class-IN question.
    pub fn new(qname: Name, qtype: RType) -> Self {
        Question {
            qname,
            qtype,
            qclass: RClass::In,
        }
    }

    fn parse(msg: &[u8], pos: usize) -> Result<(Question, usize), WireError> {
        let (qname, p) = Name::parse(msg, pos)?;
        if p + 4 > msg.len() {
            return Err(WireError::Truncated { offset: msg.len() });
        }
        let qtype = RType::from_u16(u16::from_be_bytes([msg[p], msg[p + 1]]));
        let qclass = RClass::from_u16(u16::from_be_bytes([msg[p + 2], msg[p + 3]]));
        Ok((
            Question {
                qname,
                qtype,
                qclass,
            },
            p + 4,
        ))
    }

    fn encode<C: NameEncoder>(&self, comp: &mut C, out: &mut Vec<u8>) {
        comp.encode_name(&self.qname, out);
        out.extend_from_slice(&self.qtype.to_u16().to_be_bytes());
        out.extend_from_slice(&self.qclass.to_u16().to_be_bytes());
    }
}

/// A resource record in the answer, authority or additional section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (IN except for OPT, which abuses the field).
    pub class: RClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed record data.
    pub rdata: RData,
}

impl Record {
    /// A class-IN record.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            class: RClass::In,
            ttl,
            rdata,
        }
    }

    /// The record type.
    pub fn rtype(&self) -> RType {
        self.rdata.rtype()
    }

    fn encode<C: NameEncoder>(&self, comp: &mut C, out: &mut Vec<u8>) -> Result<(), WireError> {
        comp.encode_name(&self.name, out);
        out.extend_from_slice(&self.rtype().to_u16().to_be_bytes());
        out.extend_from_slice(&self.class.to_u16().to_be_bytes());
        out.extend_from_slice(&self.ttl.to_be_bytes());
        let rdlen_at = out.len();
        out.extend_from_slice(&[0, 0]);
        let rdata_start = out.len();
        self.rdata.encode(comp, out)?;
        let rdlen = out.len() - rdata_start;
        out[rdlen_at] = (rdlen >> 8) as u8;
        out[rdlen_at + 1] = rdlen as u8;
        Ok(())
    }
}

/// A complete DNS message.
///
/// The OPT pseudo-record, if present, is lifted out of the additional
/// section into [`Message::edns`], and its extended-rcode bits are merged
/// into [`Header::rcode`] — matching how measurement pipelines reason
/// about messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Header (with merged extended rcode).
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section, *excluding* the OPT record.
    pub additionals: Vec<Record>,
    /// EDNS(0) data, if an OPT record was present.
    pub edns: Option<Edns>,
}

impl Message {
    /// An empty message with the given header.
    pub fn new(header: Header) -> Self {
        Message {
            header,
            questions: Vec::new(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: None,
        }
    }

    /// Parse a message from wire bytes.
    pub fn parse(msg: &[u8]) -> Result<Message, WireError> {
        let (mut header, counts) = Header::parse(msg)?;
        let mut pos = HEADER_LEN;

        let mut questions = Vec::with_capacity(counts[0] as usize);
        for _ in 0..counts[0] {
            let (q, p) = Question::parse(msg, pos).map_err(|e| section_err(e, "question"))?;
            questions.push(q);
            pos = p;
        }

        let mut sections: [Vec<Record>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut edns: Option<Edns> = None;
        for (si, count) in counts[1..].iter().enumerate() {
            let section_name = ["answer", "authority", "additional"][si];
            for _ in 0..*count {
                let (name, p) = Name::parse(msg, pos).map_err(|e| section_err(e, section_name))?;
                if p + 10 > msg.len() {
                    return Err(WireError::Truncated { offset: msg.len() });
                }
                let rtype = RType::from_u16(u16::from_be_bytes([msg[p], msg[p + 1]]));
                let class_field = u16::from_be_bytes([msg[p + 2], msg[p + 3]]);
                let ttl_field =
                    u32::from_be_bytes([msg[p + 4], msg[p + 5], msg[p + 6], msg[p + 7]]);
                let rdlen = u16::from_be_bytes([msg[p + 8], msg[p + 9]]) as usize;
                let rdata_start = p + 10;
                if rdata_start + rdlen > msg.len() {
                    return Err(WireError::Truncated { offset: msg.len() });
                }
                if rtype == RType::Opt {
                    if si != 2 || edns.is_some() || !name.is_root() {
                        return Err(WireError::MalformedEdns);
                    }
                    let e = Edns::from_record_fields(
                        class_field,
                        ttl_field,
                        &msg[rdata_start..rdata_start + rdlen],
                    )?;
                    // Merge extended rcode: high 8 bits from OPT, low 4
                    // from the header (RFC 6891 §6.1.3).
                    if e.extended_rcode_bits != 0 {
                        let low = header.rcode.to_u16() & 0x0f;
                        header.rcode = Rcode::from_u16(((e.extended_rcode_bits as u16) << 4) | low);
                    }
                    edns = Some(e);
                } else {
                    let rdata = RData::parse(rtype, msg, rdata_start, rdlen)?;
                    sections[si].push(Record {
                        name,
                        class: RClass::from_u16(class_field),
                        ttl: ttl_field,
                        rdata,
                    });
                }
                pos = rdata_start + rdlen;
            }
        }
        let [answers, authorities, additionals] = sections;
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }

    /// Encode to wire bytes with name compression. No size limit — for
    /// TCP, or as the first step of [`Message::encode_with_limit`].
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        self.encode_inner(
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len(),
        )
    }

    /// Encode for UDP under a payload-size limit.
    ///
    /// If the full message does not fit, records are dropped (additional
    /// first, then authority, then answer — all-or-nothing per section is
    /// NOT used; we drop from the tail, matching common server behaviour)
    /// and the TC bit is set, telling the client to retry over TCP. This
    /// is the mechanism behind the paper's truncation-rate comparison
    /// (Facebook 17.16% vs Google 0.04%, §4.4).
    pub fn encode_with_limit(&self, limit: usize) -> Result<(Vec<u8>, bool), WireError> {
        let full = self.encode()?;
        if full.len() <= limit {
            return Ok((full, false));
        }
        // Drop records from the tail until it fits.
        let mut an = self.answers.len();
        let mut ns = self.authorities.len();
        let mut ar = self.additionals.len();
        loop {
            if ar > 0 {
                ar -= 1;
            } else if ns > 0 {
                ns -= 1;
            } else if an > 0 {
                an -= 1;
            } else {
                let mut msg = self.clone();
                msg.header.truncated = true;
                msg.answers.clear();
                msg.authorities.clear();
                msg.additionals.clear();
                let bytes = msg.encode()?;
                if bytes.len() > limit {
                    return Err(WireError::WontFit { limit });
                }
                return Ok((bytes, true));
            }
            let mut msg = self.clone();
            msg.header.truncated = true;
            msg.answers.truncate(an);
            msg.authorities.truncate(ns);
            msg.additionals.truncate(ar);
            let bytes = msg.encode_inner(an, ns, ar)?;
            if bytes.len() <= limit {
                return Ok((bytes, true));
            }
        }
    }

    fn encode_inner(&self, an: usize, ns: usize, ar: usize) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::with_capacity(512);
        let mut comp = NameCompressor::new();
        self.encode_sections(an, ns, ar, &mut comp, &mut out)?;
        Ok(out)
    }

    /// Encode into caller-owned buffers, reusing their capacity: `out`
    /// is cleared and `comp` reset first, so a hot loop that keeps both
    /// across messages performs zero heap allocations in steady state.
    /// Produces bytes identical to [`Message::encode`].
    pub fn encode_into(
        &self,
        comp: &mut ReusableCompressor,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        out.clear();
        comp.reset();
        self.encode_sections(
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len(),
            comp,
            out,
        )
    }

    fn encode_sections<C: NameEncoder>(
        &self,
        an: usize,
        ns: usize,
        ar: usize,
        comp: &mut C,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        let opt_count = usize::from(self.edns.is_some());
        self.header.encode(
            [
                self.questions.len() as u16,
                an as u16,
                ns as u16,
                (ar + opt_count) as u16,
            ],
            out,
        );
        for q in &self.questions {
            q.encode(comp, out);
        }
        for r in self.answers.iter().take(an) {
            r.encode(comp, out)?;
        }
        for r in self.authorities.iter().take(ns) {
            r.encode(comp, out)?;
        }
        for r in self.additionals.iter().take(ar) {
            r.encode(comp, out)?;
        }
        if let Some(edns) = &self.edns {
            edns.encode_with_rcode_bits((self.header.rcode.to_u16() >> 4) as u8, out);
        }
        Ok(())
    }

    /// The first question, if any — the common case for queries.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }
}

fn section_err(e: WireError, section: &'static str) -> WireError {
    match e {
        WireError::Truncated { .. } => WireError::CountMismatch { section },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::Header;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn sample_response() -> Message {
        let mut msg = Message::new(Header::response_to(
            &Header::request(0xabcd),
            Rcode::NoError,
        ));
        msg.questions
            .push(Question::new(n("example.nl"), RType::Ns));
        msg.answers.push(Record::new(
            n("example.nl"),
            3600,
            RData::Ns(n("ns1.example.nl")),
        ));
        msg.answers.push(Record::new(
            n("example.nl"),
            3600,
            RData::Ns(n("ns2.example.nl")),
        ));
        msg.additionals.push(Record::new(
            n("ns1.example.nl"),
            3600,
            RData::A("192.0.2.53".parse().unwrap()),
        ));
        msg.additionals.push(Record::new(
            n("ns1.example.nl"),
            3600,
            RData::Aaaa("2001:db8::53".parse().unwrap()),
        ));
        msg.edns = Some(Edns::with_size(1232, true));
        msg
    }

    #[test]
    fn roundtrip_full_response() {
        let msg = sample_response();
        let bytes = msg.encode().unwrap();
        let parsed = Message::parse(&bytes).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn roundtrip_bare_query() {
        let mut msg = Message::new(Header::request(1));
        msg.questions.push(Question::new(n("nz"), RType::Soa));
        let bytes = msg.encode().unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + 1 + 2 + 1 + 4);
        let parsed = Message::parse(&bytes).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn compression_shrinks_messages() {
        let msg = sample_response();
        let compressed = msg.encode().unwrap();
        // Rough check: the owner name "example.nl" appears many times; the
        // compressed form must be far below the naive sum.
        let naive: usize = 12
            + msg.questions.iter().map(|q| q.qname.wire_len() + 4).sum::<usize>()
            + 2 * (12 + 16) // two NS records, uncompressed estimate
            + 2 * (16 + 14)
            + 11;
        assert!(compressed.len() < naive, "{} !< {naive}", compressed.len());
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffers() {
        let msg = sample_response();
        let fresh = msg.encode().unwrap();
        let mut comp = ReusableCompressor::new();
        let mut out = Vec::new();
        msg.encode_into(&mut comp, &mut out).unwrap();
        assert_eq!(out, fresh, "byte-identical to the allocating path");
        // reuse across different messages: stale state must not leak
        let mut other = Message::new(Header::request(7));
        other.questions.push(Question::new(n("x.nz"), RType::A));
        msg.encode_into(&mut comp, &mut out).unwrap();
        other.encode_into(&mut comp, &mut out).unwrap();
        assert_eq!(out, other.encode().unwrap());
        msg.encode_into(&mut comp, &mut out).unwrap();
        assert_eq!(out, fresh);
        // and the extended rcode merge behaves like encode()
        let mut ext = sample_response();
        ext.header.rcode = Rcode::BadVers;
        ext.encode_into(&mut comp, &mut out).unwrap();
        assert_eq!(out, ext.encode().unwrap());
        assert_eq!(Message::parse(&out).unwrap().header.rcode, Rcode::BadVers);
    }

    #[test]
    fn truncation_drops_and_sets_tc() {
        let msg = sample_response();
        let full = msg.encode().unwrap();
        let (bytes, truncated) = msg.encode_with_limit(full.len() - 1).unwrap();
        assert!(truncated);
        assert!(bytes.len() < full.len());
        let parsed = Message::parse(&bytes).unwrap();
        assert!(parsed.header.truncated);
        assert_eq!(parsed.questions, msg.questions, "question always kept");
    }

    #[test]
    fn no_truncation_when_it_fits() {
        let msg = sample_response();
        let full = msg.encode().unwrap();
        let (bytes, truncated) = msg.encode_with_limit(4096).unwrap();
        assert!(!truncated);
        assert_eq!(bytes, full);
    }

    #[test]
    fn truncation_to_empty_when_limit_tiny() {
        let msg = sample_response();
        // Enough for header+question+OPT only.
        let mut empty = msg.clone();
        empty.answers.clear();
        empty.authorities.clear();
        empty.additionals.clear();
        let floor = empty.encode().unwrap().len();
        let (bytes, truncated) = msg.encode_with_limit(floor).unwrap();
        assert!(truncated);
        let parsed = Message::parse(&bytes).unwrap();
        assert!(parsed.answers.is_empty());
        assert!(parsed.header.truncated);
    }

    #[test]
    fn wont_fit_when_question_alone_overflows() {
        let msg = sample_response();
        assert!(matches!(
            msg.encode_with_limit(10),
            Err(WireError::WontFit { .. })
        ));
    }

    #[test]
    fn opt_outside_additional_is_malformed() {
        let msg = sample_response();
        let bytes = msg.encode().unwrap();
        let parsed = Message::parse(&bytes).unwrap();
        assert!(parsed.edns.is_some());
        // craft: change answer count to claim OPT in answer section —
        // simpler: build a message whose answer section contains an OPT.
        let mut raw = Vec::new();
        Header::request(5).encode([0, 1, 0, 0], &mut raw);
        Edns::with_size(512, false).encode(&mut raw);
        assert_eq!(Message::parse(&raw), Err(WireError::MalformedEdns));
    }

    #[test]
    fn double_opt_is_malformed() {
        let mut raw = Vec::new();
        Header::request(5).encode([0, 0, 0, 2], &mut raw);
        Edns::with_size(512, false).encode(&mut raw);
        Edns::with_size(512, false).encode(&mut raw);
        assert_eq!(Message::parse(&raw), Err(WireError::MalformedEdns));
    }

    #[test]
    fn extended_rcode_merges() {
        // Header rcode low bits 0 + OPT extended bits 1 => rcode 16 (BADVERS)
        let mut raw = Vec::new();
        let mut h = Header::request(5);
        h.response = true;
        h.encode([0, 0, 0, 1], &mut raw);
        let e = Edns {
            extended_rcode_bits: 1,
            ..Edns::with_size(512, false)
        };
        e.encode(&mut raw);
        let parsed = Message::parse(&raw).unwrap();
        assert_eq!(parsed.header.rcode, Rcode::BadVers);
    }

    #[test]
    fn extended_rcode_reencodes() {
        let mut msg = Message::new(Header::request(9));
        msg.header.response = true;
        msg.header.rcode = Rcode::BadVers;
        msg.edns = Some(Edns::with_size(1232, false));
        let bytes = msg.encode().unwrap();
        let parsed = Message::parse(&bytes).unwrap();
        assert_eq!(parsed.header.rcode, Rcode::BadVers);
    }

    #[test]
    fn count_mismatch_detected() {
        let mut raw = Vec::new();
        Header::request(5).encode([2, 0, 0, 0], &mut raw); // claims 2 questions
        let mut comp = NameCompressor::new();
        Question::new(n("example.nl"), RType::A).encode(&mut comp, &mut raw);
        assert_eq!(
            Message::parse(&raw),
            Err(WireError::CountMismatch {
                section: "question"
            })
        );
    }

    #[test]
    fn garbage_never_panics() {
        // quick deterministic fuzz: parse every prefix of a valid message
        let bytes = sample_response().encode().unwrap();
        for end in 0..bytes.len() {
            let _ = Message::parse(&bytes[..end]);
        }
        // and a few byte-flips
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xff;
            let _ = Message::parse(&b);
        }
    }
}

//! Ergonomic construction of queries and responses.

use crate::edns::Edns;
use crate::header::Header;
use crate::message::{Message, Question, Record};
use crate::name::Name;
use crate::rdata::RData;
use crate::types::{RType, Rcode};

/// Fluent builder for [`Message`].
///
/// ```
/// use dns_wire::{builder::MessageBuilder, name::Name, types::{RType, Rcode}};
///
/// let q: Name = "sidn.nl.".parse().unwrap();
/// let query = MessageBuilder::query(7, q.clone(), RType::Ns)
///     .with_edns(1232, true)
///     .build();
/// let resp = MessageBuilder::response(&query, Rcode::NoError)
///     .answer(q, 3600, dns_wire::rdata::RData::Ns("ns1.sidn.nl.".parse().unwrap()))
///     .build();
/// assert!(resp.header.response);
/// ```
pub struct MessageBuilder {
    msg: Message,
}

impl MessageBuilder {
    /// Start a standard query for `(qname, qtype)` with transaction `id`.
    pub fn query(id: u16, qname: Name, qtype: RType) -> Self {
        let mut msg = Message::new(Header::request(id));
        msg.questions.push(Question::new(qname, qtype));
        MessageBuilder { msg }
    }

    /// Start a response answering `query` with `rcode`, copying its
    /// question section and mirroring the requestor's EDNS presence.
    pub fn response(query: &Message, rcode: Rcode) -> Self {
        let mut msg = Message::new(Header::response_to(&query.header, rcode));
        msg.questions = query.questions.clone();
        if let Some(q_edns) = &query.edns {
            msg.edns = Some(Edns::with_size(4096, q_edns.dnssec_ok));
        }
        MessageBuilder { msg }
    }

    /// Attach an EDNS(0) OPT advertising `udp_size`, with the DO bit.
    pub fn with_edns(mut self, udp_size: u16, dnssec_ok: bool) -> Self {
        self.msg.edns = Some(Edns::with_size(udp_size, dnssec_ok));
        self
    }

    /// Set the RD (recursion desired) bit.
    pub fn recursion_desired(mut self, rd: bool) -> Self {
        self.msg.header.recursion_desired = rd;
        self
    }

    /// Set the CD (checking disabled) bit, as validating resolvers do.
    pub fn checking_disabled(mut self, cd: bool) -> Self {
        self.msg.header.checking_disabled = cd;
        self
    }

    /// Append a record to the answer section.
    pub fn answer(mut self, name: Name, ttl: u32, rdata: RData) -> Self {
        self.msg.answers.push(Record::new(name, ttl, rdata));
        self
    }

    /// Append a record to the authority section.
    pub fn authority(mut self, name: Name, ttl: u32, rdata: RData) -> Self {
        self.msg.authorities.push(Record::new(name, ttl, rdata));
        self
    }

    /// Append a record to the additional section.
    pub fn additional(mut self, name: Name, ttl: u32, rdata: RData) -> Self {
        self.msg.additionals.push(Record::new(name, ttl, rdata));
        self
    }

    /// Finish, yielding the message.
    pub fn build(self) -> Message {
        self.msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn query_shape() {
        let q = MessageBuilder::query(42, n("example.nz"), RType::Aaaa)
            .with_edns(512, false)
            .build();
        assert!(!q.header.response);
        assert_eq!(q.questions.len(), 1);
        assert_eq!(q.questions[0].qtype, RType::Aaaa);
        assert_eq!(q.edns.as_ref().unwrap().udp_payload_size, 512);
        assert!(
            !q.header.recursion_desired,
            "resolver->auth queries clear RD"
        );
    }

    #[test]
    fn response_copies_question_and_edns_presence() {
        let q = MessageBuilder::query(42, n("example.nz"), RType::A)
            .with_edns(1232, true)
            .build();
        let r = MessageBuilder::response(&q, Rcode::NxDomain).build();
        assert_eq!(r.header.id, 42);
        assert!(r.header.response);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert_eq!(r.questions, q.questions);
        assert!(r.edns.is_some());
        assert!(r.edns.as_ref().unwrap().dnssec_ok);
    }

    #[test]
    fn response_without_edns_when_query_lacks_it() {
        let q = MessageBuilder::query(1, n("x.nl"), RType::A).build();
        let r = MessageBuilder::response(&q, Rcode::NoError).build();
        assert!(r.edns.is_none());
    }

    #[test]
    fn sections_accumulate() {
        let q = MessageBuilder::query(1, n("example.nl"), RType::Ns).build();
        let r = MessageBuilder::response(&q, Rcode::NoError)
            .answer(n("example.nl"), 3600, RData::Ns(n("ns1.example.nl")))
            .authority(n("nl"), 3600, RData::Ns(n("ns1.dns.nl")))
            .additional(
                n("ns1.example.nl"),
                300,
                RData::A("192.0.2.1".parse().unwrap()),
            )
            .build();
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.authorities.len(), 1);
        assert_eq!(r.additionals.len(), 1);
        let bytes = r.encode().unwrap();
        assert_eq!(Message::parse(&bytes).unwrap(), r);
    }

    #[test]
    fn flag_builders() {
        let q = MessageBuilder::query(1, n("a.nl"), RType::A)
            .recursion_desired(true)
            .checking_disabled(true)
            .build();
        assert!(q.header.recursion_desired);
        assert!(q.header.checking_disabled);
    }
}

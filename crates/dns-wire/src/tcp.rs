//! DNS-over-TCP framing (RFC 1035 §4.2.2 / RFC 7766): each message on a
//! TCP stream is preceded by a two-octet, big-endian length field.
//!
//! The simulator frames TCP payloads with [`frame`]; the warehouse's
//! ingest deframes with [`Deframer`], which is an incremental decoder —
//! segments may split anywhere, including inside the length prefix.

use crate::error::WireError;

/// Maximum DNS message size carried over TCP (the length field's range).
pub const MAX_TCP_MESSAGE: usize = 65_535;

/// Frame one message for a TCP stream.
///
/// # Errors
/// [`WireError::WontFit`] if the message exceeds 65 535 octets.
pub fn frame(message: &[u8]) -> Result<Vec<u8>, WireError> {
    if message.len() > MAX_TCP_MESSAGE {
        return Err(WireError::WontFit {
            limit: MAX_TCP_MESSAGE,
        });
    }
    let mut out = Vec::with_capacity(2 + message.len());
    out.extend_from_slice(&(message.len() as u16).to_be_bytes());
    out.extend_from_slice(message);
    Ok(out)
}

/// Frame several messages back-to-back (a persistent RFC 7766 stream).
pub fn frame_all<'a>(messages: impl IntoIterator<Item = &'a [u8]>) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    for m in messages {
        out.extend_from_slice(&frame(m)?);
    }
    Ok(out)
}

/// Incremental TCP-stream deframer.
///
/// Feed arbitrary segment chunks with [`Deframer::push`]; complete
/// messages come out of [`Deframer::next_message`].
#[derive(Debug, Default)]
pub struct Deframer {
    buf: Vec<u8>,
    pos: usize,
}

impl Deframer {
    /// Fresh deframer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append stream bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        // compact lazily so long streams don't grow unboundedly
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pop the next complete message, if one is buffered.
    pub fn next_message(&mut self) -> Option<Vec<u8>> {
        let avail = self.buf.len() - self.pos;
        if avail < 2 {
            return None;
        }
        let len = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]) as usize;
        if avail < 2 + len {
            return None;
        }
        let start = self.pos + 2;
        let msg = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        Some(msg)
    }

    /// Bytes buffered but not yet consumed (partial frame).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// One-shot deframe of a whole stream; errors on trailing garbage.
pub fn deframe_all(stream: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    let mut d = Deframer::new();
    d.push(stream);
    let mut out = Vec::new();
    while let Some(m) = d.next_message() {
        out.push(m);
    }
    if d.pending() != 0 {
        return Err(WireError::Truncated {
            offset: stream.len() - d.pending(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single() {
        let msg = b"\x12\x34hello dns".to_vec();
        let framed = frame(&msg).unwrap();
        assert_eq!(framed.len(), msg.len() + 2);
        assert_eq!(deframe_all(&framed).unwrap(), vec![msg]);
    }

    #[test]
    fn roundtrip_stream_of_messages() {
        let msgs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; i as usize * 7 + 1]).collect();
        let stream = frame_all(msgs.iter().map(|m| m.as_slice())).unwrap();
        assert_eq!(deframe_all(&stream).unwrap(), msgs);
    }

    #[test]
    fn empty_message_is_legal() {
        let framed = frame(b"").unwrap();
        assert_eq!(framed, vec![0, 0]);
        assert_eq!(deframe_all(&framed).unwrap(), vec![Vec::<u8>::new()]);
    }

    #[test]
    fn oversized_message_rejected() {
        let big = vec![0u8; MAX_TCP_MESSAGE + 1];
        assert!(matches!(frame(&big), Err(WireError::WontFit { .. })));
        let exact = vec![0u8; MAX_TCP_MESSAGE];
        assert!(frame(&exact).is_ok());
    }

    #[test]
    fn incremental_byte_by_byte() {
        let msgs: Vec<Vec<u8>> = vec![b"abc".to_vec(), b"defgh".to_vec()];
        let stream = frame_all(msgs.iter().map(|m| m.as_slice())).unwrap();
        let mut d = Deframer::new();
        let mut got = Vec::new();
        for &b in &stream {
            d.push(&[b]);
            while let Some(m) = d.next_message() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn split_inside_length_prefix() {
        let msg = b"xyzzy".to_vec();
        let framed = frame(&msg).unwrap();
        let mut d = Deframer::new();
        d.push(&framed[..1]); // half the length field
        assert_eq!(d.next_message(), None);
        d.push(&framed[1..3]);
        assert_eq!(d.next_message(), None, "length known, body incomplete");
        d.push(&framed[3..]);
        assert_eq!(d.next_message(), Some(msg));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut stream = frame(b"ok").unwrap();
        stream.push(0xff); // half a length prefix
        assert!(matches!(
            deframe_all(&stream),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn compaction_keeps_working() {
        let msg = vec![7u8; 600];
        let framed = frame(&msg).unwrap();
        let mut d = Deframer::new();
        for _ in 0..50 {
            d.push(&framed);
            assert_eq!(d.next_message(), Some(msg.clone()));
        }
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn real_dns_message_roundtrips_through_tcp_framing() {
        use crate::builder::MessageBuilder;
        use crate::message::Message;
        use crate::types::RType;
        let q = MessageBuilder::query(9, "example.nl.".parse().unwrap(), RType::Soa)
            .with_edns(1232, true)
            .build();
        let wire = q.encode().unwrap();
        let framed = frame(&wire).unwrap();
        let messages = deframe_all(&framed).unwrap();
        assert_eq!(Message::parse(&messages[0]).unwrap(), q);
    }
}

//! Hardening corpus: hand-crafted hostile wire inputs. Every case must
//! return a typed error (or a correct parse) — never panic, hang, or
//! over-allocate.

use dns_wire::error::WireError;
use dns_wire::header::Header;
use dns_wire::message::Message;
use dns_wire::name::Name;

/// Build a raw message skeleton: header with given counts + body bytes.
fn raw(counts: [u16; 4], body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    Header::request(0xdead).encode(counts, &mut out);
    out.extend_from_slice(body);
    out
}

#[test]
fn compression_pointer_self_loop() {
    // question name is a pointer to itself
    let msg = raw([1, 0, 0, 0], &[0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01]);
    assert!(matches!(
        Message::parse(&msg),
        Err(WireError::BadPointer { .. })
    ));
}

#[test]
fn compression_pointer_two_hop_cycle() {
    // name at 12 points to 14; name at 14 points to 12
    let body = [0xc0, 14, 0xc0, 12, 0x00, 0x01, 0x00, 0x01];
    let msg = raw([1, 0, 0, 0], &body);
    assert!(Message::parse(&msg).is_err());
}

#[test]
fn deep_pointer_chain_is_bounded() {
    // 200 chained pointers, each pointing 2 bytes back — must be refused
    // (hop limit), not walked forever.
    let mut body = vec![0x00]; // root name at offset 12
    for i in 0..200u16 {
        let target = 12 + i * 2;
        // each pointer points at the previous pointer
        body.push(0xc0 | ((target >> 8) as u8 & 0x3f));
        body.push(target as u8);
    }
    body.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]);
    let msg = raw([1, 0, 0, 0], &body);
    let _ = Message::parse(&msg); // any Err is fine; must terminate
}

#[test]
fn label_runs_past_end() {
    let msg = raw([1, 0, 0, 0], &[0x3f, b'a', b'b']);
    assert!(Message::parse(&msg).is_err());
}

#[test]
fn name_exactly_at_255_limit() {
    // 3 labels of 63 + 1 label of 61 = 63*3+3 + 62 + 1 = 255 octets: legal
    let l63 = vec![b'x'; 63];
    let l61 = vec![b'y'; 61];
    let name = Name::from_labels([l63.as_slice(), &l63, &l63, &l61]).unwrap();
    assert_eq!(name.wire_len(), 255);
    // one more byte tips it over
    let l62 = vec![b'y'; 62];
    assert!(matches!(
        Name::from_labels([l63.as_slice(), &l63, &l63, &l62]),
        Err(WireError::NameTooLong(_))
    ));
}

#[test]
fn counts_larger_than_body() {
    for counts in [[100, 0, 0, 0], [1, 100, 0, 0], [0, 0, 0, 50]] {
        let msg = raw(counts, &[0x00, 0x00, 0x01, 0x00, 0x01]);
        assert!(Message::parse(&msg).is_err(), "{counts:?}");
    }
}

#[test]
fn rdlength_overflowing_usize_arithmetic() {
    // record with rdlength 0xffff but 2 bytes of rdata
    let mut body = Vec::new();
    body.extend_from_slice(&[0x00]); // owner: root
    body.extend_from_slice(&[0x00, 0x01]); // type A
    body.extend_from_slice(&[0x00, 0x01]); // class IN
    body.extend_from_slice(&[0, 0, 0, 60]); // ttl
    body.extend_from_slice(&[0xff, 0xff]); // rdlength
    body.extend_from_slice(&[1, 2]);
    let msg = raw([0, 1, 0, 0], &body);
    assert!(matches!(
        Message::parse(&msg),
        Err(WireError::Truncated { .. })
    ));
}

#[test]
fn opt_with_truncated_option_tlv() {
    let mut body = Vec::new();
    body.push(0x00); // root owner
    body.extend_from_slice(&41u16.to_be_bytes()); // OPT
    body.extend_from_slice(&4096u16.to_be_bytes()); // class = size
    body.extend_from_slice(&[0, 0, 0, 0]); // ttl
    body.extend_from_slice(&6u16.to_be_bytes()); // rdlength
    body.extend_from_slice(&[0, 10, 0, 200, 1, 2]); // opt len 200, 2 bytes
    let msg = raw([0, 0, 0, 1], &body);
    assert!(Message::parse(&msg).is_err());
}

#[test]
fn txt_with_zero_length_strings() {
    // TXT rdata of 3 zero-length character-strings is legal
    let mut body = Vec::new();
    body.push(0x00);
    body.extend_from_slice(&16u16.to_be_bytes()); // TXT
    body.extend_from_slice(&1u16.to_be_bytes());
    body.extend_from_slice(&[0, 0, 0, 60]);
    body.extend_from_slice(&3u16.to_be_bytes());
    body.extend_from_slice(&[0, 0, 0]);
    let msg = raw([0, 1, 0, 0], &body);
    let parsed = Message::parse(&msg).expect("legal TXT");
    assert_eq!(parsed.answers.len(), 1);
}

#[test]
fn soa_name_crossing_rdata_boundary() {
    // SOA whose mname is a pointer to later bytes inside rdata but whose
    // declared rdlength cuts the fixed fields short
    let mut body = Vec::new();
    body.push(0x00);
    body.extend_from_slice(&6u16.to_be_bytes()); // SOA
    body.extend_from_slice(&1u16.to_be_bytes());
    body.extend_from_slice(&[0, 0, 0, 60]);
    body.extend_from_slice(&4u16.to_be_bytes()); // rdlength: way too short
    body.extend_from_slice(&[0x00, 0x00, 0x00, 0x00]);
    let msg = raw([0, 1, 0, 0], &body);
    assert!(Message::parse(&msg).is_err());
}

#[test]
fn empty_and_header_only_inputs() {
    assert!(Message::parse(&[]).is_err());
    assert!(Message::parse(&[0u8; 11]).is_err());
    let ok = raw([0, 0, 0, 0], &[]);
    let parsed = Message::parse(&ok).expect("header-only is a legal message");
    assert!(parsed.questions.is_empty());
}

#[test]
fn trailing_bytes_after_sections_are_tolerated() {
    // real captures contain padding; parser reads declared counts and
    // ignores the rest
    let mut msg = raw([1, 0, 0, 0], &[0x00, 0x00, 0x01, 0x00, 0x01]);
    msg.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
    assert!(Message::parse(&msg).is_ok());
}

#[test]
fn tcp_deframer_hostile_lengths() {
    use dns_wire::tcp::Deframer;
    let mut d = Deframer::new();
    // claims 65535 bytes, delivers 3
    d.push(&[0xff, 0xff, 1, 2, 3]);
    assert_eq!(d.next_message(), None);
    assert_eq!(d.pending(), 5);
    // a zero-length frame mid-stream is fine
    let mut d = Deframer::new();
    d.push(&[0, 0, 0, 1, b'x']);
    assert_eq!(d.next_message(), Some(vec![]));
    assert_eq!(d.next_message(), Some(vec![b'x']));
}

#[test]
fn fuzz_smoke_random_blobs() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    for _ in 0..20_000 {
        let len = rng.gen_range(0..160);
        let blob: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let _ = Message::parse(&blob);
        let _ = Name::parse(&blob, 0);
        let _ = dns_wire::tcp::deframe_all(&blob);
    }
}

//! Property-based tests for the wire format: round-trips, parser
//! robustness against arbitrary and mutated input.

use dns_wire::edns::Edns;
use dns_wire::header::Header;
use dns_wire::message::{Message, Question, Record};
use dns_wire::name::Name;
use dns_wire::rdata::RData;
use dns_wire::types::{RType, Rcode};
use proptest::prelude::*;

/// Strategy for a random label: 1..=63 arbitrary octets.
fn label() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 1..=63)
}

/// Strategy for a random name: up to 5 labels, total length kept legal.
fn name() -> impl Strategy<Value = Name> {
    prop::collection::vec(label(), 0..=5).prop_filter_map("name too long", |labels| {
        Name::from_labels(labels.iter().map(|l| l.as_slice())).ok()
    })
}

/// Strategy for hostname-ish names (letters/digits/hyphen), closer to
/// real traffic.
fn hostname() -> impl Strategy<Value = Name> {
    prop::collection::vec("[a-z0-9-]{1,20}", 1..=4).prop_filter_map("too long", |labels| {
        Name::from_labels(labels.iter().map(|l| l.as_bytes())).ok()
    })
}

fn rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        hostname().prop_map(RData::Ns),
        hostname().prop_map(RData::Cname),
        hostname().prop_map(RData::Ptr),
        (any::<u16>(), hostname()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..=255), 1..=3)
            .prop_map(RData::Txt),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..=48)
        )
            .prop_map(|(key_tag, algorithm, digest_type, digest)| RData::Ds {
                key_tag,
                algorithm,
                digest_type,
                digest
            }),
        (
            any::<u16>(),
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..=64)
        )
            .prop_map(|(flags, algorithm, public_key)| RData::Dnskey {
                flags,
                protocol: 3,
                algorithm,
                public_key
            }),
        (prop::collection::vec(any::<u8>(), 0..=32)).prop_map(|data| RData::Unknown {
            rtype: RType::Unknown(999),
            data
        }),
    ]
}

fn record() -> impl Strategy<Value = Record> {
    (hostname(), any::<u32>(), rdata()).prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
}

fn message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        hostname(),
        0u16..300,
        prop::collection::vec(record(), 0..=4),
        prop::collection::vec(record(), 0..=2),
        prop::collection::vec(record(), 0..=2),
        prop::option::of((512u16..=4096, any::<bool>())),
        0u16..=16,
    )
        .prop_map(
            |(id, response, qname, qtype, answers, authorities, additionals, edns, rcode)| {
                let mut header = Header::request(id);
                header.response = response;
                header.rcode = Rcode::from_u16(rcode & 0x0f);
                let mut msg = Message::new(header);
                msg.questions
                    .push(Question::new(qname, RType::from_u16(qtype)));
                msg.answers = answers;
                msg.authorities = authorities;
                msg.additionals = additionals;
                msg.edns = edns.map(|(size, dnssec_ok)| Edns::with_size(size, dnssec_ok));
                msg
            },
        )
}

proptest! {
    /// Any name survives wire encode -> parse.
    #[test]
    fn name_wire_roundtrip(n in name()) {
        let mut buf = Vec::new();
        n.encode_uncompressed(&mut buf);
        let (parsed, end) = Name::parse(&buf, 0).unwrap();
        prop_assert_eq!(&parsed, &n);
        prop_assert_eq!(end, buf.len());
    }

    /// Display -> FromStr round-trips for arbitrary (even binary) labels.
    #[test]
    fn name_presentation_roundtrip(n in name()) {
        let s = n.to_string();
        let back: Name = s.parse().unwrap();
        prop_assert_eq!(back, n);
    }

    /// Subdomain relation is reflexive and respects parent chains.
    #[test]
    fn subdomain_laws(n in name()) {
        prop_assert!(n.is_subdomain_of(&n));
        prop_assert!(n.is_subdomain_of(&Name::root()));
        let p = n.parent();
        prop_assert!(n.is_subdomain_of(&p));
        if !n.is_root() {
            prop_assert_eq!(n.label_count(), p.label_count() + 1);
            prop_assert!(n.is_minimized_child_of(&p));
        }
    }

    /// Full messages round-trip through encode/parse.
    #[test]
    fn message_roundtrip(msg in message()) {
        let bytes = msg.encode().unwrap();
        let parsed = Message::parse(&bytes).unwrap();
        prop_assert_eq!(parsed, msg);
    }

    /// Encoding under a limit never exceeds it, and the TC bit is set
    /// exactly when records were dropped.
    #[test]
    fn limit_is_respected(msg in message(), limit in 64usize..1500) {
        let full = msg.encode().unwrap();
        match msg.encode_with_limit(limit) {
            Ok((bytes, truncated)) => {
                prop_assert!(bytes.len() <= limit);
                if truncated {
                    let parsed = Message::parse(&bytes).unwrap();
                    prop_assert!(parsed.header.truncated);
                    prop_assert!(bytes.len() <= full.len());
                } else {
                    prop_assert_eq!(bytes, full);
                }
            }
            Err(_) => {
                // Only legitimate when even the record-free skeleton
                // overflows the limit.
                let mut bare = msg.clone();
                bare.answers.clear();
                bare.authorities.clear();
                bare.additionals.clear();
                bare.header.truncated = true;
                prop_assert!(bare.encode().unwrap().len() > limit);
            }
        }
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parse_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..=512)) {
        let _ = Message::parse(&bytes);
    }

    /// The parser never panics on mutations of a valid message — and when
    /// it succeeds, re-encoding succeeds too (internal consistency).
    #[test]
    fn parse_mutated_message_never_panics(
        msg in message(),
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..=8)
    ) {
        let mut bytes = msg.encode().unwrap();
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= val;
        }
        if let Ok(parsed) = Message::parse(&bytes) {
            let _ = parsed.encode();
        }
    }

    /// Compression: two-name messages always decode back to the same
    /// names even when suffixes are shared.
    #[test]
    fn compression_roundtrip(a in hostname(), b in hostname()) {
        use dns_wire::name::NameCompressor;
        let mut out = Vec::new();
        let mut comp = NameCompressor::new();
        comp.encode(&a, &mut out);
        let b_at = out.len();
        comp.encode(&b, &mut out);
        let (pa, next) = Name::parse(&out, 0).unwrap();
        let (pb, _) = Name::parse(&out, b_at).unwrap();
        prop_assert_eq!(pa, a);
        prop_assert_eq!(pb, b);
        prop_assert_eq!(next, b_at);
    }
}

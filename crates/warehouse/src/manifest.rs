//! The warehouse root manifest: the single source of truth for which
//! partition files exist and which ingest sources produced them.
//!
//! Appends are atomic: new partition files are fully written first
//! (under names the committed manifest does not reference), then the
//! updated manifest is written to `MANIFEST.json.tmp` and renamed over
//! `MANIFEST.json`. A crash mid-append leaves at worst orphan
//! partition files that no manifest row points to — readers only ever
//! open files the manifest lists, so a torn append is invisible rather
//! than corrupting the store.

use crate::partition::ZoneMap;
use crate::WarehouseError;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Manifest file name under the warehouse root.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// An ingest source: one dataset (or live capture) appended into the
/// warehouse. `meta` is an opaque JSON payload owned by the caller —
/// the analysis layer stores the full `(spec, scale, seed)` triple
/// there so scans can rebuild the enrichment context and re-appends
/// can be checked for compatibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceMeta {
    /// Stable source identifier (the dataset id, e.g. `nl2020`).
    pub id: String,
    /// Opaque caller JSON describing the source.
    pub meta: String,
}

/// One committed partition file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionMeta {
    /// File name relative to the warehouse root.
    pub file: String,
    /// Id of the [`SourceMeta`] that produced it.
    pub source: String,
    /// Encoded file size in bytes.
    pub bytes: u64,
    /// Zone map duplicated from the partition footer, so predicate
    /// pushdown can prune without opening the file.
    pub zone: ZoneMap,
    /// CRC32 trailer of the file, for cheap external integrity checks.
    pub crc: u32,
}

/// The serialized manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version (currently 1).
    pub version: u32,
    /// Next partition file sequence number.
    pub next_seq: u64,
    /// Registered ingest sources.
    pub sources: Vec<SourceMeta>,
    /// Committed partitions, in commit order.
    pub partitions: Vec<PartitionMeta>,
}

impl Default for Manifest {
    fn default() -> Self {
        Manifest {
            version: 1,
            next_seq: 0,
            sources: Vec::new(),
            partitions: Vec::new(),
        }
    }
}

impl Manifest {
    /// Load the manifest under `root`, or `None` when the warehouse is
    /// brand new.
    pub fn load(root: &Path) -> Result<Option<Manifest>, WarehouseError> {
        let path = root.join(MANIFEST_FILE);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(WarehouseError::io(&path, e)),
        };
        let manifest: Manifest =
            serde_json::from_slice(&bytes).map_err(|e| WarehouseError::Corrupt {
                path: path.display().to_string(),
                reason: format!("manifest parse failed: {e}"),
            })?;
        if manifest.version != 1 {
            return Err(WarehouseError::Corrupt {
                path: path.display().to_string(),
                reason: format!("unsupported manifest version {}", manifest.version),
            });
        }
        Ok(Some(manifest))
    }

    /// Atomically replace the manifest under `root` (write tmp, then
    /// rename — readers see either the old or the new manifest, never
    /// a partial one).
    pub fn save(&self, root: &Path) -> Result<(), WarehouseError> {
        let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
        let fin = root.join(MANIFEST_FILE);
        let json = serde_json::to_string_pretty(self).map_err(|e| WarehouseError::Corrupt {
            path: fin.display().to_string(),
            reason: format!("manifest serialize failed: {e}"),
        })?;
        fs::write(&tmp, json.as_bytes()).map_err(|e| WarehouseError::io(&tmp, e))?;
        fs::rename(&tmp, &fin).map_err(|e| WarehouseError::io(&fin, e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dnswh-manifest-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let root = tmp_root("roundtrip");
        let m = Manifest {
            version: 1,
            next_seq: 3,
            sources: vec![SourceMeta {
                id: "nl2020".into(),
                meta: "{\"seed\":42}".into(),
            }],
            partitions: vec![PartitionMeta {
                file: "part-000001.dnswh".into(),
                source: "nl2020".into(),
                bytes: 1234,
                zone: ZoneMap {
                    rows: 10,
                    min_ts: 5,
                    max_ts: 9,
                    providers: 0b10,
                    qtypes: vec![1, 28],
                },
                crc: 0xdeadbeef,
            }],
        };
        m.save(&root).unwrap();
        assert_eq!(Manifest::load(&root).unwrap(), Some(m));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_manifest_is_none() {
        let root = tmp_root("missing");
        assert_eq!(Manifest::load(&root).unwrap(), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn garbage_manifest_is_corrupt_not_panic() {
        let root = tmp_root("garbage");
        fs::write(root.join(MANIFEST_FILE), b"{not json").unwrap();
        match Manifest::load(&root) {
            Err(WarehouseError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn save_replaces_atomically() {
        let root = tmp_root("atomic");
        let mut m = Manifest::default();
        m.save(&root).unwrap();
        m.next_seq = 7;
        m.save(&root).unwrap();
        assert_eq!(Manifest::load(&root).unwrap().unwrap().next_seq, 7);
        assert!(
            !root.join(format!("{MANIFEST_FILE}.tmp")).exists(),
            "tmp file renamed away"
        );
        let _ = fs::remove_dir_all(&root);
    }
}

//! Partition scans with predicate pushdown.
//!
//! A [`Predicate`] restricts a scan by time range, provider, qtype,
//! and source. Pruning happens at the manifest level: a partition
//! whose zone map cannot contain a matching row is skipped without
//! opening the file ([`prunes`]), and the surviving partitions get a
//! residual row-level filter ([`row_matches`]) — the same two-level
//! shape as Parquet row-group statistics or ClickHouse min-max
//! indexes.
//!
//! Corrupt partitions (truncated file, CRC mismatch, decode failure)
//! are *reported, counted, and skipped*: the scan keeps going on the
//! intact remainder, mirroring how capture ingest treats torn
//! records. Callers inspect [`ScanStats::corrupt`] (or the
//! `warehouse_partitions_corrupt_total` metric) to notice.

use crate::explain::{self, PartitionProfile, PruneDim};
use crate::manifest::PartitionMeta;
use crate::{Warehouse, WarehouseError};
use asdb::cloud::Provider;
use dns_wire::types::RType;
use entrada::schema::QueryRow;
use entrada::table::{provider_tag, ColumnarBatch};
use netbase::time::SimTime;

/// A pushdown filter. `None` fields mean "no restriction".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Predicate {
    /// Inclusive lower bound on row timestamp.
    pub from: Option<SimTime>,
    /// Exclusive upper bound on row timestamp.
    pub to: Option<SimTime>,
    /// Restrict to one provider (`Some(None)` = rows attributed to no
    /// cloud provider, the paper's "rest of the Internet").
    pub provider: Option<Option<Provider>>,
    /// Restrict to one query type.
    pub qtype: Option<RType>,
    /// Restrict to one ingest source id.
    pub source: Option<String>,
}

impl Predicate {
    /// Unrestricted scan.
    pub fn all() -> Predicate {
        Predicate::default()
    }

    /// Restrict to `[from, to)`.
    pub fn between(from: SimTime, to: SimTime) -> Predicate {
        Predicate {
            from: Some(from),
            to: Some(to),
            ..Predicate::default()
        }
    }

    /// Restrict to one source id.
    pub fn for_source(source: &str) -> Predicate {
        Predicate {
            source: Some(source.to_string()),
            ..Predicate::default()
        }
    }
}

/// Counters describing one scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Partitions considered (committed partitions of the warehouse).
    pub partitions_total: u64,
    /// Partitions skipped by zone-map pruning without being opened.
    pub pruned: u64,
    /// `pruned` broken down by the zone-map dimension that won
    /// (indexed by [`PruneDim`] discriminant; sums to `pruned`).
    pub pruned_by: [u64; PruneDim::COUNT],
    /// Partitions whose column bytes were read and decoded.
    pub scanned: u64,
    /// File bytes read from scanned partitions.
    pub bytes_scanned: u64,
    /// Partitions that failed CRC/decode and were skipped (reported on
    /// stderr and in the metrics registry).
    pub corrupt: u64,
    /// Rows decoded from scanned partitions.
    pub rows: u64,
    /// Rows that survived the residual row-level filter.
    pub rows_matched: u64,
}

impl ScanStats {
    /// Fold another scan's counters in (for parallel per-partition
    /// scans).
    pub fn merge(&mut self, other: &ScanStats) {
        self.partitions_total += other.partitions_total;
        self.pruned += other.pruned;
        for (acc, n) in self.pruned_by.iter_mut().zip(other.pruned_by.iter()) {
            *acc += n;
        }
        self.scanned += other.scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.corrupt += other.corrupt;
        self.rows += other.rows;
        self.rows_matched += other.rows_matched;
    }

    /// One-line human summary (stderr reporting in the CLI).
    pub fn summary(&self) -> String {
        format!(
            "{} partition(s): {} pruned, {} scanned, {} corrupt; {} row(s) read, {} matched",
            self.partitions_total,
            self.pruned,
            self.scanned,
            self.corrupt,
            self.rows,
            self.rows_matched
        )
    }
}

/// The zone-map dimension proving `meta` cannot contain a row matching
/// `pred`, or `None` when the partition must be opened. Dimensions are
/// tested in [`PruneDim::ALL`] order and the first winner is reported
/// (EXPLAIN's "pruned by" attribution).
pub fn prune_reason(meta: &PartitionMeta, pred: &Predicate) -> Option<PruneDim> {
    if let Some(src) = &pred.source {
        if &meta.source != src {
            return Some(PruneDim::Source);
        }
    }
    if let Some(from) = pred.from {
        if meta.zone.max_ts < from.as_micros() {
            return Some(PruneDim::TimeFrom);
        }
    }
    if let Some(to) = pred.to {
        if meta.zone.min_ts >= to.as_micros() {
            return Some(PruneDim::TimeTo);
        }
    }
    if let Some(p) = pred.provider {
        if meta.zone.providers & (1 << provider_tag(p)) == 0 {
            return Some(PruneDim::Provider);
        }
    }
    if let Some(q) = pred.qtype {
        // an empty qtype list means "too many distinct values to
        // record" — never prune on it
        if !meta.zone.qtypes.is_empty() && !meta.zone.qtypes.contains(&q.to_u16()) {
            return Some(PruneDim::Qtype);
        }
    }
    None
}

/// True when the zone map proves `meta` cannot contain a row matching
/// `pred` — the partition is skipped without opening the file.
pub fn prunes(meta: &PartitionMeta, pred: &Predicate) -> bool {
    prune_reason(meta, pred).is_some()
}

/// The residual row-level filter applied to rows of surviving
/// partitions (must accept exactly the rows the zone maps over-approximate).
pub fn row_matches(row: &QueryRow, pred: &Predicate) -> bool {
    if let Some(from) = pred.from {
        if row.timestamp < from {
            return false;
        }
    }
    if let Some(to) = pred.to {
        if row.timestamp >= to {
            return false;
        }
    }
    if let Some(p) = pred.provider {
        if row.provider != p {
            return false;
        }
    }
    if let Some(q) = pred.qtype {
        if row.qtype != q {
            return false;
        }
    }
    true
}

fn note_corrupt(err: &WarehouseError, stats: &mut ScanStats) {
    stats.corrupt += 1;
    eprintln!("warning: warehouse scan skipping partition: {err}");
    obs::counter(
        "warehouse_partitions_corrupt_total",
        "partition files skipped by scans after CRC/decode failure",
    )
    .inc();
}

impl Warehouse {
    /// Plan a scan: the committed partitions surviving zone-map
    /// pruning, plus stats pre-loaded with the total/pruned counts.
    /// Feeds the `warehouse_partitions_pruned_total` metric.
    pub fn plan(&self, pred: &Predicate) -> (Vec<PartitionMeta>, ScanStats) {
        let mut stats = ScanStats::default();
        let mut keep = Vec::new();
        for meta in self.partitions() {
            stats.partitions_total += 1;
            if let Some(dim) = prune_reason(&meta, pred) {
                stats.pruned += 1;
                stats.pruned_by[dim as usize] += 1;
            } else {
                keep.push(meta);
            }
        }
        if stats.pruned > 0 {
            obs::counter(
                "warehouse_partitions_pruned_total",
                "partitions skipped via zone maps before reading any column bytes",
            )
            .add(stats.pruned);
        }
        (keep, stats)
    }

    /// Read one partition for a scan: a decoded batch on success, or
    /// `None` after reporting + counting a corrupt file. Updates
    /// `stats` and the scan metrics either way.
    pub fn read_for_scan(
        &self,
        meta: &PartitionMeta,
        stats: &mut ScanStats,
    ) -> Option<ColumnarBatch> {
        let _span = obs::span(format!("warehouse.decode {}", meta.file));
        let started = explain::enabled().then(std::time::Instant::now);
        match self.read_partition_profiled(meta) {
            Ok((batch, columns)) => {
                stats.scanned += 1;
                stats.bytes_scanned += meta.bytes;
                stats.rows += batch.len() as u64;
                obs::counter(
                    "warehouse_partitions_scanned_total",
                    "partition files read and decoded by scans",
                )
                .inc();
                obs::counter(
                    "warehouse_rows_scanned_total",
                    "rows decoded from partition files by scans",
                )
                .add(batch.len() as u64);
                if let Some(started) = started {
                    explain::record(PartitionProfile {
                        file: meta.file.clone(),
                        rows: batch.len() as u64,
                        bytes: meta.bytes,
                        decode_us: started.elapsed().as_micros() as u64,
                        columns,
                    });
                }
                Some(batch)
            }
            Err(e) => {
                note_corrupt(&e, stats);
                None
            }
        }
    }

    /// Stream matching rows partition-by-partition with bounded
    /// memory (one decoded partition at a time).
    pub fn scan(&self, pred: Predicate) -> PartitionScan<'_> {
        let (mut queue, stats) = self.plan(&pred);
        queue.reverse(); // pop from the back = manifest order
        PartitionScan {
            warehouse: self,
            pred,
            queue,
            current: None,
            stats,
        }
    }
}

/// Streaming row iterator over the partitions a [`Predicate`] selects
/// (see [`Warehouse::scan`]). Holds at most one decoded partition.
pub struct PartitionScan<'w> {
    warehouse: &'w Warehouse,
    pred: Predicate,
    /// Reversed plan: next partition at the back.
    queue: Vec<PartitionMeta>,
    current: Option<(ColumnarBatch, usize)>,
    stats: ScanStats,
}

impl PartitionScan<'_> {
    /// Counters so far (complete once the iterator is exhausted).
    pub fn stats(&self) -> ScanStats {
        self.stats
    }
}

impl Iterator for PartitionScan<'_> {
    type Item = QueryRow;

    fn next(&mut self) -> Option<QueryRow> {
        loop {
            if let Some((batch, i)) = &mut self.current {
                while *i < batch.len() {
                    let row = batch.get(*i);
                    *i += 1;
                    if row_matches(&row, &self.pred) {
                        self.stats.rows_matched += 1;
                        return Some(row);
                    }
                }
                self.current = None;
            }
            let meta = self.queue.pop()?;
            if let Some(batch) = self.warehouse.read_for_scan(&meta, &mut self.stats) {
                self.current = Some((batch, 0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AppendConfig;
    use asdb::registry::Asn;
    use dns_wire::types::Rcode;
    use netbase::flow::Transport;

    fn row(hour: u64, i: u64, google: bool) -> QueryRow {
        QueryRow {
            timestamp: SimTime(hour * 3_600_000_000 + i),
            src: format!("198.51.100.{}", i % 250).parse().unwrap(),
            src_port: 1024 + i as u16,
            server: "194.0.28.53".parse().unwrap(),
            transport: Transport::Udp,
            qname: format!("h{}.example.nl.", i % 5).parse().unwrap(),
            qtype: if i.is_multiple_of(2) {
                RType::A
            } else {
                RType::Ns
            },
            edns_size: Some(1232),
            do_bit: false,
            rcode: Some(Rcode::NoError),
            response_size: Some(120),
            response_truncated: false,
            tcp_rtt_us: 0,
            asn: if google {
                Some(Asn(15169))
            } else {
                Some(Asn(64512))
            },
            provider: if google { Some(Provider::Google) } else { None },
            public_dns: false,
        }
    }

    fn build(name: &str) -> (std::path::PathBuf, Warehouse) {
        let dir = std::env::temp_dir().join(format!("dnswh-scan-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wh = Warehouse::open(&dir).unwrap();
        wh.ensure_source("s", "{}").unwrap();
        let mut app = wh.appender("s", AppendConfig::default());
        // hours 10 (google-only), 11 (mixed), 12 (rest-only)
        for i in 0..40 {
            app.push(&row(10, i, true));
            app.push(&row(11, i, i.is_multiple_of(2)));
            app.push(&row(12, i, false));
        }
        app.finish().unwrap();
        wh.commit().unwrap();
        (dir, wh)
    }

    #[test]
    fn full_scan_returns_everything() {
        let (dir, wh) = build("full");
        let mut scan = wh.scan(Predicate::all());
        let n = scan.by_ref().count();
        let stats = scan.stats();
        assert_eq!(n, 120);
        assert_eq!(stats.partitions_total, 3);
        assert_eq!(stats.pruned, 0);
        assert_eq!(stats.scanned, 3);
        assert_eq!(stats.rows_matched, 120);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn time_predicate_prunes_whole_partitions() {
        let (dir, wh) = build("time");
        let pred = Predicate::between(SimTime(11 * 3_600_000_000), SimTime(12 * 3_600_000_000));
        let mut scan = wh.scan(pred);
        let n = scan.by_ref().count();
        let stats = scan.stats();
        assert_eq!(n, 40, "only hour 11");
        assert_eq!(stats.pruned, 2, "hours 10 and 12 never opened");
        assert_eq!(stats.scanned, 1);
        assert_eq!(stats.pruned_by[PruneDim::TimeFrom as usize], 1, "hour 10");
        assert_eq!(stats.pruned_by[PruneDim::TimeTo as usize], 1, "hour 12");
        assert_eq!(stats.pruned_by.iter().sum::<u64>(), stats.pruned);
        assert!(stats.bytes_scanned > 0, "opened partition bytes counted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn provider_predicate_prunes_and_filters() {
        let (dir, wh) = build("provider");
        let pred = Predicate {
            provider: Some(Some(Provider::Google)),
            ..Predicate::default()
        };
        let mut scan = wh.scan(pred);
        let n = scan.by_ref().count();
        let stats = scan.stats();
        assert_eq!(n, 40 + 20, "google-only hour + half of mixed hour");
        assert_eq!(stats.pruned, 1, "rest-only hour pruned by bitmap");
        assert_eq!(stats.pruned_by[PruneDim::Provider as usize], 1);
        assert_eq!(stats.scanned, 2);
        assert_eq!(
            stats.rows, 80,
            "pruned partition contributes no decoded rows"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_partition_skipped_and_counted() {
        let (dir, wh) = build("corrupt");
        // truncate the middle partition file
        let victim = &wh.partitions()[1];
        let path = dir.join(&victim.file);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let mut scan = wh.scan(Predicate::all());
        let n = scan.by_ref().count();
        let stats = scan.stats();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.scanned, 2);
        assert_eq!(n, 80, "intact partitions still served");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn swapped_file_caught_by_manifest_crc() {
        let (dir, wh) = build("swap");
        let parts = wh.partitions();
        // overwrite partition 0 with partition 1's (self-consistent) bytes
        let b1 = std::fs::read(dir.join(&parts[1].file)).unwrap();
        std::fs::write(dir.join(&parts[0].file), &b1).unwrap();
        let mut scan = wh.scan(Predicate::all());
        let _ = scan.by_ref().count();
        assert_eq!(
            scan.stats().corrupt,
            1,
            "manifest cross-check catches the swap"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn qtype_pruning_honours_unknown_lists() {
        let (dir, wh) = build("qtype");
        let mut meta = wh.partitions()[0].clone();
        let pred = Predicate {
            qtype: Some(RType::Aaaa),
            ..Predicate::default()
        };
        assert!(prunes(&meta, &pred), "AAAA absent from zone map");
        meta.zone.qtypes.clear();
        assert!(!prunes(&meta, &pred), "empty list = unknown, cannot prune");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

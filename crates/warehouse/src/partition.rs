//! Partition files: one self-describing blob per (source, hour bucket)
//! holding every [`ColumnarBatch`] column as an individually-encoded
//! segment, a zone-map footer, and a trailing CRC32 over the whole
//! file.
//!
//! Layout (all integers little-endian unless varint):
//!
//! ```text
//! "DNSW" magic | u16 version | u8 column count
//! column × N:   u8 column id | u32 payload length | payload
//! u8 0xEE footer marker | zone map (see below)
//! u32 crc32 of every byte above
//! ```
//!
//! Column encodings are chosen per column: timestamps are
//! zigzag-varint deltas (near-sorted within an hour partition), qnames
//! stay dictionary-encoded (ids varint + the dictionary itself),
//! low-cardinality columns (qtype, rcode, EDNS size, server) are
//! run-length encoded, the binary transport column is bit-packed, and
//! high-entropy columns (source address/port, sizes, RTTs, ASNs) are
//! stored raw or as plain varints.

use crate::codec::{
    crc32, get_bits, get_deltas, get_rle, get_varints, put_bits, put_deltas, put_rle, put_varint,
    put_varints, DecodeError, Reader,
};
use entrada::table::{ColumnarBatch, Columns};
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

const MAGIC: &[u8; 4] = b"DNSW";
const VERSION: u16 = 1;
const FOOTER_MARKER: u8 = 0xEE;
const COLUMN_COUNT: u8 = 14;

/// Column names in file order (index = column id - 1), for EXPLAIN's
/// per-column byte accounting.
pub const COLUMN_NAMES: [&str; COLUMN_COUNT as usize] = [
    "timestamps",
    "srcs",
    "src_ports",
    "servers",
    "transports",
    "qname_ids",
    "qtypes",
    "edns_sizes",
    "flags",
    "rcodes",
    "response_sizes",
    "tcp_rtts",
    "asns",
    "qname_dict",
];

/// Encoded payload bytes per column (index = column id - 1), as
/// returned by [`decode_profiled`].
pub type ColumnBytes = [u64; COLUMN_COUNT as usize];

/// Distinct-qtype lists longer than this are dropped from the zone map
/// (an empty list means "unknown — cannot prune on qtype").
const MAX_ZONE_QTYPES: usize = 64;

/// Per-partition statistics used to skip the partition without reading
/// its column bytes. Stored both in the partition footer (so the file
/// is self-describing) and in the manifest (so pruning never opens the
/// file at all).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneMap {
    /// Rows in the partition.
    pub rows: u64,
    /// Minimum row timestamp, microseconds since the epoch.
    pub min_ts: u64,
    /// Maximum row timestamp, microseconds since the epoch.
    pub max_ts: u64,
    /// Presence bitmap of provider tags: bit `t` set when some row has
    /// [`entrada::table::provider_tag`] `t` (bit 0 = rest of Internet).
    pub providers: u8,
    /// Sorted distinct qtypes, or empty when the partition had more
    /// than `MAX_ZONE_QTYPES` distinct values (= cannot prune).
    pub qtypes: Vec<u16>,
}

/// Why a partition file failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// Shorter than the fixed header + trailer.
    TooShort,
    /// Magic bytes are not `DNSW`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// Stored CRC32 does not match the file contents.
    CrcMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the file.
        computed: u32,
    },
    /// A column segment failed to decode.
    Decode(DecodeError),
    /// Structural problem (bad column id, inconsistent lengths, ...).
    Invalid(&'static str),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::TooShort => write!(f, "truncated (shorter than header + trailer)"),
            PartitionError::BadMagic => write!(f, "bad magic (not a partition file)"),
            PartitionError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            PartitionError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "CRC mismatch (stored {stored:08x}, computed {computed:08x})"
                )
            }
            PartitionError::Decode(e) => write!(f, "column decode failed: {e}"),
            PartitionError::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

impl From<DecodeError> for PartitionError {
    fn from(e: DecodeError) -> Self {
        PartitionError::Decode(e)
    }
}

/// Compute the zone map of a batch (providers derive from the ASN
/// column, exactly as [`ColumnarBatch`] row reconstruction does).
pub fn zone_map_of(batch: &ColumnarBatch) -> ZoneMap {
    let c = batch.columns();
    let mut providers = 0u8;
    for tag in batch.provider_tags() {
        providers |= 1 << tag;
    }
    let mut qtypes: Vec<u16> = c.qtypes.to_vec();
    qtypes.sort_unstable();
    qtypes.dedup();
    if qtypes.len() > MAX_ZONE_QTYPES {
        qtypes.clear();
    }
    ZoneMap {
        rows: c.timestamps.len() as u64,
        min_ts: c.timestamps.iter().copied().min().unwrap_or(0),
        max_ts: c.timestamps.iter().copied().max().unwrap_or(0),
        providers,
        qtypes,
    }
}

fn put_ip(out: &mut Vec<u8>, ip: &IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            out.push(4);
            out.extend_from_slice(&v4.octets());
        }
        IpAddr::V6(v6) => {
            out.push(6);
            out.extend_from_slice(&v6.octets());
        }
    }
}

fn get_ip(r: &mut Reader<'_>) -> Result<IpAddr, DecodeError> {
    match r.u8()? {
        4 => {
            let b = r.bytes(4)?;
            Ok(IpAddr::from([b[0], b[1], b[2], b[3]]))
        }
        6 => {
            let b = r.bytes(16)?;
            let mut a = [0u8; 16];
            a.copy_from_slice(b);
            Ok(IpAddr::from(a))
        }
        _ => Err(DecodeError::Invalid("ip tag")),
    }
}

fn put_column(out: &mut Vec<u8>, id: u8, payload: &[u8]) {
    out.push(id);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encode a batch into partition-file bytes (including footer + CRC).
/// Returns the bytes and the zone map written into the footer.
pub fn encode(batch: &ColumnarBatch) -> (Vec<u8>, ZoneMap) {
    let c = batch.columns();
    let zone = zone_map_of(batch);
    let mut out = Vec::with_capacity(batch.bytes() / 2 + 64);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(COLUMN_COUNT);

    let mut seg = Vec::new();

    // 1: timestamps — zigzag varint deltas
    put_deltas(&mut seg, c.timestamps);
    put_column(&mut out, 1, &seg);
    seg.clear();

    // 2: source addresses — raw tag + octets (high entropy)
    put_varint(&mut seg, c.srcs.len() as u64);
    for ip in c.srcs {
        put_ip(&mut seg, ip);
    }
    put_column(&mut out, 2, &seg);
    seg.clear();

    // 3: source ports — raw u16 LE
    put_varint(&mut seg, c.src_ports.len() as u64);
    for p in c.src_ports {
        seg.extend_from_slice(&p.to_le_bytes());
    }
    put_column(&mut out, 3, &seg);
    seg.clear();

    // 4: servers — tiny per-partition IP dictionary + RLE indexes
    let mut server_dict: Vec<IpAddr> = Vec::new();
    let indexes: Vec<u64> = c
        .servers
        .iter()
        .map(|ip| {
            if let Some(i) = server_dict.iter().position(|s| s == ip) {
                i as u64
            } else {
                server_dict.push(*ip);
                (server_dict.len() - 1) as u64
            }
        })
        .collect();
    put_varint(&mut seg, server_dict.len() as u64);
    for ip in &server_dict {
        put_ip(&mut seg, ip);
    }
    put_rle(&mut seg, indexes.into_iter());
    put_column(&mut out, 4, &seg);
    seg.clear();

    // 5: transports — one bit per row
    put_bits(&mut seg, c.transports);
    put_column(&mut out, 5, &seg);
    seg.clear();

    // 6: qname dictionary ids — varints (Zipf head keeps these small)
    put_varints(&mut seg, c.qname_ids.iter().map(|&v| v as u64));
    put_column(&mut out, 6, &seg);
    seg.clear();

    // 7-8: qtypes and EDNS sizes — RLE
    put_rle(&mut seg, c.qtypes.iter().map(|&v| v as u64));
    put_column(&mut out, 7, &seg);
    seg.clear();
    put_rle(&mut seg, c.edns_sizes.iter().map(|&v| v as u64));
    put_column(&mut out, 8, &seg);
    seg.clear();

    // 9: flags — raw bytes (16 combinations, short runs)
    put_varint(&mut seg, c.flags.len() as u64);
    seg.extend_from_slice(c.flags);
    put_column(&mut out, 9, &seg);
    seg.clear();

    // 10: rcodes — RLE
    put_rle(&mut seg, c.rcodes.iter().map(|&v| v as u64));
    put_column(&mut out, 10, &seg);
    seg.clear();

    // 11-13: response sizes, TCP RTTs, ASNs — plain varints
    put_varints(&mut seg, c.response_sizes.iter().map(|&v| v as u64));
    put_column(&mut out, 11, &seg);
    seg.clear();
    put_varints(&mut seg, c.tcp_rtts.iter().map(|&v| v as u64));
    put_column(&mut out, 12, &seg);
    seg.clear();
    put_varints(&mut seg, c.asns.iter().map(|&v| v as u64));
    put_column(&mut out, 13, &seg);
    seg.clear();

    // 14: qname dictionary — length-prefixed wire-form names in id order
    put_varint(&mut seg, c.dict_offsets.len() as u64);
    for &(start, len) in c.dict_offsets {
        put_varint(&mut seg, len as u64);
        seg.extend_from_slice(&c.dict_arena[start as usize..(start + len) as usize]);
    }
    put_column(&mut out, 14, &seg);

    // footer: zone map
    out.push(FOOTER_MARKER);
    out.extend_from_slice(&zone.rows.to_le_bytes());
    out.extend_from_slice(&zone.min_ts.to_le_bytes());
    out.extend_from_slice(&zone.max_ts.to_le_bytes());
    out.push(zone.providers);
    put_varint(&mut out, zone.qtypes.len() as u64);
    for q in &zone.qtypes {
        out.extend_from_slice(&q.to_le_bytes());
    }

    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    (out, zone)
}

fn column_payload<'a>(
    r: &mut Reader<'a>,
    profile: &mut ColumnBytes,
    expect_id: u8,
) -> Result<Reader<'a>, PartitionError> {
    let id = r.u8()?;
    if id != expect_id {
        return Err(PartitionError::Invalid("column id"));
    }
    let len = r.u32_le()? as usize;
    profile[expect_id as usize - 1] = len as u64;
    Ok(Reader::new(r.bytes(len)?))
}

fn narrow<T: TryFrom<u64>>(values: Vec<u64>, what: &'static str) -> Result<Vec<T>, PartitionError> {
    values
        .into_iter()
        .map(|v| T::try_from(v).map_err(|_| PartitionError::Invalid(what)))
        .collect()
}

/// Decode partition-file bytes back into a batch + its footer zone
/// map, verifying the CRC first (so any flipped bit or truncation is a
/// [`PartitionError`], never bad rows).
pub fn decode(bytes: &[u8]) -> Result<(ColumnarBatch, ZoneMap), PartitionError> {
    decode_profiled(bytes).map(|(batch, zone, _)| (batch, zone))
}

/// [`decode`], additionally returning the encoded payload length of
/// every column segment (indexed by column id - 1, named by
/// [`COLUMN_NAMES`]) so EXPLAIN can report where the decoded bytes
/// went without a second pass over the file.
pub fn decode_profiled(
    bytes: &[u8],
) -> Result<(ColumnarBatch, ZoneMap, ColumnBytes), PartitionError> {
    let mut colbytes: ColumnBytes = [0; COLUMN_COUNT as usize];
    if bytes.len() < MAGIC.len() + 2 + 1 + 1 + 25 + 4 {
        return Err(PartitionError::TooShort);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(PartitionError::CrcMismatch { stored, computed });
    }

    let mut r = Reader::new(body);
    if r.bytes(4)? != MAGIC {
        return Err(PartitionError::BadMagic);
    }
    let version = r.u16_le()?;
    if version != VERSION {
        return Err(PartitionError::BadVersion(version));
    }
    if r.u8()? != COLUMN_COUNT {
        return Err(PartitionError::Invalid("column count"));
    }

    let max = body.len(); // no column can hold more values than file bytes

    let mut cols = Columns::default();

    let mut seg = column_payload(&mut r, &mut colbytes, 1)?;
    cols.timestamps = get_deltas(&mut seg, max)?;
    let rows = cols.timestamps.len();

    let mut seg = column_payload(&mut r, &mut colbytes, 2)?;
    let n = seg.varint_len(max)?;
    cols.srcs = (0..n).map(|_| get_ip(&mut seg)).collect::<Result<_, _>>()?;

    let mut seg = column_payload(&mut r, &mut colbytes, 3)?;
    let n = seg.varint_len(max)?;
    cols.src_ports = (0..n).map(|_| seg.u16_le()).collect::<Result<_, _>>()?;

    let mut seg = column_payload(&mut r, &mut colbytes, 4)?;
    let n = seg.varint_len(max)?;
    let server_dict: Vec<IpAddr> = (0..n).map(|_| get_ip(&mut seg)).collect::<Result<_, _>>()?;
    let indexes = get_rle(&mut seg, max)?;
    cols.servers = indexes
        .into_iter()
        .map(|i| {
            server_dict
                .get(i as usize)
                .copied()
                .ok_or(PartitionError::Invalid("server index"))
        })
        .collect::<Result<_, _>>()?;

    let mut seg = column_payload(&mut r, &mut colbytes, 5)?;
    cols.transports = get_bits(&mut seg, max)?;

    let mut seg = column_payload(&mut r, &mut colbytes, 6)?;
    cols.qname_ids = narrow(get_varints(&mut seg, max)?, "qname id")?;

    let mut seg = column_payload(&mut r, &mut colbytes, 7)?;
    cols.qtypes = narrow(get_rle(&mut seg, max)?, "qtype")?;

    let mut seg = column_payload(&mut r, &mut colbytes, 8)?;
    cols.edns_sizes = narrow(get_rle(&mut seg, max)?, "edns size")?;

    let mut seg = column_payload(&mut r, &mut colbytes, 9)?;
    let n = seg.varint_len(max)?;
    cols.flags = seg.bytes(n)?.to_vec();

    let mut seg = column_payload(&mut r, &mut colbytes, 10)?;
    cols.rcodes = narrow(get_rle(&mut seg, max)?, "rcode")?;

    let mut seg = column_payload(&mut r, &mut colbytes, 11)?;
    cols.response_sizes = narrow(get_varints(&mut seg, max)?, "response size")?;

    let mut seg = column_payload(&mut r, &mut colbytes, 12)?;
    cols.tcp_rtts = narrow(get_varints(&mut seg, max)?, "tcp rtt")?;

    let mut seg = column_payload(&mut r, &mut colbytes, 13)?;
    cols.asns = narrow(get_varints(&mut seg, max)?, "asn")?;

    let mut seg = column_payload(&mut r, &mut colbytes, 14)?;
    let n = seg.varint_len(max)?;
    for _ in 0..n {
        let len = seg.varint_len(max)?;
        let start = cols.dict_arena.len() as u32;
        cols.dict_arena.extend_from_slice(seg.bytes(len)?);
        cols.dict_offsets.push((start, len as u32));
    }

    // footer
    if r.u8()? != FOOTER_MARKER {
        return Err(PartitionError::Invalid("footer marker"));
    }
    let zone_rows = r.u64_le()?;
    if zone_rows != rows as u64 {
        return Err(PartitionError::Invalid("footer row count"));
    }
    let min_ts = r.u64_le()?;
    let max_ts = r.u64_le()?;
    let providers = r.u8()?;
    let qn = r.varint_len(max)?;
    let mut qtypes = Vec::with_capacity(qn);
    for _ in 0..qn {
        qtypes.push(r.u16_le()?);
    }
    if !r.is_empty() {
        return Err(PartitionError::Invalid("trailing bytes"));
    }

    let batch = ColumnarBatch::from_columns(cols).map_err(PartitionError::Invalid)?;
    Ok((
        batch,
        ZoneMap {
            rows: zone_rows,
            min_ts,
            max_ts,
            providers,
            qtypes,
        },
        colbytes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use entrada::schema::QueryRow;

    fn sample_batch(n: u64) -> ColumnarBatch {
        let mut batch = ColumnarBatch::new();
        for i in 0..n {
            batch.push(&sample_row(i));
        }
        batch
    }

    fn sample_row(i: u64) -> QueryRow {
        use asdb::registry::Asn;
        use dns_wire::types::{RType, Rcode};
        use netbase::flow::Transport;
        use netbase::time::SimTime;
        QueryRow {
            timestamp: SimTime(1_500_000_000_000_000 + i * 250_000),
            src: if i.is_multiple_of(4) {
                format!("2001:db8::{:x}", i % 200 + 1).parse().unwrap()
            } else {
                format!("198.51.100.{}", i % 250).parse().unwrap()
            },
            src_port: 1024 + (i * 7 % 60_000) as u16,
            server: if i.is_multiple_of(2) {
                "194.0.28.53".parse().unwrap()
            } else {
                "2001:678:2c::53".parse().unwrap()
            },
            transport: if i.is_multiple_of(5) {
                Transport::Tcp
            } else {
                Transport::Udp
            },
            qname: format!("n{}.example.nl.", i % 11).parse().unwrap(),
            qtype: if i.is_multiple_of(3) {
                RType::Aaaa
            } else {
                RType::A
            },
            edns_size: if i.is_multiple_of(4) {
                None
            } else {
                Some(1232)
            },
            do_bit: i.is_multiple_of(2),
            rcode: if i.is_multiple_of(9) {
                None
            } else {
                Some(Rcode::NoError)
            },
            response_size: if i.is_multiple_of(9) {
                None
            } else {
                Some(64 + i as u32 % 900)
            },
            response_truncated: i.is_multiple_of(31),
            tcp_rtt_us: if i.is_multiple_of(5) {
                15_000 + i as u32
            } else {
                0
            },
            asn: if i.is_multiple_of(6) {
                Some(Asn(15169))
            } else {
                Some(Asn(64512 + (i % 20) as u32))
            },
            provider: if i.is_multiple_of(6) {
                Some(asdb::cloud::Provider::Google)
            } else {
                None
            },
            public_dns: false,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let batch = sample_batch(2_000);
        let (bytes, zone) = encode(&batch);
        let (got, footer_zone) = decode(&bytes).expect("decodes");
        assert_eq!(zone, footer_zone);
        assert_eq!(got.len(), batch.len());
        assert_eq!(got.dictionary_size(), batch.dictionary_size());
        for i in 0..batch.len() {
            assert_eq!(got.get(i), batch.get(i));
        }
    }

    #[test]
    fn encoding_is_compact() {
        let batch = sample_batch(10_000);
        let (bytes, _) = encode(&batch);
        assert!(
            bytes.len() < batch.bytes(),
            "encoded {}B vs in-memory {}B",
            bytes.len(),
            batch.bytes()
        );
    }

    #[test]
    fn zone_map_reflects_contents() {
        let batch = sample_batch(600);
        let zone = zone_map_of(&batch);
        assert_eq!(zone.rows, 600);
        assert!(zone.min_ts <= zone.max_ts);
        // rows 0, 6, 12... carry AS15169 = Google (tag 1); others tag 0
        assert_eq!(zone.providers, 0b11);
        assert_eq!(zone.qtypes, vec![1, 28], "A and AAAA");
    }

    #[test]
    fn truncation_detected() {
        let (bytes, _) = encode(&sample_batch(100));
        for cut in [0, 1, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bitflip_detected_by_crc() {
        let (mut bytes, _) = encode(&sample_batch(100));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match decode(&bytes) {
            Err(PartitionError::CrcMismatch { .. }) => {}
            Err(other) => panic!("expected CrcMismatch, got {other:?}"),
            Ok(_) => panic!("expected CrcMismatch, got Ok"),
        }
    }

    #[test]
    fn empty_batch_roundtrips() {
        let batch = ColumnarBatch::new();
        let (bytes, zone) = encode(&batch);
        assert_eq!(zone.rows, 0);
        let (got, _) = decode(&bytes).expect("decodes");
        assert!(got.is_empty());
    }
}

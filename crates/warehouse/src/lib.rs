#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! Out-of-core columnar store for query rows.
//!
//! The paper's ENTRADA platform persisted 55.7B joined query rows as
//! Parquet on HDFS and answered every analysis by scanning partitions;
//! this crate is that storage layer at library scale. A *warehouse* is
//! a directory of immutable partition files — one per (source, time
//! bucket), each a self-describing file of per-column segments with a
//! zone-map footer and CRC ([`partition`]) — plus a JSON manifest
//! ([`manifest`]) naming every committed partition and the ingest
//! source that produced it.
//!
//! Writers go through an [`Appender`] (hour-bucketed, flushed at a
//! row/byte budget) and make new partitions durable with
//! [`Warehouse::commit`], which atomically replaces the manifest —
//! crash-interrupted appends leave only unreferenced orphan files.
//! Readers either stream rows through a [`PartitionScan`] or plan a
//! partition list with [`Warehouse::plan`] and read partitions in
//! parallel; both prune partitions whose manifest zone maps cannot
//! match the [`Predicate`] before touching file bytes, and count
//! pruned/scanned/corrupt partitions in [`ScanStats`] and the process
//! metrics registry.

pub mod append;
pub mod codec;
pub mod explain;
pub mod manifest;
pub mod partition;
pub mod scan;

pub use append::{AppendConfig, AppendStats, Appender};
pub use explain::{PartitionProfile, PruneDim};
pub use manifest::{Manifest, PartitionMeta, SourceMeta};
pub use partition::{ColumnBytes, PartitionError, ZoneMap};
pub use scan::{PartitionScan, Predicate, ScanStats};

use entrada::table::ColumnarBatch;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Anything that can go wrong opening, appending to, or scanning a
/// warehouse.
#[derive(Debug)]
pub enum WarehouseError {
    /// Filesystem error on `path`.
    Io {
        /// Affected path.
        path: String,
        /// Underlying error.
        err: std::io::Error,
    },
    /// A file exists but its contents are not trustworthy.
    Corrupt {
        /// Affected path.
        path: String,
        /// Human-readable reason (CRC mismatch, truncation, ...).
        reason: String,
    },
    /// A source id is already registered with different metadata.
    SourceMismatch {
        /// The conflicting source id.
        id: String,
    },
}

impl WarehouseError {
    fn io(path: &Path, err: std::io::Error) -> Self {
        WarehouseError::Io {
            path: path.display().to_string(),
            err,
        }
    }
}

impl std::fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarehouseError::Io { path, err } => write!(f, "{path}: {err}"),
            WarehouseError::Corrupt { path, reason } => write!(f, "{path}: {reason}"),
            WarehouseError::SourceMismatch { id } => write!(
                f,
                "source {id} already registered with different spec/scale/seed metadata"
            ),
        }
    }
}

impl std::error::Error for WarehouseError {}

struct Inner {
    manifest: Manifest,
    /// Partitions written to disk but not yet committed to the
    /// manifest.
    staged: Vec<PartitionMeta>,
}

/// An open warehouse root directory. Cheap to share behind an `Arc`;
/// all mutation goes through an internal mutex, file I/O happens
/// outside it.
pub struct Warehouse {
    root: PathBuf,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Warehouse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warehouse")
            .field("root", &self.root)
            .finish()
    }
}

impl Warehouse {
    /// Open (creating the directory if needed) the warehouse at
    /// `root` and load its manifest.
    pub fn open(root: impl Into<PathBuf>) -> Result<Warehouse, WarehouseError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| WarehouseError::io(&root, e))?;
        let manifest = Manifest::load(&root)?.unwrap_or_default();
        Ok(Warehouse {
            root,
            inner: Mutex::new(Inner {
                manifest,
                staged: Vec::new(),
            }),
        })
    }

    /// The warehouse root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Register an ingest source, or verify an existing registration.
    /// Re-appending to a known source is allowed only when `meta`
    /// matches byte-for-byte — otherwise the scan-side reconstruction
    /// of the enrichment context would silently disagree with the
    /// stored rows.
    pub fn ensure_source(&self, id: &str, meta: &str) -> Result<(), WarehouseError> {
        let mut inner = self.inner.lock().expect("warehouse lock");
        match inner.manifest.sources.iter().find(|s| s.id == id) {
            Some(existing) if existing.meta == meta => Ok(()),
            Some(_) => Err(WarehouseError::SourceMismatch { id: id.to_string() }),
            None => {
                inner.manifest.sources.push(SourceMeta {
                    id: id.to_string(),
                    meta: meta.to_string(),
                });
                Ok(())
            }
        }
    }

    /// Registered sources, in registration order.
    pub fn sources(&self) -> Vec<SourceMeta> {
        self.inner
            .lock()
            .expect("warehouse lock")
            .manifest
            .sources
            .clone()
    }

    /// The metadata of one source, if registered.
    pub fn source(&self, id: &str) -> Option<SourceMeta> {
        self.inner
            .lock()
            .expect("warehouse lock")
            .manifest
            .sources
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }

    /// Committed partitions (staged ones are invisible until
    /// [`commit`](Warehouse::commit)).
    pub fn partitions(&self) -> Vec<PartitionMeta> {
        self.inner
            .lock()
            .expect("warehouse lock")
            .manifest
            .partitions
            .clone()
    }

    /// Total committed rows.
    pub fn rows(&self) -> u64 {
        self.inner
            .lock()
            .expect("warehouse lock")
            .manifest
            .partitions
            .iter()
            .map(|p| p.zone.rows)
            .sum()
    }

    /// A new appender for `source` (register the source first with
    /// [`ensure_source`](Warehouse::ensure_source)).
    pub fn appender(&self, source: &str, config: AppendConfig) -> Appender<'_> {
        Appender::new(self, source.to_string(), config)
    }

    /// Encode `batch` into a new partition file on disk and stage it
    /// for the next [`commit`](Warehouse::commit). Empty batches are
    /// ignored.
    pub fn stage(&self, source: &str, batch: &ColumnarBatch) -> Result<(), WarehouseError> {
        if batch.is_empty() {
            return Ok(());
        }
        let seq = {
            let mut inner = self.inner.lock().expect("warehouse lock");
            let seq = inner.manifest.next_seq;
            inner.manifest.next_seq += 1;
            seq
        };
        let (bytes, zone) = partition::encode(batch);
        let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("crc trailer"));
        let file = format!("part-{seq:06}.dnswh");
        let path = self.root.join(&file);
        fs::write(&path, &bytes).map_err(|e| WarehouseError::io(&path, e))?;
        let meta = PartitionMeta {
            file,
            source: source.to_string(),
            bytes: bytes.len() as u64,
            zone,
            crc,
        };
        self.inner.lock().expect("warehouse lock").staged.push(meta);
        Ok(())
    }

    /// Commit every staged partition (and any newly registered
    /// sources) by atomically replacing the manifest. Returns the
    /// number of partitions committed. Staged partitions are sorted by
    /// (source, min timestamp, file) first, so the manifest order —
    /// and therefore scan order — does not depend on which ingest
    /// worker flushed first.
    pub fn commit(&self) -> Result<usize, WarehouseError> {
        let _span = obs::span("warehouse.commit");
        let mut inner = self.inner.lock().expect("warehouse lock");
        let mut staged = std::mem::take(&mut inner.staged);
        staged.sort_by(|a, b| {
            (&a.source, a.zone.min_ts, &a.file).cmp(&(&b.source, b.zone.min_ts, &b.file))
        });
        let n = staged.len();
        inner.manifest.partitions.extend(staged);
        inner.manifest.save(&self.root)?;
        Ok(n)
    }

    /// Read and fully verify one committed partition (CRC + structural
    /// decode). The manifest CRC is cross-checked against the file
    /// trailer so a swapped file is caught even when self-consistent.
    pub fn read_partition(&self, meta: &PartitionMeta) -> Result<ColumnarBatch, WarehouseError> {
        self.read_partition_profiled(meta).map(|(batch, _)| batch)
    }

    /// [`read_partition`](Warehouse::read_partition), additionally
    /// returning the encoded payload length of every column segment
    /// (EXPLAIN's per-column byte accounting).
    pub fn read_partition_profiled(
        &self,
        meta: &PartitionMeta,
    ) -> Result<(ColumnarBatch, partition::ColumnBytes), WarehouseError> {
        let path = self.root.join(&meta.file);
        let bytes = fs::read(&path).map_err(|e| WarehouseError::io(&path, e))?;
        let (batch, zone, columns) =
            partition::decode_profiled(&bytes).map_err(|e| WarehouseError::Corrupt {
                path: path.display().to_string(),
                reason: e.to_string(),
            })?;
        let trailer = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("trailer"));
        if trailer != meta.crc || zone != meta.zone {
            return Err(WarehouseError::Corrupt {
                path: path.display().to_string(),
                reason: "partition does not match its manifest entry".to_string(),
            });
        }
        Ok((batch, columns))
    }
}

//! Byte-level codecs for partition files: LEB128 varints, zigzag
//! deltas, run-length encoding, one-bit packing, and the CRC32 that
//! seals every partition.
//!
//! Everything here is self-contained — the build environment has no
//! compression or checksum crates, and the column encodings the
//! warehouse needs (Parquet-style dictionary + RLE + delta) are small
//! enough to hand-roll and property-test.

/// Why a byte sequence failed to decode. Carried up into
/// [`crate::WarehouseError::Corrupt`] with the partition path attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran off the end of the buffer.
    Truncated,
    /// A varint ran past 10 bytes / 64 bits.
    VarintOverflow,
    /// A value was structurally out of range (bad tag, bad length).
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

// ---------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) lookup table, built at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// -------------------------------------------------------------- varints

/// Append `v` as an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Zigzag-map a signed value so small magnitudes stay small varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --------------------------------------------------------------- reader

/// A bounds-checked read cursor over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    /// Next little-endian u16.
    pub fn u16_le(&mut self) -> Result<u16, DecodeError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Next little-endian u32.
    pub fn u32_le(&mut self) -> Result<u32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next little-endian u64.
    pub fn u64_le(&mut self) -> Result<u64, DecodeError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Next LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(DecodeError::VarintOverflow);
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::VarintOverflow);
            }
        }
    }

    /// A varint that must fit a usize-index bound.
    pub fn varint_len(&mut self, max: usize) -> Result<usize, DecodeError> {
        let v = self.varint()?;
        if v > max as u64 {
            return Err(DecodeError::Invalid("length"));
        }
        Ok(v as usize)
    }
}

// ------------------------------------------------------ column codecs

/// Delta + zigzag + varint encode a monotone-ish u64 column
/// (timestamps: within a partition they are near-sorted, so deltas are
/// tiny).
pub fn put_deltas(out: &mut Vec<u8>, values: &[u64]) {
    put_varint(out, values.len() as u64);
    let mut prev = 0u64;
    for &v in values {
        put_varint(out, zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
}

/// Inverse of [`put_deltas`].
pub fn get_deltas(r: &mut Reader<'_>, max_len: usize) -> Result<Vec<u64>, DecodeError> {
    let n = r.varint_len(max_len)?;
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        prev = prev.wrapping_add(unzigzag(r.varint()?) as u64);
        out.push(prev);
    }
    Ok(out)
}

/// Plain varint encode a u64-widenable column.
pub fn put_varints(out: &mut Vec<u8>, values: impl ExactSizeIterator<Item = u64>) {
    put_varint(out, values.len() as u64);
    for v in values {
        put_varint(out, v);
    }
}

/// Inverse of [`put_varints`].
pub fn get_varints(r: &mut Reader<'_>, max_len: usize) -> Result<Vec<u64>, DecodeError> {
    let n = r.varint_len(max_len)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.varint()?);
    }
    Ok(out)
}

/// Run-length encode a low-cardinality column as (run, value) varint
/// pairs: qtype/rcode/EDNS columns are long runs of a handful of
/// values.
pub fn put_rle(out: &mut Vec<u8>, values: impl ExactSizeIterator<Item = u64>) {
    put_varint(out, values.len() as u64);
    let mut run: Option<(u64, u64)> = None;
    for v in values {
        match &mut run {
            Some((val, count)) if *val == v => *count += 1,
            _ => {
                if let Some((val, count)) = run.take() {
                    put_varint(out, count);
                    put_varint(out, val);
                }
                run = Some((v, 1));
            }
        }
    }
    if let Some((val, count)) = run {
        put_varint(out, count);
        put_varint(out, val);
    }
}

/// Inverse of [`put_rle`].
pub fn get_rle(r: &mut Reader<'_>, max_len: usize) -> Result<Vec<u64>, DecodeError> {
    let n = r.varint_len(max_len)?;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let count = r.varint()?;
        let val = r.varint()?;
        if count == 0 || count > (n - out.len()) as u64 {
            return Err(DecodeError::Invalid("run length"));
        }
        for _ in 0..count {
            out.push(val);
        }
    }
    Ok(out)
}

/// Pack a 0/1 column (transport) one bit per value.
pub fn put_bits(out: &mut Vec<u8>, values: &[u8]) {
    put_varint(out, values.len() as u64);
    let mut byte = 0u8;
    for (i, &v) in values.iter().enumerate() {
        if v != 0 {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !values.len().is_multiple_of(8) {
        out.push(byte);
    }
}

/// Inverse of [`put_bits`].
pub fn get_bits(r: &mut Reader<'_>, max_len: usize) -> Result<Vec<u8>, DecodeError> {
    let n = r.varint_len(max_len)?;
    let packed = r.bytes(n.div_ceil(8))?;
    Ok((0..n).map(|i| (packed[i / 8] >> (i % 8)) & 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // zlib reference values
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        let buf = [0xffu8; 11];
        assert_eq!(Reader::new(&buf).varint(), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn deltas_roundtrip_unsorted() {
        let vals = vec![100, 90, 95, 1_000_000, 0, u64::MAX, 3];
        let mut buf = Vec::new();
        put_deltas(&mut buf, &vals);
        let got = get_deltas(&mut Reader::new(&buf), vals.len()).unwrap();
        assert_eq!(got, vals);
    }

    #[test]
    fn rle_roundtrip_and_compresses() {
        let vals: Vec<u64> = std::iter::repeat_n(1u64, 1000)
            .chain(std::iter::repeat_n(28, 500))
            .chain([1, 2, 3])
            .collect();
        let mut buf = Vec::new();
        put_rle(&mut buf, vals.iter().copied());
        assert!(buf.len() < 32, "RLE output {}B for 1503 values", buf.len());
        let got = get_rle(&mut Reader::new(&buf), vals.len()).unwrap();
        assert_eq!(got, vals);
    }

    #[test]
    fn rle_rejects_overlong_runs() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 3); // claim 3 values
        put_varint(&mut buf, 5); // but a run of 5
        put_varint(&mut buf, 9);
        assert!(get_rle(&mut Reader::new(&buf), 10).is_err());
    }

    #[test]
    fn bits_roundtrip_odd_lengths() {
        for n in [0usize, 1, 7, 8, 9, 64, 65] {
            let vals: Vec<u8> = (0..n).map(|i| (i % 3 == 0) as u8).collect();
            let mut buf = Vec::new();
            put_bits(&mut buf, &vals);
            let got = get_bits(&mut Reader::new(&buf), n).unwrap();
            assert_eq!(got, vals);
        }
    }

    #[test]
    fn truncated_reads_error() {
        let mut buf = Vec::new();
        put_deltas(&mut buf, &[1, 2, 3]);
        buf.truncate(buf.len() - 1);
        assert_eq!(
            get_deltas(&mut Reader::new(&buf), 3),
            Err(DecodeError::Truncated)
        );
    }
}

//! Scan EXPLAIN: a pre-execution plan tree and a post-run decode
//! profile for warehouse scans.
//!
//! The plan side is pure manifest arithmetic — [`render_plan`] works
//! from the partition list and [`ScanStats`] produced by
//! [`crate::Warehouse::plan`], so its output is byte-identical no
//! matter how many threads later execute the scan. The profile side
//! ([`enable`] / [`record`] / [`take`]) is a process-global collector
//! that [`crate::Warehouse::read_for_scan`] feeds one
//! [`PartitionProfile`] per decoded partition (decode wall time plus
//! the encoded byte count of every column segment); [`render_profile`]
//! sorts by file name before printing so parallel scans stay
//! reproducible modulo the timings themselves.
//!
//! The collector is deliberately shaped like `obs::trace`'s: a relaxed
//! flag guards the hot path (one atomic load per partition when
//! disabled) and a mutex-wrapped vector holds the profiles.

use crate::manifest::PartitionMeta;
use crate::partition::{ColumnBytes, COLUMN_NAMES};
use crate::scan::{Predicate, ScanStats};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// The zone-map dimension that proved a partition cannot match a
/// [`Predicate`] (the first one checked wins; dimensions are tested in
/// this order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneDim {
    /// Manifest source id differs from `pred.source`.
    Source = 0,
    /// Partition's max timestamp is below `pred.from`.
    TimeFrom = 1,
    /// Partition's min timestamp is at or past `pred.to`.
    TimeTo = 2,
    /// Provider presence bitmap lacks the requested provider tag.
    Provider = 3,
    /// Distinct-qtype list is known and misses the requested qtype.
    Qtype = 4,
}

impl PruneDim {
    /// Number of dimensions (length of [`PruneDim::ALL`]).
    pub const COUNT: usize = 5;

    /// Every dimension, in check order.
    pub const ALL: [PruneDim; PruneDim::COUNT] = [
        PruneDim::Source,
        PruneDim::TimeFrom,
        PruneDim::TimeTo,
        PruneDim::Provider,
        PruneDim::Qtype,
    ];

    /// Stable lowercase name used in EXPLAIN output and metrics.
    pub fn name(self) -> &'static str {
        match self {
            PruneDim::Source => "source",
            PruneDim::TimeFrom => "time_from",
            PruneDim::TimeTo => "time_to",
            PruneDim::Provider => "provider",
            PruneDim::Qtype => "qtype",
        }
    }
}

/// What one decoded partition cost: wall time and where its encoded
/// bytes lived, column by column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionProfile {
    /// Partition file name (manifest-relative).
    pub file: String,
    /// Rows decoded from the partition.
    pub rows: u64,
    /// Whole-file size in bytes (header + columns + footer + CRC).
    pub bytes: u64,
    /// Wall-clock microseconds spent reading + decoding the file.
    pub decode_us: u64,
    /// Encoded payload bytes per column (index = column id - 1).
    pub columns: ColumnBytes,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROFILES: OnceLock<Mutex<Vec<PartitionProfile>>> = OnceLock::new();
static PLANS: OnceLock<Mutex<Vec<(String, String)>>> = OnceLock::new();

fn profiles() -> &'static Mutex<Vec<PartitionProfile>> {
    PROFILES.get_or_init(|| Mutex::new(Vec::new()))
}

fn plans() -> &'static Mutex<Vec<(String, String)>> {
    PLANS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turn per-partition profile collection on (idempotent; stays on for
/// the process — the CLI's `--explain` flag sets it once at startup).
pub fn enable() {
    profiles();
    ENABLED.store(true, Ordering::Release);
}

/// Whether scans should time decodes and record profiles.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record one partition's profile (called by
/// [`crate::Warehouse::read_for_scan`] when [`enabled`]).
pub fn record(profile: PartitionProfile) {
    if !enabled() {
        return;
    }
    profiles().lock().expect("explain lock").push(profile);
}

/// Drain the collected profiles, sorted by file name so output does
/// not depend on which scan thread finished first.
pub fn take() -> Vec<PartitionProfile> {
    let mut out = match PROFILES.get() {
        Some(m) => std::mem::take(&mut *m.lock().expect("explain lock")),
        None => Vec::new(),
    };
    out.sort_by(|a, b| a.file.cmp(&b.file));
    out
}

/// Buffer one rendered plan tree under a sort key (the source id), so
/// plans produced inside parallel scan tasks still print in one
/// deterministic order (no-op unless [`enabled`]).
pub fn record_plan(key: String, text: String) {
    if !enabled() {
        return;
    }
    plans().lock().expect("explain lock").push((key, text));
}

/// Drain the buffered plan trees, sorted by key — byte-identical
/// output for any `--jobs` value.
pub fn take_plans() -> Vec<(String, String)> {
    let mut out = match PLANS.get() {
        Some(m) => std::mem::take(&mut *m.lock().expect("explain lock")),
        None => Vec::new(),
    };
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn fmt_predicate(pred: &Predicate) -> String {
    let mut parts = Vec::new();
    if let Some(from) = pred.from {
        parts.push(format!("from={}us", from.as_micros()));
    }
    if let Some(to) = pred.to {
        parts.push(format!("to={}us", to.as_micros()));
    }
    if let Some(p) = pred.provider {
        parts.push(format!(
            "provider={}",
            match p {
                Some(p) => p.name(),
                None => "rest-of-internet",
            }
        ));
    }
    if let Some(q) = pred.qtype {
        parts.push(format!("qtype={q:?}"));
    }
    if let Some(s) = &pred.source {
        parts.push(format!("source={s}"));
    }
    if parts.is_empty() {
        "unrestricted".to_string()
    } else {
        parts.join(" ")
    }
}

/// Render the pre-execution plan tree: predicate, per-dimension prune
/// counts, and the partitions that will be opened with their
/// zone-map row/byte estimates. Deterministic — built entirely from
/// the manifest, before any file is read, so `--jobs` cannot change a
/// byte of it.
pub fn render_plan(pred: &Predicate, keep: &[PartitionMeta], stats: &ScanStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "EXPLAIN scan");
    let _ = writeln!(out, "  predicate: {}", fmt_predicate(pred));
    let _ = writeln!(
        out,
        "  partitions: {} total, {} pruned, {} to open",
        stats.partitions_total,
        stats.pruned,
        keep.len()
    );
    for dim in PruneDim::ALL {
        let n = stats.pruned_by[dim as usize];
        if n > 0 {
            let _ = writeln!(out, "    pruned by {}: {}", dim.name(), n);
        }
    }
    let est_rows: u64 = keep.iter().map(|m| m.zone.rows).sum();
    let est_bytes: u64 = keep.iter().map(|m| m.bytes).sum();
    let _ = writeln!(
        out,
        "  estimate: {est_rows} row(s), {est_bytes} byte(s) to decode"
    );
    for meta in keep {
        let _ = writeln!(
            out,
            "    open {}  source={}  rows={}  bytes={}",
            meta.file, meta.source, meta.zone.rows, meta.bytes
        );
    }
    out
}

/// Render the post-run profile: per-partition decode timings, the
/// aggregated per-column byte breakdown, and the residual-filter
/// selectivity out of `stats`. Timings vary run to run — the CLI
/// prints this to stderr, keeping stdout byte-stable.
pub fn render_profile(profiles: &[PartitionProfile], stats: &ScanStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN profile: {} partition(s) decoded",
        profiles.len()
    );
    let mut columns = [0u64; COLUMN_NAMES.len()];
    let mut total_us = 0u64;
    for p in profiles {
        let _ = writeln!(
            out,
            "  {}  rows={}  bytes={}  decode_us={}",
            p.file, p.rows, p.bytes, p.decode_us
        );
        for (acc, b) in columns.iter_mut().zip(p.columns.iter()) {
            *acc += b;
        }
        total_us += p.decode_us;
    }
    let col_total: u64 = columns.iter().sum();
    if col_total > 0 {
        let _ = writeln!(out, "  column bytes decoded ({col_total} total):");
        let mut ranked: Vec<(usize, u64)> = columns
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, b)| *b > 0)
            .collect();
        // largest first; name breaks ties so the listing is stable
        ranked.sort_by_key(|&(i, b)| (std::cmp::Reverse(b), COLUMN_NAMES[i]));
        for (i, b) in ranked {
            let _ = writeln!(out, "    {:<14} {:>10}", COLUMN_NAMES[i], b);
        }
    }
    let _ = writeln!(
        out,
        "  residual filter: {} row(s) decoded, {} matched, {} filtered out",
        stats.rows,
        stats.rows_matched,
        stats.rows - stats.rows_matched
    );
    let _ = writeln!(out, "  total decode time: {total_us}us");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::ZoneMap;

    fn meta(file: &str, rows: u64, bytes: u64) -> PartitionMeta {
        PartitionMeta {
            file: file.to_string(),
            source: "s".to_string(),
            bytes,
            zone: ZoneMap {
                rows,
                min_ts: 0,
                max_ts: 1,
                providers: 1,
                qtypes: vec![1],
            },
            crc: 0,
        }
    }

    #[test]
    fn plan_tree_reconciles_totals_and_lists_survivors() {
        let mut stats = ScanStats {
            partitions_total: 3,
            pruned: 2,
            ..ScanStats::default()
        };
        stats.pruned_by[PruneDim::TimeFrom as usize] = 1;
        stats.pruned_by[PruneDim::Provider as usize] = 1;
        let keep = vec![meta("part-000002.dnswh", 40, 1200)];
        let text = render_plan(&Predicate::all(), &keep, &stats);
        assert!(text.contains("3 total, 2 pruned, 1 to open"));
        assert!(text.contains("pruned by time_from: 1"));
        assert!(text.contains("pruned by provider: 1"));
        assert!(!text.contains("pruned by qtype"), "zero rows are elided");
        assert!(text.contains("estimate: 40 row(s), 1200 byte(s)"));
        assert!(text.contains("open part-000002.dnswh  source=s  rows=40  bytes=1200"));
    }

    #[test]
    fn profile_collector_is_gated_and_sorts_by_file() {
        assert_eq!(take(), Vec::new());
        record(PartitionProfile {
            file: "ignored-while-disabled".into(),
            rows: 0,
            bytes: 0,
            decode_us: 0,
            columns: [0; COLUMN_NAMES.len()],
        });
        assert!(take().is_empty(), "record is a no-op until enabled");
        enable();
        for file in ["part-000002.dnswh", "part-000001.dnswh"] {
            record(PartitionProfile {
                file: file.into(),
                rows: 10,
                bytes: 100,
                decode_us: 5,
                columns: [1; COLUMN_NAMES.len()],
            });
        }
        let got = take();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].file, "part-000001.dnswh");
        assert_eq!(got[1].file, "part-000002.dnswh");
        assert!(take().is_empty(), "take drains");
    }

    #[test]
    fn profile_render_aggregates_columns_and_selectivity() {
        let mut columns = [0u64; COLUMN_NAMES.len()];
        columns[0] = 300; // timestamps
        columns[1] = 500; // srcs
        let profiles = vec![
            PartitionProfile {
                file: "part-000001.dnswh".into(),
                rows: 40,
                bytes: 900,
                decode_us: 12,
                columns,
            },
            PartitionProfile {
                file: "part-000002.dnswh".into(),
                rows: 40,
                bytes: 900,
                decode_us: 8,
                columns,
            },
        ];
        let stats = ScanStats {
            rows: 80,
            rows_matched: 60,
            ..ScanStats::default()
        };
        let text = render_profile(&profiles, &stats);
        assert!(text.contains("2 partition(s) decoded"));
        assert!(text.contains("column bytes decoded (1600 total)"));
        let srcs = text.find("srcs").unwrap();
        let ts = text.find("timestamps").unwrap();
        assert!(srcs < ts, "largest column first");
        assert!(text.contains("80 row(s) decoded, 60 matched, 20 filtered out"));
        assert!(text.contains("total decode time: 20us"));
    }
}

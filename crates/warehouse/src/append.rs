//! Buffered, bucketed appends: rows accumulate in per-time-bucket
//! [`ColumnarBatch`]es and flush to partition files at a row/byte
//! budget, so ingest memory stays bounded no matter how large the
//! warehouse grows.

use crate::{Warehouse, WarehouseError};
use entrada::schema::QueryRow;
use entrada::table::ColumnarBatch;
use netbase::time::SimDuration;
use std::collections::HashMap;

/// Appender tuning.
#[derive(Debug, Clone, Copy)]
pub struct AppendConfig {
    /// Time-bucket width of a partition (default one hour, the
    /// paper's analysis granularity).
    pub partition: SimDuration,
    /// Flush a bucket once it holds this many rows.
    pub max_rows: usize,
    /// Flush a bucket once [`ColumnarBatch::bytes`] crosses this.
    pub max_bytes: usize,
}

impl Default for AppendConfig {
    fn default() -> Self {
        AppendConfig {
            partition: SimDuration::from_hours(1),
            max_rows: 1 << 20,
            max_bytes: 64 << 20,
        }
    }
}

/// What an appender wrote, reported by [`Appender::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendStats {
    /// Rows appended.
    pub rows: u64,
    /// Partition files staged.
    pub partitions: u64,
}

/// A buffered writer of one source's rows into a [`Warehouse`].
///
/// Implements the push/merge shape of the analysis sinks: parallel
/// ingest workers each own an `Appender`, flush full buckets
/// independently, and the survivors' open buckets are merged before
/// the final [`finish`](Appender::finish). Flush failures are
/// remembered (further rows for the failed appender are dropped to
/// keep memory bounded) and surfaced by `finish`.
pub struct Appender<'w> {
    warehouse: &'w Warehouse,
    source: String,
    config: AppendConfig,
    open: HashMap<u64, ColumnarBatch>,
    stats: AppendStats,
    error: Option<WarehouseError>,
}

impl<'w> Appender<'w> {
    pub(crate) fn new(warehouse: &'w Warehouse, source: String, config: AppendConfig) -> Self {
        Appender {
            warehouse,
            source,
            config,
            open: HashMap::new(),
            stats: AppendStats::default(),
            error: None,
        }
    }

    /// Buffer one row; may flush a full bucket to disk.
    pub fn push(&mut self, row: &QueryRow) {
        if self.error.is_some() {
            return;
        }
        let width = self.config.partition.as_micros().max(1);
        let bucket = row.timestamp.as_micros() / width;
        let batch = self.open.entry(bucket).or_default();
        batch.push(row);
        self.stats.rows += 1;
        if batch.len() >= self.config.max_rows || batch.bytes() >= self.config.max_bytes {
            self.flush_bucket(bucket);
        }
    }

    fn flush_bucket(&mut self, bucket: u64) {
        let Some(batch) = self.open.remove(&bucket) else {
            return;
        };
        let _span = obs::span("warehouse.append.flush");
        match self.warehouse.stage(&self.source, &batch) {
            Ok(()) => self.stats.partitions += 1,
            Err(e) => {
                self.open.clear();
                self.error = Some(e);
            }
        }
    }

    /// Absorb another appender's open buckets and stats (its already
    /// flushed partitions are staged with the shared warehouse).
    ///
    /// # Panics
    /// If the two appenders target different sources.
    pub fn merge(&mut self, other: Appender<'w>) {
        assert_eq!(self.source, other.source, "appender source mismatch");
        for (bucket, batch) in other.open {
            self.open.entry(bucket).or_default().merge(batch);
        }
        self.stats.rows += other.stats.rows;
        self.stats.partitions += other.stats.partitions;
        if self.error.is_none() {
            self.error = other.error;
        }
    }

    /// Flush every open bucket (in bucket order) and report totals.
    /// Does **not** commit — call [`Warehouse::commit`] once all
    /// appenders for the ingest have finished.
    pub fn finish(mut self) -> Result<AppendStats, WarehouseError> {
        let _span = obs::span("warehouse.append.finish");
        let mut buckets: Vec<u64> = self.open.keys().copied().collect();
        buckets.sort_unstable();
        for bucket in buckets {
            self.flush_bucket(bucket);
        }
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::time::SimTime;

    fn row_at(us: u64) -> QueryRow {
        QueryRow {
            timestamp: SimTime(us),
            src: "192.0.2.1".parse().unwrap(),
            src_port: 3333,
            server: "194.0.28.53".parse().unwrap(),
            transport: netbase::flow::Transport::Udp,
            qname: "a.example.nl.".parse().unwrap(),
            qtype: dns_wire::types::RType::A,
            edns_size: Some(1232),
            do_bit: false,
            rcode: Some(dns_wire::types::Rcode::NoError),
            response_size: Some(100),
            response_truncated: false,
            tcp_rtt_us: 0,
            asn: None,
            provider: None,
            public_dns: false,
        }
    }

    fn tmp_warehouse(name: &str) -> (std::path::PathBuf, Warehouse) {
        let dir = std::env::temp_dir().join(format!("dnswh-append-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wh = Warehouse::open(&dir).unwrap();
        (dir, wh)
    }

    #[test]
    fn hour_bucketing_splits_partitions() {
        let (dir, wh) = tmp_warehouse("hours");
        wh.ensure_source("s", "{}").unwrap();
        let mut app = wh.appender("s", AppendConfig::default());
        let hour = 3_600_000_000u64;
        for i in 0..100 {
            app.push(&row_at(10 * hour + i));
            app.push(&row_at(11 * hour + i));
            app.push(&row_at(12 * hour + i));
        }
        let stats = app.finish().unwrap();
        assert_eq!(stats.rows, 300);
        assert_eq!(stats.partitions, 3, "three distinct hours");
        assert_eq!(wh.commit().unwrap(), 3);
        assert_eq!(wh.rows(), 300);
        let parts = wh.partitions();
        assert!(parts
            .windows(2)
            .all(|w| w[0].zone.min_ts <= w[1].zone.min_ts));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn row_budget_flushes_early() {
        let (dir, wh) = tmp_warehouse("budget");
        wh.ensure_source("s", "{}").unwrap();
        let mut app = wh.appender(
            "s",
            AppendConfig {
                max_rows: 10,
                ..AppendConfig::default()
            },
        );
        for i in 0..35 {
            app.push(&row_at(1_000 + i));
        }
        let stats = app.finish().unwrap();
        assert_eq!(stats.partitions, 4, "3 full flushes + 1 remainder");
        wh.commit().unwrap();
        assert_eq!(wh.rows(), 35);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_combines_open_buckets() {
        let (dir, wh) = tmp_warehouse("merge");
        wh.ensure_source("s", "{}").unwrap();
        let mut a = wh.appender("s", AppendConfig::default());
        let mut b = wh.appender("s", AppendConfig::default());
        for i in 0..50 {
            a.push(&row_at(1_000 + i));
            b.push(&row_at(2_000 + i));
        }
        a.merge(b);
        let stats = a.finish().unwrap();
        assert_eq!(stats.rows, 100);
        assert_eq!(stats.partitions, 1, "same hour bucket merged");
        wh.commit().unwrap();
        assert_eq!(wh.rows(), 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_partitions_stay_invisible() {
        let (dir, wh) = tmp_warehouse("staged");
        wh.ensure_source("s", "{}").unwrap();
        let mut app = wh.appender("s", AppendConfig::default());
        app.push(&row_at(5));
        app.finish().unwrap();
        assert_eq!(wh.partitions().len(), 0, "not committed yet");
        let reopened = Warehouse::open(&dir).unwrap();
        assert_eq!(reopened.partitions().len(), 0, "orphan file not listed");
        wh.commit().unwrap();
        assert_eq!(Warehouse::open(&dir).unwrap().partitions().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn source_metadata_conflicts_rejected() {
        let (dir, wh) = tmp_warehouse("sources");
        wh.ensure_source("s", "{\"seed\":1}").unwrap();
        wh.ensure_source("s", "{\"seed\":1}").unwrap();
        assert!(matches!(
            wh.ensure_source("s", "{\"seed\":2}"),
            Err(WarehouseError::SourceMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

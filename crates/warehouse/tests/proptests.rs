//! Property tests for the warehouse: random row batches written
//! through the appender and read back through a scan are exactly the
//! original rows, for any partition size, and predicate scans agree
//! with filtering the original rows in memory.

use asdb::cloud::ALL_PROVIDERS;
use asdb::registry::Asn;
use dns_wire::types::{RType, Rcode};
use entrada::schema::QueryRow;
use netbase::flow::Transport;
use netbase::time::SimTime;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use warehouse::{AppendConfig, Predicate, Warehouse};

/// A random but *self-consistent* row: the provider always matches the
/// ASN (the columnar layout derives provider from the AS column), and
/// sentinel-colliding values (`edns_size == u16::MAX`,
/// `response_size == 0`) are avoided just as real captures never
/// produce them.
fn random_row(rng: &mut StdRng, base_us: u64) -> QueryRow {
    let (asn, provider) = match rng.gen_range(0u32..8) {
        0 => (None, None),
        1..=2 => {
            let p = ALL_PROVIDERS[rng.gen_range(0usize..ALL_PROVIDERS.len())];
            let asns = p.asns();
            (Some(asns[rng.gen_range(0usize..asns.len())]), Some(p))
        }
        _ => (Some(Asn(64_496 + rng.gen_range(0u32..1_000))), None),
    };
    let answered = rng.gen_bool(0.9);
    let transport = if rng.gen_bool(0.08) {
        Transport::Tcp
    } else {
        Transport::Udp
    };
    QueryRow {
        timestamp: SimTime(base_us + rng.gen_range(0u64..8 * 3_600_000_000)),
        src: if rng.gen_bool(0.3) {
            format!("2001:db8::{:x}", rng.gen_range(1u32..0xffff))
                .parse()
                .unwrap()
        } else {
            format!("203.0.113.{}", rng.gen_range(1u32..255))
                .parse()
                .unwrap()
        },
        src_port: rng.gen_range(1024u16..u16::MAX),
        server: "194.0.28.53".parse().unwrap(),
        transport,
        qname: format!("q{}.example.nl.", rng.gen_range(0u32..40))
            .parse()
            .unwrap(),
        qtype: match rng.gen_range(0u32..5) {
            0 => RType::A,
            1 => RType::Aaaa,
            2 => RType::Ns,
            3 => RType::Ds,
            _ => RType::Txt,
        },
        edns_size: if rng.gen_bool(0.8) {
            Some(rng.gen_range(512u16..4096))
        } else {
            None
        },
        do_bit: rng.gen_bool(0.4),
        rcode: answered.then(|| {
            if rng.gen_bool(0.8) {
                Rcode::NoError
            } else {
                Rcode::NxDomain
            }
        }),
        response_size: answered.then(|| rng.gen_range(40u32..2000)),
        response_truncated: rng.gen_bool(0.02),
        tcp_rtt_us: if transport == Transport::Tcp {
            rng.gen_range(1_000u32..200_000)
        } else {
            0
        },
        asn,
        provider,
        public_dns: rng.gen_bool(0.1),
    }
}

/// Total order on rows so multisets can be compared as sorted vectors
/// (scans return rows grouped by partition, not in push order).
fn sort_key(row: &QueryRow) -> (u64, String) {
    (row.timestamp.as_micros(), format!("{row:?}"))
}

fn fresh_root() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dnswh-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn write_scan_roundtrip_any_partition_size(
        seed in 0u64..1_000_000,
        n_rows in 1usize..2_500,
        max_rows in 1usize..400,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = SimTime::from_date(2020, 4, 5).as_micros();
        let rows: Vec<QueryRow> = (0..n_rows).map(|_| random_row(&mut rng, base)).collect();

        let root = fresh_root();
        let wh = Warehouse::open(&root).expect("open");
        wh.ensure_source("prop", "{}").expect("source");
        let mut app = wh.appender("prop", AppendConfig {
            max_rows,
            ..AppendConfig::default()
        });
        for r in &rows {
            app.push(r);
        }
        let stats = app.finish().expect("finish");
        prop_assert_eq!(stats.rows, rows.len() as u64);
        wh.commit().expect("commit");

        // reopen from disk: everything must come back from the files
        let wh = Warehouse::open(&root).expect("reopen");
        let mut scan = wh.scan(Predicate::all());
        let mut got: Vec<QueryRow> = scan.by_ref().collect();
        let sstats = scan.stats();
        prop_assert_eq!(sstats.corrupt, 0);
        prop_assert_eq!(sstats.rows_matched, rows.len() as u64);

        let mut want = rows.clone();
        got.sort_by_key(sort_key);
        want.sort_by_key(sort_key);
        prop_assert_eq!(got, want);

        // a random time window scan equals the in-memory filter
        let w0 = base + seed % (8 * 3_600_000_000);
        let w1 = w0 + 2 * 3_600_000_000;
        let pred = Predicate::between(SimTime(w0), SimTime(w1));
        let mut scan = wh.scan(pred);
        let mut got_window: Vec<QueryRow> = scan.by_ref().collect();
        let mut want_window: Vec<QueryRow> = rows
            .iter()
            .filter(|r| r.timestamp.as_micros() >= w0 && r.timestamp.as_micros() < w1)
            .cloned()
            .collect();
        got_window.sort_by_key(sort_key);
        want_window.sort_by_key(sort_key);
        prop_assert_eq!(got_window, want_window);

        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Appending in two sessions (reopen between them) accumulates; the
/// second commit must not disturb the first session's partitions.
#[test]
fn incremental_append_across_reopens() {
    let mut rng = StdRng::seed_from_u64(7);
    let base = SimTime::from_date(2018, 11, 4).as_micros();
    let first: Vec<QueryRow> = (0..500).map(|_| random_row(&mut rng, base)).collect();
    let second: Vec<QueryRow> = (0..500)
        .map(|_| random_row(&mut rng, base + 86_400_000_000))
        .collect();

    let root = fresh_root();
    {
        let wh = Warehouse::open(&root).unwrap();
        wh.ensure_source("inc", "{}").unwrap();
        let mut app = wh.appender("inc", AppendConfig::default());
        first.iter().for_each(|r| app.push(r));
        app.finish().unwrap();
        wh.commit().unwrap();
    }
    {
        let wh = Warehouse::open(&root).unwrap();
        wh.ensure_source("inc", "{}").unwrap();
        let mut app = wh.appender("inc", AppendConfig::default());
        second.iter().for_each(|r| app.push(r));
        app.finish().unwrap();
        wh.commit().unwrap();
    }

    let wh = Warehouse::open(&root).unwrap();
    let mut got: Vec<QueryRow> = wh.scan(Predicate::all()).collect();
    let mut want: Vec<QueryRow> = first.into_iter().chain(second).collect();
    got.sort_by_key(sort_key);
    want.sort_by_key(sort_key);
    assert_eq!(got.len(), 1000);
    assert_eq!(got, want);
    let _ = std::fs::remove_dir_all(&root);
}

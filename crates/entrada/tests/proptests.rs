//! Property tests for the aggregation primitives.

use entrada::agg::{Cdf, Counter, DistinctCounter, HyperLogLog};
use proptest::prelude::*;

proptest! {
    /// Counter totals equal the sum over keys; merge is additive.
    #[test]
    fn counter_total_law(pairs in prop::collection::vec((0u32..50, 1u64..100), 0..100)) {
        let mut c = Counter::new();
        for (k, n) in &pairs {
            c.add(*k, *n);
        }
        let expected: u64 = pairs.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(c.total(), expected);
        let sum_keys: u64 = c.iter().map(|(_, v)| v).sum();
        prop_assert_eq!(sum_keys, expected);
        // ratios sum to 1 when non-empty
        if expected > 0 {
            let rsum: f64 = c
                .iter()
                .map(|(k, _)| c.ratio(k))
                .sum();
            prop_assert!((rsum - 1.0).abs() < 1e-9);
        }
    }

    /// Merging two counters equals counting the concatenation.
    #[test]
    fn counter_merge_law(
        a in prop::collection::vec((0u32..20, 1u64..50), 0..50),
        b in prop::collection::vec((0u32..20, 1u64..50), 0..50),
    ) {
        let mut ca = Counter::new();
        for (k, n) in &a {
            ca.add(*k, *n);
        }
        let mut cb = Counter::new();
        for (k, n) in &b {
            cb.add(*k, *n);
        }
        let mut combined = Counter::new();
        for (k, n) in a.iter().chain(b.iter()) {
            combined.add(*k, *n);
        }
        ca.merge(cb);
        prop_assert_eq!(ca.total(), combined.total());
        for key in 0u32..20 {
            prop_assert_eq!(ca.get(&key), combined.get(&key));
        }
    }

    /// top_k is sorted descending and contains the true maximum.
    #[test]
    fn topk_law(pairs in prop::collection::vec((0u32..30, 1u64..100), 1..60)) {
        let mut c = Counter::new();
        for (k, n) in &pairs {
            c.add(*k, *n);
        }
        let top = c.top_k(5);
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        let max = c.iter().map(|(_, v)| v).max().unwrap();
        prop_assert_eq!(top[0].1, max);
    }

    /// Exact distinct count equals the set size of the input.
    #[test]
    fn distinct_exact_law(values in prop::collection::vec(0u32..1000, 0..500)) {
        let mut d = DistinctCounter::new();
        for v in &values {
            d.observe(*v);
        }
        let truth: std::collections::HashSet<u32> = values.iter().copied().collect();
        prop_assert_eq!(d.count(), truth.len() as u64);
    }

    /// HLL never decreases as more values are observed, and duplicates
    /// never change the estimate.
    #[test]
    fn hll_monotone(values in prop::collection::vec(0u64..100_000, 1..400)) {
        let mut h = HyperLogLog::new(10);
        let mut last = 0.0f64;
        for v in &values {
            h.observe(v);
            let now = h.estimate();
            prop_assert!(now + 1e-9 >= last, "estimate decreased: {last} -> {now}");
            last = now;
        }
        let before = h.estimate();
        for v in &values {
            h.observe(v); // re-observe everything
        }
        prop_assert_eq!(h.estimate(), before);
    }

    /// HLL merge is commutative and equals the union stream.
    #[test]
    fn hll_merge_law(
        a in prop::collection::vec(0u64..50_000, 0..300),
        b in prop::collection::vec(0u64..50_000, 0..300),
    ) {
        let mut ha = HyperLogLog::new(10);
        let mut hb = HyperLogLog::new(10);
        let mut hu = HyperLogLog::new(10);
        for v in &a {
            ha.observe(v);
            hu.observe(v);
        }
        for v in &b {
            hb.observe(v);
            hu.observe(v);
        }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.estimate(), ba.estimate());
        prop_assert_eq!(ab.estimate(), hu.estimate());
    }

    /// CDF: monotone, bounded by [0,1], and quantiles are actual samples.
    #[test]
    fn cdf_laws(samples in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut cdf = Cdf::new();
        for s in &samples {
            cdf.add(*s);
        }
        let max = *samples.iter().max().unwrap();
        prop_assert_eq!(cdf.fraction_at_most(max), 1.0);
        let mut last = 0.0;
        for x in (0..=max).step_by((max as usize / 20).max(1)) {
            let f = cdf.fraction_at_most(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f + 1e-12 >= last);
            last = f;
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = cdf.quantile(q);
            prop_assert!(samples.contains(&v), "quantile {q} -> {v} not a sample");
        }
        // median splits mass: at least half the samples are <= median
        let med = cdf.median();
        prop_assert!(cdf.fraction_at_most(med) >= 0.5);
    }
}

//! Capture ingestion: parse, join queries with responses, enrich.
//!
//! Joining follows real passive-DNS practice: a response matches the
//! pending query with the same (reversed) flow 5-tuple and DNS
//! transaction id. Unmatched responses and malformed frames are counted
//! in [`IngestStats`], never fatal.
//!
//! The ingester is generic over [`RecordSource`], so it consumes a
//! `.dnscap` file on disk, an in-memory record vector, or a live
//! channel fed straight from the generator (the streamed pipeline
//! mode) with identical accounting.

use crate::enrich::Enricher;
use crate::schema::QueryRow;
use dns_wire::message::Message;
use netbase::capture::{CaptureRecord, Direction, RecordSource};
use netbase::flow::FlowKey;
use std::collections::{HashMap, VecDeque};

/// Ingestion health counters.
///
/// The accounting is exact: once the stream is exhausted, every DNS
/// message that entered the joiner is in exactly one bucket — see
/// [`IngestStats::balanced`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IngestStats {
    /// Frames read from the capture.
    pub frames: u64,
    /// DNS messages carried by those frames: one per UDP frame, one or
    /// more per TCP frame (RFC 1035 framing legitimately coalesces
    /// several messages per segment). A frame whose TCP deframing fails
    /// outright counts as one (malformed) message.
    pub messages: u64,
    /// Messages whose DNS payload failed to deframe or parse, plus
    /// query messages carrying no question.
    pub malformed: u64,
    /// Responses with no pending query (late, spoofed, or dropped).
    pub unmatched_responses: u64,
    /// Queries that never saw a response by end of stream.
    pub unanswered_queries: u64,
    /// Rows emitted.
    pub rows: u64,
    /// Torn or corrupt capture records: the stream ended early on an
    /// error rather than at a clean end-of-stream marker.
    pub capture_errors: u64,
}

impl IngestStats {
    /// Responses that joined a pending query.
    pub fn matched_responses(&self) -> u64 {
        self.rows - self.unanswered_queries
    }

    /// The exact accounting invariant (valid once the ingest iterator
    /// is exhausted): every message is malformed, a query (one row
    /// each), a matched response, or an unmatched response.
    ///
    /// `messages == malformed + rows + matched_responses + unmatched_responses`
    pub fn balanced(&self) -> bool {
        self.messages
            == self.malformed + self.rows + self.matched_responses() + self.unmatched_responses
    }

    /// Merge the counters of another (disjoint) ingest run in. Every
    /// field is a sum over messages, so partitioned ingests — the
    /// parallel-analysis workers each joining their own slice subset —
    /// merge into exactly the stats one serial ingest would report, and
    /// [`IngestStats::balanced`] is preserved.
    pub fn merge(&mut self, other: &IngestStats) {
        self.frames += other.frames;
        self.messages += other.messages;
        self.malformed += other.malformed;
        self.unmatched_responses += other.unmatched_responses;
        self.unanswered_queries += other.unanswered_queries;
        self.rows += other.rows;
        self.capture_errors += other.capture_errors;
    }
}

/// Key identifying a DNS transaction in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TxnKey {
    flow: FlowKey,
    id: u16,
}

/// Streaming capture → [`QueryRow`] iterator.
///
/// Rows are emitted when the response arrives (the common case) or at
/// end-of-stream for unanswered queries. Emission order therefore
/// follows response arrival, which is fine for every aggregate in the
/// paper (nothing downstream requires query order).
pub struct CaptureIngest<S: RecordSource> {
    source: S,
    enricher: Enricher,
    pending: HashMap<TxnKey, QueryRow>,
    stats: IngestStats,
    /// Rows ready to yield (a TCP frame can produce several at once).
    ready: VecDeque<QueryRow>,
    /// The source reached end-of-stream (clean or via capture error)
    /// and pending queries were flushed.
    finished: bool,
    frames_metric: std::sync::Arc<obs::Counter>,
    rows_metric: std::sync::Arc<obs::Counter>,
    malformed_metric: std::sync::Arc<obs::Counter>,
    capture_errors_metric: std::sync::Arc<obs::Counter>,
}

impl<S: RecordSource> CaptureIngest<S> {
    /// Start ingesting from a record source (a validated
    /// `CaptureReader`, an in-memory vector, a pipeline channel, ...).
    pub fn new(source: S, enricher: Enricher) -> Self {
        CaptureIngest {
            source,
            enricher,
            pending: HashMap::new(),
            stats: IngestStats::default(),
            ready: VecDeque::new(),
            finished: false,
            frames_metric: obs::counter("entrada_frames_total", "capture frames ingested"),
            rows_metric: obs::counter("entrada_rows_total", "query rows emitted by ingest"),
            malformed_metric: obs::counter(
                "entrada_malformed_total",
                "DNS messages that failed to deframe or parse",
            ),
            capture_errors_metric: obs::counter(
                "entrada_capture_errors_total",
                "torn or corrupt capture records cutting an ingest stream short",
            ),
        }
    }

    /// Counters so far (final after the iterator is exhausted).
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Absorb one capture frame, queueing any rows it completes.
    fn absorb(&mut self, rec: CaptureRecord) {
        self.stats.frames += 1;
        self.frames_metric.inc();
        match rec.flow.transport {
            // TCP payloads carry RFC 1035 two-octet length prefixes and
            // may coalesce several DNS messages per captured segment
            // (real pcap imports do); absorb each message.
            netbase::flow::Transport::Tcp => match dns_wire::tcp::deframe_all(&rec.payload) {
                Ok(messages) if !messages.is_empty() => {
                    for wire in &messages {
                        self.absorb_message(&rec, wire);
                    }
                }
                _ => {
                    // an unframed/truncated TCP payload (or one with no
                    // messages at all): one malformed message unit
                    self.stats.messages += 1;
                    self.stats.malformed += 1;
                    self.malformed_metric.inc();
                }
            },
            netbase::flow::Transport::Udp => self.absorb_message(&rec, &rec.payload.clone()),
        }
    }

    /// Absorb one deframed DNS message from frame `rec`.
    fn absorb_message(&mut self, rec: &CaptureRecord, wire: &[u8]) {
        self.stats.messages += 1;
        let msg = match Message::parse(wire) {
            Ok(m) => m,
            Err(_) => {
                self.stats.malformed += 1;
                self.malformed_metric.inc();
                return;
            }
        };
        match rec.direction {
            Direction::Query => {
                let question = match msg.question() {
                    Some(q) => q.clone(),
                    None => {
                        // a query with an empty question section joins
                        // nothing and aggregates nowhere: malformed, so
                        // the message accounting stays exact
                        self.stats.malformed += 1;
                        self.malformed_metric.inc();
                        return;
                    }
                };
                let (asn, provider, public_dns) = self.enricher.enrich(rec.flow.src);
                let row = QueryRow {
                    timestamp: rec.timestamp,
                    src: rec.flow.src,
                    src_port: rec.flow.src_port,
                    server: rec.flow.dst,
                    transport: rec.flow.transport,
                    qname: question.qname,
                    qtype: question.qtype,
                    edns_size: msg.edns.as_ref().map(|e| e.udp_payload_size),
                    do_bit: msg.edns.as_ref().map(|e| e.dnssec_ok).unwrap_or(false),
                    rcode: None,
                    response_size: None,
                    response_truncated: false,
                    tcp_rtt_us: rec.tcp_rtt_us,
                    asn,
                    provider,
                    public_dns,
                };
                let key = TxnKey {
                    flow: rec.flow,
                    id: msg.header.id,
                };
                if let Some(orphan) = self.pending.insert(key, row) {
                    // same flow+id reused before the first was answered:
                    // flush the old one as unanswered
                    self.stats.unanswered_queries += 1;
                    self.stats.rows += 1;
                    self.rows_metric.inc();
                    self.ready.push_back(orphan);
                }
            }
            Direction::Response => {
                let key = TxnKey {
                    flow: rec.flow.reversed(),
                    id: msg.header.id,
                };
                match self.pending.remove(&key) {
                    Some(mut row) => {
                        row.rcode = Some(msg.header.rcode);
                        // the deframed DNS message length for both
                        // transports — a raw TCP payload length would
                        // inflate every TCP response by the 2-byte
                        // RFC 1035 length prefix relative to UDP
                        row.response_size = Some(wire.len() as u32);
                        row.response_truncated = msg.header.truncated;
                        if rec.tcp_rtt_us != 0 {
                            row.tcp_rtt_us = rec.tcp_rtt_us;
                        }
                        self.stats.rows += 1;
                        self.rows_metric.inc();
                        self.ready.push_back(row);
                    }
                    None => {
                        self.stats.unmatched_responses += 1;
                    }
                }
            }
        }
    }

    /// End of stream: flush unanswered queries in deterministic (time)
    /// order.
    fn finish(&mut self) {
        let mut rest: Vec<QueryRow> = self.pending.drain().map(|(_, v)| v).collect();
        rest.sort_by_key(|r| (r.timestamp, r.src_port));
        self.stats.unanswered_queries += rest.len() as u64;
        self.stats.rows += rest.len() as u64;
        self.rows_metric.add(rest.len() as u64);
        self.ready.extend(rest);
        self.finished = true;
    }
}

impl<S: RecordSource> Iterator for CaptureIngest<S> {
    type Item = QueryRow;

    fn next(&mut self) -> Option<QueryRow> {
        loop {
            if let Some(row) = self.ready.pop_front() {
                return Some(row);
            }
            if self.finished {
                return None;
            }
            match self.source.next_record() {
                Ok(Some(rec)) => self.absorb(rec),
                Ok(None) => self.finish(),
                Err(_) => {
                    // a torn or corrupt capture record is NOT a clean
                    // end-of-stream: count it so downstream runs can
                    // warn, then salvage what was read
                    self.stats.capture_errors += 1;
                    self.capture_errors_metric.inc();
                    self.finish();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::synth::{InternetPlan, PlanConfig};
    use dns_wire::builder::MessageBuilder;
    use dns_wire::types::{RType, Rcode};
    use netbase::capture::{CaptureReader, CaptureWriter};
    use netbase::flow::Transport;
    use netbase::time::SimTime;

    fn enricher() -> Enricher {
        let plan = InternetPlan::build(&PlanConfig {
            other_as_count: 10,
            isp_fraction: 0.5,
            v6_fraction: 0.3,
            seed: 5,
        });
        Enricher::new(plan.mapper)
    }

    fn flow(src: &str, port: u16) -> FlowKey {
        FlowKey {
            src: src.parse().unwrap(),
            src_port: port,
            dst: "194.0.28.53".parse().unwrap(),
            dst_port: 53,
            transport: Transport::Udp,
        }
    }

    fn capture(records: &[CaptureRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = CaptureWriter::new(&mut buf).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    fn query_rec(src: &str, port: u16, id: u16, t: u64) -> CaptureRecord {
        let q = MessageBuilder::query(id, "example.nl.".parse().unwrap(), RType::A)
            .with_edns(1232, true)
            .build();
        CaptureRecord {
            timestamp: SimTime(t),
            direction: Direction::Query,
            flow: flow(src, port),
            tcp_rtt_us: 0,
            payload: q.encode().unwrap(),
        }
    }

    fn response_rec(src: &str, port: u16, id: u16, t: u64, rcode: Rcode) -> CaptureRecord {
        let q = MessageBuilder::query(id, "example.nl.".parse().unwrap(), RType::A).build();
        let r = MessageBuilder::response(&q, rcode).build();
        CaptureRecord {
            timestamp: SimTime(t),
            direction: Direction::Response,
            flow: flow(src, port).reversed(),
            tcp_rtt_us: 0,
            payload: r.encode().unwrap(),
        }
    }

    /// Exhaust an ingest run and hand back (rows, final stats), always
    /// checking the accounting invariant.
    fn drain(buf: &[u8]) -> (Vec<QueryRow>, IngestStats) {
        let mut ingest = CaptureIngest::new(CaptureReader::new(buf).unwrap(), enricher());
        let rows: Vec<QueryRow> = ingest.by_ref().collect();
        let stats = ingest.stats().clone();
        assert!(stats.balanced(), "accounting out of balance: {stats:?}");
        (rows, stats)
    }

    #[test]
    fn join_produces_enriched_rows() {
        let buf = capture(&[
            query_rec("8.8.8.8", 1000, 7, 10),
            response_rec("8.8.8.8", 1000, 7, 20, Rcode::NoError),
        ]);
        let (rows, stats) = drain(&buf);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.rcode, Some(Rcode::NoError));
        assert!(row.is_valid());
        assert_eq!(row.provider, Some(asdb::cloud::Provider::Google));
        assert!(row.public_dns);
        assert_eq!(row.edns_size, Some(1232));
        assert!(row.do_bit);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.rows, 1);
        assert_eq!(stats.malformed, 0);
        assert_eq!(stats.unanswered_queries, 0);
        assert_eq!(stats.capture_errors, 0);
    }

    #[test]
    fn unanswered_query_flushes_at_eof() {
        let buf = capture(&[query_rec("8.8.8.8", 1000, 7, 10)]);
        let (rows, stats) = drain(&buf);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].rcode, None);
        assert!(!rows[0].is_valid() && !rows[0].is_junk());
        assert_eq!(stats.unanswered_queries, 1);
    }

    #[test]
    fn unmatched_response_is_counted_not_emitted() {
        let buf = capture(&[response_rec("8.8.8.8", 1000, 7, 10, Rcode::NoError)]);
        let (rows, stats) = drain(&buf);
        assert!(rows.is_empty());
        assert_eq!(stats.unmatched_responses, 1);
    }

    #[test]
    fn id_mismatch_does_not_join() {
        let buf = capture(&[
            query_rec("8.8.8.8", 1000, 7, 10),
            response_rec("8.8.8.8", 1000, 8, 20, Rcode::NoError),
        ]);
        let (rows, stats) = drain(&buf);
        assert_eq!(rows.len(), 1, "query flushed unanswered");
        assert_eq!(rows[0].rcode, None);
        assert_eq!(stats.unmatched_responses, 1);
    }

    #[test]
    fn port_mismatch_does_not_join() {
        let buf = capture(&[
            query_rec("8.8.8.8", 1000, 7, 10),
            response_rec("8.8.8.8", 1001, 7, 20, Rcode::NoError),
        ]);
        let (rows, _) = drain(&buf);
        assert_eq!(rows[0].rcode, None);
    }

    #[test]
    fn malformed_payload_is_skipped() {
        let mut bad = query_rec("8.8.8.8", 1000, 7, 10);
        bad.payload = vec![1, 2, 3];
        let buf = capture(&[bad, query_rec("1.1.1.1", 2000, 9, 30)]);
        let (rows, stats) = drain(&buf);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].src.to_string(), "1.1.1.1");
        assert_eq!(stats.malformed, 1);
    }

    #[test]
    fn junk_rcode_flows_through() {
        let buf = capture(&[
            query_rec("1.1.1.1", 1000, 7, 10),
            response_rec("1.1.1.1", 1000, 7, 20, Rcode::NxDomain),
        ]);
        let (rows, _) = drain(&buf);
        assert!(rows[0].is_junk());
    }

    #[test]
    fn reused_transaction_id_flushes_orphan() {
        let buf = capture(&[
            query_rec("8.8.8.8", 1000, 7, 10),
            query_rec("8.8.8.8", 1000, 7, 50),
            response_rec("8.8.8.8", 1000, 7, 60, Rcode::NoError),
        ]);
        let (rows, _) = drain(&buf);
        assert_eq!(rows.len(), 2);
        // first emitted is the orphan (unanswered), then the joined one
        assert_eq!(rows[0].rcode, None);
        assert_eq!(rows[1].rcode, Some(Rcode::NoError));
    }

    #[test]
    fn tcp_payloads_are_deframed() {
        let q = MessageBuilder::query(7, "example.nl.".parse().unwrap(), RType::Soa).build();
        let r = MessageBuilder::response(&q, Rcode::NoError).build();
        let mut f = flow("8.8.8.8", 555);
        f.transport = Transport::Tcp;
        let records = [
            CaptureRecord {
                timestamp: SimTime(1),
                direction: Direction::Query,
                flow: f,
                tcp_rtt_us: 12_000,
                payload: dns_wire::tcp::frame(&q.encode().unwrap()).unwrap(),
            },
            CaptureRecord {
                timestamp: SimTime(2),
                direction: Direction::Response,
                flow: f.reversed(),
                tcp_rtt_us: 12_000,
                payload: dns_wire::tcp::frame(&r.encode().unwrap()).unwrap(),
            },
        ];
        let buf = capture(&records);
        let (rows, stats) = drain(&buf);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].transport, Transport::Tcp);
        assert_eq!(rows[0].tcp_rtt_us, 12_000);
        assert_eq!(rows[0].rcode, Some(Rcode::NoError));
        assert_eq!(stats.malformed, 0);
    }

    #[test]
    fn unframed_tcp_payload_is_malformed() {
        let q = MessageBuilder::query(7, "example.nl.".parse().unwrap(), RType::A).build();
        let mut f = flow("8.8.8.8", 556);
        f.transport = Transport::Tcp;
        let rec = CaptureRecord {
            timestamp: SimTime(1),
            direction: Direction::Query,
            flow: f,
            tcp_rtt_us: 1,
            payload: q.encode().unwrap(), // missing the length prefix
        };
        let buf = capture(&[rec]);
        let (rows, stats) = drain(&buf);
        assert!(rows.is_empty());
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.messages, 1);
    }

    #[test]
    fn truncation_and_size_recorded() {
        let q = MessageBuilder::query(5, "example.nl.".parse().unwrap(), RType::A)
            .with_edns(512, true)
            .build();
        let mut resp = MessageBuilder::response(&q, Rcode::NoError).build();
        resp.header.truncated = true;
        let records = [
            CaptureRecord {
                timestamp: SimTime(1),
                direction: Direction::Query,
                flow: flow("8.8.8.8", 1234),
                tcp_rtt_us: 0,
                payload: q.encode().unwrap(),
            },
            CaptureRecord {
                timestamp: SimTime(2),
                direction: Direction::Response,
                flow: flow("8.8.8.8", 1234).reversed(),
                tcp_rtt_us: 0,
                payload: resp.encode().unwrap(),
            },
        ];
        let buf = capture(&records);
        let (rows, _) = drain(&buf);
        assert!(rows[0].response_truncated);
        assert_eq!(rows[0].response_size, Some(records[1].payload.len() as u32));
    }

    /// Regression (PR 3): a torn capture tail is counted, not silently
    /// treated as a clean end-of-stream.
    #[test]
    fn torn_capture_tail_is_counted() {
        let mut buf = capture(&[
            query_rec("8.8.8.8", 1000, 7, 10),
            response_rec("8.8.8.8", 1000, 7, 20, Rcode::NoError),
            query_rec("1.1.1.1", 2000, 9, 30),
        ]);
        buf.truncate(buf.len() - 5); // tear the last record
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        let rows: Vec<QueryRow> = ingest.by_ref().collect();
        let stats = ingest.stats().clone();
        assert_eq!(stats.capture_errors, 1, "torn record detected");
        assert_eq!(rows.len(), 1, "intact records still ingested");
        assert_eq!(rows[0].rcode, Some(Rcode::NoError));
        assert!(stats.balanced(), "{stats:?}");
        // fuse: a second iteration attempt yields nothing and does not
        // double-count the error
        assert!(ingest.next().is_none());
        assert_eq!(ingest.stats().capture_errors, 1);
    }

    /// Regression (PR 3): TCP response sizes are deframed DNS message
    /// lengths, byte-comparable with UDP (no +2 framing bias).
    #[test]
    fn tcp_response_size_matches_udp_for_identical_message() {
        let q = MessageBuilder::query(7, "example.nl.".parse().unwrap(), RType::A).build();
        let r = MessageBuilder::response(&q, Rcode::NoError).build();
        let q_wire = q.encode().unwrap();
        let r_wire = r.encode().unwrap();

        let udp_flow = flow("8.8.8.8", 700);
        let mut tcp_flow = flow("8.8.8.8", 701);
        tcp_flow.transport = Transport::Tcp;
        let buf = capture(&[
            CaptureRecord {
                timestamp: SimTime(1),
                direction: Direction::Query,
                flow: udp_flow,
                tcp_rtt_us: 0,
                payload: q_wire.clone(),
            },
            CaptureRecord {
                timestamp: SimTime(2),
                direction: Direction::Response,
                flow: udp_flow.reversed(),
                tcp_rtt_us: 0,
                payload: r_wire.clone(),
            },
            CaptureRecord {
                timestamp: SimTime(3),
                direction: Direction::Query,
                flow: tcp_flow,
                tcp_rtt_us: 9000,
                payload: dns_wire::tcp::frame(&q_wire).unwrap(),
            },
            CaptureRecord {
                timestamp: SimTime(4),
                direction: Direction::Response,
                flow: tcp_flow.reversed(),
                tcp_rtt_us: 9000,
                payload: dns_wire::tcp::frame(&r_wire).unwrap(),
            },
        ]);
        let (rows, stats) = drain(&buf);
        assert_eq!(rows.len(), 2);
        let udp_row = rows.iter().find(|r| r.transport == Transport::Udp).unwrap();
        let tcp_row = rows.iter().find(|r| r.transport == Transport::Tcp).unwrap();
        assert_eq!(udp_row.response_size, Some(r_wire.len() as u32));
        assert_eq!(
            tcp_row.response_size, udp_row.response_size,
            "identical messages must have identical recorded sizes"
        );
        assert_eq!(stats.malformed, 0);
    }

    /// Regression (PR 3): a query with zero questions is counted as
    /// malformed rather than silently dropped.
    #[test]
    fn zero_question_query_counts_as_malformed() {
        let mut q = MessageBuilder::query(7, "example.nl.".parse().unwrap(), RType::A).build();
        q.questions.clear();
        let mut rec = query_rec("8.8.8.8", 1000, 7, 10);
        rec.payload = q.encode().unwrap();
        let buf = capture(&[rec, query_rec("1.1.1.1", 2000, 9, 30)]);
        let (rows, stats) = drain(&buf);
        assert_eq!(rows.len(), 1, "only the well-formed query becomes a row");
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.malformed, 1, "zero-question query counted");
    }

    /// Regression (PR 3): a TCP frame coalescing two DNS messages
    /// yields both, instead of marking the whole frame malformed.
    #[test]
    fn coalesced_tcp_frame_absorbs_every_message() {
        let q1 = MessageBuilder::query(1, "one.example.nl.".parse().unwrap(), RType::A).build();
        let q2 = MessageBuilder::query(2, "two.example.nl.".parse().unwrap(), RType::Aaaa).build();
        let r1 = MessageBuilder::response(&q1, Rcode::NoError).build();
        let r2 = MessageBuilder::response(&q2, Rcode::NxDomain).build();
        let mut f = flow("8.8.4.4", 888);
        f.transport = Transport::Tcp;
        let queries =
            dns_wire::tcp::frame_all([&q1.encode().unwrap()[..], &q2.encode().unwrap()[..]])
                .unwrap();
        let responses =
            dns_wire::tcp::frame_all([&r1.encode().unwrap()[..], &r2.encode().unwrap()[..]])
                .unwrap();
        let buf = capture(&[
            CaptureRecord {
                timestamp: SimTime(1),
                direction: Direction::Query,
                flow: f,
                tcp_rtt_us: 5000,
                payload: queries,
            },
            CaptureRecord {
                timestamp: SimTime(2),
                direction: Direction::Response,
                flow: f.reversed(),
                tcp_rtt_us: 5000,
                payload: responses,
            },
        ]);
        let (rows, stats) = drain(&buf);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.messages, 4, "two messages per frame");
        assert_eq!(rows.len(), 2, "both transactions joined");
        assert_eq!(stats.malformed, 0);
        let by_id: Vec<_> = rows.iter().map(|r| (r.qtype, r.rcode)).collect();
        assert!(by_id.contains(&(RType::A, Some(Rcode::NoError))));
        assert!(by_id.contains(&(RType::Aaaa, Some(Rcode::NxDomain))));
        assert_eq!(
            rows[0].response_size,
            Some(r1.encode().unwrap().len() as u32),
            "per-message deframed size, not the coalesced payload size"
        );
    }
}

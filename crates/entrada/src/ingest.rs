//! Capture ingestion: parse, join queries with responses, enrich.
//!
//! Joining follows real passive-DNS practice: a response matches the
//! pending query with the same (reversed) flow 5-tuple and DNS
//! transaction id. Unmatched responses and malformed frames are counted
//! in [`IngestStats`], never fatal.

use crate::enrich::Enricher;
use crate::schema::QueryRow;
use dns_wire::message::Message;
use netbase::capture::{CaptureReader, CaptureRecord, Direction};
use netbase::flow::FlowKey;
use std::collections::HashMap;
use std::io::Read;

/// Ingestion health counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IngestStats {
    /// Frames read from the capture.
    pub frames: u64,
    /// Frames whose DNS payload failed to parse.
    pub malformed: u64,
    /// Responses with no pending query (late, spoofed, or dropped).
    pub unmatched_responses: u64,
    /// Queries that never saw a response by end of stream.
    pub unanswered_queries: u64,
    /// Rows emitted.
    pub rows: u64,
}

/// Key identifying a DNS transaction in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TxnKey {
    flow: FlowKey,
    id: u16,
}

/// Streaming capture → [`QueryRow`] iterator.
///
/// Rows are emitted when the response arrives (the common case) or at
/// end-of-stream for unanswered queries. Emission order therefore
/// follows response arrival, which is fine for every aggregate in the
/// paper (nothing downstream requires query order).
pub struct CaptureIngest<R: Read> {
    reader: CaptureReader<R>,
    enricher: Enricher,
    pending: HashMap<TxnKey, QueryRow>,
    stats: IngestStats,
    drained: Option<std::vec::IntoIter<QueryRow>>,
    frames_metric: std::sync::Arc<obs::Counter>,
    rows_metric: std::sync::Arc<obs::Counter>,
    malformed_metric: std::sync::Arc<obs::Counter>,
}

impl<R: Read> CaptureIngest<R> {
    /// Start ingesting from a validated capture reader.
    pub fn new(reader: CaptureReader<R>, enricher: Enricher) -> Self {
        CaptureIngest {
            reader,
            enricher,
            pending: HashMap::new(),
            stats: IngestStats::default(),
            drained: None,
            frames_metric: obs::counter("entrada_frames_total", "capture frames ingested"),
            rows_metric: obs::counter("entrada_rows_total", "query rows emitted by ingest"),
            malformed_metric: obs::counter(
                "entrada_malformed_total",
                "capture frames whose DNS payload failed to parse",
            ),
        }
    }

    /// Counters so far (final after the iterator is exhausted).
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    fn absorb(&mut self, rec: CaptureRecord) -> Option<QueryRow> {
        self.stats.frames += 1;
        self.frames_metric.inc();
        // TCP payloads carry the RFC 1035 two-octet length prefix;
        // deframe before parsing (one message per captured frame).
        let wire: std::borrow::Cow<'_, [u8]> = match rec.flow.transport {
            netbase::flow::Transport::Tcp => match dns_wire::tcp::deframe_all(&rec.payload) {
                Ok(mut messages) if messages.len() == 1 => {
                    std::borrow::Cow::Owned(messages.remove(0))
                }
                _ => {
                    self.stats.malformed += 1;
                    self.malformed_metric.inc();
                    return None;
                }
            },
            netbase::flow::Transport::Udp => std::borrow::Cow::Borrowed(&rec.payload),
        };
        let msg = match Message::parse(&wire) {
            Ok(m) => m,
            Err(_) => {
                self.stats.malformed += 1;
                self.malformed_metric.inc();
                return None;
            }
        };
        match rec.direction {
            Direction::Query => {
                let question = msg.question()?.clone();
                let (asn, provider, public_dns) = self.enricher.enrich(rec.flow.src);
                let row = QueryRow {
                    timestamp: rec.timestamp,
                    src: rec.flow.src,
                    src_port: rec.flow.src_port,
                    server: rec.flow.dst,
                    transport: rec.flow.transport,
                    qname: question.qname,
                    qtype: question.qtype,
                    edns_size: msg.edns.as_ref().map(|e| e.udp_payload_size),
                    do_bit: msg.edns.as_ref().map(|e| e.dnssec_ok).unwrap_or(false),
                    rcode: None,
                    response_size: None,
                    response_truncated: false,
                    tcp_rtt_us: rec.tcp_rtt_us,
                    asn,
                    provider,
                    public_dns,
                };
                let key = TxnKey {
                    flow: rec.flow,
                    id: msg.header.id,
                };
                if let Some(orphan) = self.pending.insert(key, row) {
                    // same flow+id reused before the first was answered:
                    // flush the old one as unanswered
                    self.stats.unanswered_queries += 1;
                    self.stats.rows += 1;
                    self.rows_metric.inc();
                    return Some(orphan);
                }
                None
            }
            Direction::Response => {
                let key = TxnKey {
                    flow: rec.flow.reversed(),
                    id: msg.header.id,
                };
                match self.pending.remove(&key) {
                    Some(mut row) => {
                        row.rcode = Some(msg.header.rcode);
                        row.response_size = Some(rec.payload.len() as u32);
                        row.response_truncated = msg.header.truncated;
                        if rec.tcp_rtt_us != 0 {
                            row.tcp_rtt_us = rec.tcp_rtt_us;
                        }
                        self.stats.rows += 1;
                        self.rows_metric.inc();
                        Some(row)
                    }
                    None => {
                        self.stats.unmatched_responses += 1;
                        None
                    }
                }
            }
        }
    }
}

impl<R: Read> Iterator for CaptureIngest<R> {
    type Item = QueryRow;

    fn next(&mut self) -> Option<QueryRow> {
        if let Some(drained) = &mut self.drained {
            return drained.next();
        }
        loop {
            match self.reader.next_record() {
                Ok(Some(rec)) => {
                    if let Some(row) = self.absorb(rec) {
                        return Some(row);
                    }
                }
                Ok(None) | Err(_) => {
                    // stream end (or a fatal capture error): flush
                    // unanswered queries in deterministic (time) order
                    let mut rest: Vec<QueryRow> = self.pending.drain().map(|(_, v)| v).collect();
                    rest.sort_by_key(|r| (r.timestamp, r.src_port));
                    self.stats.unanswered_queries += rest.len() as u64;
                    self.stats.rows += rest.len() as u64;
                    self.rows_metric.add(rest.len() as u64);
                    self.drained = Some(rest.into_iter());
                    return self.drained.as_mut().expect("just set").next();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::synth::{InternetPlan, PlanConfig};
    use dns_wire::builder::MessageBuilder;
    use dns_wire::types::{RType, Rcode};
    use netbase::capture::CaptureWriter;
    use netbase::flow::Transport;
    use netbase::time::SimTime;

    fn enricher() -> Enricher {
        let plan = InternetPlan::build(&PlanConfig {
            other_as_count: 10,
            isp_fraction: 0.5,
            v6_fraction: 0.3,
            seed: 5,
        });
        Enricher::new(plan.mapper)
    }

    fn flow(src: &str, port: u16) -> FlowKey {
        FlowKey {
            src: src.parse().unwrap(),
            src_port: port,
            dst: "194.0.28.53".parse().unwrap(),
            dst_port: 53,
            transport: Transport::Udp,
        }
    }

    fn capture(records: &[CaptureRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = CaptureWriter::new(&mut buf).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    fn query_rec(src: &str, port: u16, id: u16, t: u64) -> CaptureRecord {
        let q = MessageBuilder::query(id, "example.nl.".parse().unwrap(), RType::A)
            .with_edns(1232, true)
            .build();
        CaptureRecord {
            timestamp: SimTime(t),
            direction: Direction::Query,
            flow: flow(src, port),
            tcp_rtt_us: 0,
            payload: q.encode().unwrap(),
        }
    }

    fn response_rec(src: &str, port: u16, id: u16, t: u64, rcode: Rcode) -> CaptureRecord {
        let q = MessageBuilder::query(id, "example.nl.".parse().unwrap(), RType::A).build();
        let r = MessageBuilder::response(&q, rcode).build();
        CaptureRecord {
            timestamp: SimTime(t),
            direction: Direction::Response,
            flow: flow(src, port).reversed(),
            tcp_rtt_us: 0,
            payload: r.encode().unwrap(),
        }
    }

    #[test]
    fn join_produces_enriched_rows() {
        let buf = capture(&[
            query_rec("8.8.8.8", 1000, 7, 10),
            response_rec("8.8.8.8", 1000, 7, 20, Rcode::NoError),
        ]);
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        let rows: Vec<QueryRow> = ingest.by_ref().collect();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.rcode, Some(Rcode::NoError));
        assert!(row.is_valid());
        assert_eq!(row.provider, Some(asdb::cloud::Provider::Google));
        assert!(row.public_dns);
        assert_eq!(row.edns_size, Some(1232));
        assert!(row.do_bit);
        let stats = ingest.stats();
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.rows, 1);
        assert_eq!(stats.malformed, 0);
        assert_eq!(stats.unanswered_queries, 0);
    }

    #[test]
    fn unanswered_query_flushes_at_eof() {
        let buf = capture(&[query_rec("8.8.8.8", 1000, 7, 10)]);
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        let rows: Vec<QueryRow> = ingest.by_ref().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].rcode, None);
        assert!(!rows[0].is_valid() && !rows[0].is_junk());
        assert_eq!(ingest.stats().unanswered_queries, 1);
    }

    #[test]
    fn unmatched_response_is_counted_not_emitted() {
        let buf = capture(&[response_rec("8.8.8.8", 1000, 7, 10, Rcode::NoError)]);
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        assert_eq!(ingest.by_ref().count(), 0);
        assert_eq!(ingest.stats().unmatched_responses, 1);
    }

    #[test]
    fn id_mismatch_does_not_join() {
        let buf = capture(&[
            query_rec("8.8.8.8", 1000, 7, 10),
            response_rec("8.8.8.8", 1000, 8, 20, Rcode::NoError),
        ]);
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        let rows: Vec<QueryRow> = ingest.by_ref().collect();
        assert_eq!(rows.len(), 1, "query flushed unanswered");
        assert_eq!(rows[0].rcode, None);
        assert_eq!(ingest.stats().unmatched_responses, 1);
    }

    #[test]
    fn port_mismatch_does_not_join() {
        let buf = capture(&[
            query_rec("8.8.8.8", 1000, 7, 10),
            response_rec("8.8.8.8", 1001, 7, 20, Rcode::NoError),
        ]);
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        let rows: Vec<QueryRow> = ingest.by_ref().collect();
        assert_eq!(rows[0].rcode, None);
    }

    #[test]
    fn malformed_payload_is_skipped() {
        let mut bad = query_rec("8.8.8.8", 1000, 7, 10);
        bad.payload = vec![1, 2, 3];
        let buf = capture(&[bad, query_rec("1.1.1.1", 2000, 9, 30)]);
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        let rows: Vec<QueryRow> = ingest.by_ref().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].src.to_string(), "1.1.1.1");
        assert_eq!(ingest.stats().malformed, 1);
    }

    #[test]
    fn junk_rcode_flows_through() {
        let buf = capture(&[
            query_rec("1.1.1.1", 1000, 7, 10),
            response_rec("1.1.1.1", 1000, 7, 20, Rcode::NxDomain),
        ]);
        let rows: Vec<QueryRow> =
            CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher()).collect();
        assert!(rows[0].is_junk());
    }

    #[test]
    fn reused_transaction_id_flushes_orphan() {
        let buf = capture(&[
            query_rec("8.8.8.8", 1000, 7, 10),
            query_rec("8.8.8.8", 1000, 7, 50),
            response_rec("8.8.8.8", 1000, 7, 60, Rcode::NoError),
        ]);
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        let rows: Vec<QueryRow> = ingest.by_ref().collect();
        assert_eq!(rows.len(), 2);
        // first emitted is the orphan (unanswered), then the joined one
        assert_eq!(rows[0].rcode, None);
        assert_eq!(rows[1].rcode, Some(Rcode::NoError));
    }

    #[test]
    fn tcp_payloads_are_deframed() {
        let q = MessageBuilder::query(7, "example.nl.".parse().unwrap(), RType::Soa).build();
        let r = MessageBuilder::response(&q, Rcode::NoError).build();
        let mut f = flow("8.8.8.8", 555);
        f.transport = Transport::Tcp;
        let records = [
            CaptureRecord {
                timestamp: SimTime(1),
                direction: Direction::Query,
                flow: f,
                tcp_rtt_us: 12_000,
                payload: dns_wire::tcp::frame(&q.encode().unwrap()).unwrap(),
            },
            CaptureRecord {
                timestamp: SimTime(2),
                direction: Direction::Response,
                flow: f.reversed(),
                tcp_rtt_us: 12_000,
                payload: dns_wire::tcp::frame(&r.encode().unwrap()).unwrap(),
            },
        ];
        let buf = capture(&records);
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        let rows: Vec<QueryRow> = ingest.by_ref().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].transport, Transport::Tcp);
        assert_eq!(rows[0].tcp_rtt_us, 12_000);
        assert_eq!(rows[0].rcode, Some(Rcode::NoError));
        assert_eq!(ingest.stats().malformed, 0);
    }

    #[test]
    fn unframed_tcp_payload_is_malformed() {
        let q = MessageBuilder::query(7, "example.nl.".parse().unwrap(), RType::A).build();
        let mut f = flow("8.8.8.8", 556);
        f.transport = Transport::Tcp;
        let rec = CaptureRecord {
            timestamp: SimTime(1),
            direction: Direction::Query,
            flow: f,
            tcp_rtt_us: 1,
            payload: q.encode().unwrap(), // missing the length prefix
        };
        let buf = capture(&[rec]);
        let mut ingest = CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher());
        assert_eq!(ingest.by_ref().count(), 0);
        assert_eq!(ingest.stats().malformed, 1);
    }

    #[test]
    fn truncation_and_size_recorded() {
        let q = MessageBuilder::query(5, "example.nl.".parse().unwrap(), RType::A)
            .with_edns(512, true)
            .build();
        let mut resp = MessageBuilder::response(&q, Rcode::NoError).build();
        resp.header.truncated = true;
        let records = [
            CaptureRecord {
                timestamp: SimTime(1),
                direction: Direction::Query,
                flow: flow("8.8.8.8", 1234),
                tcp_rtt_us: 0,
                payload: q.encode().unwrap(),
            },
            CaptureRecord {
                timestamp: SimTime(2),
                direction: Direction::Response,
                flow: flow("8.8.8.8", 1234).reversed(),
                tcp_rtt_us: 0,
                payload: resp.encode().unwrap(),
            },
        ];
        let buf = capture(&records);
        let rows: Vec<QueryRow> =
            CaptureIngest::new(CaptureReader::new(&buf[..]).unwrap(), enricher()).collect();
        assert!(rows[0].response_truncated);
        assert_eq!(rows[0].response_size, Some(records[1].payload.len() as u32));
    }
}

//! Columnar row batches: the warehouse's in-memory representation.
//!
//! ENTRADA stores joined query rows in columnar form (Parquet); this is
//! the same idea at library scale. A [`ColumnarBatch`] holds each field
//! of [`QueryRow`] in its own dense column, with qnames
//! dictionary-encoded into a shared arena — repeated names (the Zipf
//! head, minimized Q-min names) are stored once. Multi-pass analyses
//! can hold tens of millions of rows this way at a fraction of the
//! row-struct footprint.

use crate::schema::QueryRow;
use asdb::cloud::Provider;
use asdb::registry::Asn;
use dns_wire::name::Name;
use dns_wire::types::{RType, Rcode};
use netbase::flow::Transport;
use netbase::time::SimTime;
use std::collections::HashMap;
use std::net::IpAddr;

/// Provider tag stored per row (one byte).
fn provider_tag(p: Option<Provider>) -> u8 {
    match p {
        None => 0,
        Some(Provider::Google) => 1,
        Some(Provider::Amazon) => 2,
        Some(Provider::Microsoft) => 3,
        Some(Provider::Facebook) => 4,
        Some(Provider::Cloudflare) => 5,
    }
}

fn tag_provider(t: u8) -> Option<Provider> {
    match t {
        1 => Some(Provider::Google),
        2 => Some(Provider::Amazon),
        3 => Some(Provider::Microsoft),
        4 => Some(Provider::Facebook),
        5 => Some(Provider::Cloudflare),
        _ => None,
    }
}

/// A dictionary-encoded columnar batch of query rows.
#[derive(Default)]
pub struct ColumnarBatch {
    timestamps: Vec<u64>,
    srcs: Vec<IpAddr>,
    src_ports: Vec<u16>,
    servers: Vec<IpAddr>,
    transports: Vec<u8>, // 0 udp, 1 tcp
    qname_ids: Vec<u32>,
    qtypes: Vec<u16>,
    edns_sizes: Vec<u16>, // u16::MAX sentinel = absent
    flags: Vec<u8>,       // bit0 do, bit1 truncated, bit2 public_dns, bit3 answered
    rcodes: Vec<u16>,
    response_sizes: Vec<u32>,
    tcp_rtts: Vec<u32>,
    asns: Vec<u32>, // 0 sentinel = unattributed
    // qname dictionary: wire-form bytes arena + offsets
    dict_offsets: Vec<(u32, u32)>,
    dict_arena: Vec<u8>,
    dict_index: HashMap<Vec<u8>, u32>,
}

impl ColumnarBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one row.
    pub fn push(&mut self, row: &QueryRow) {
        self.timestamps.push(row.timestamp.as_micros());
        self.srcs.push(row.src);
        self.src_ports.push(row.src_port);
        self.servers.push(row.server);
        self.transports.push(match row.transport {
            Transport::Udp => 0,
            Transport::Tcp => 1,
        });
        let qname_id = self.intern(row.qname.as_wire());
        self.qname_ids.push(qname_id);
        self.qtypes.push(row.qtype.to_u16());
        self.edns_sizes.push(row.edns_size.unwrap_or(u16::MAX));
        let mut flags = 0u8;
        if row.do_bit {
            flags |= 1;
        }
        if row.response_truncated {
            flags |= 2;
        }
        if row.public_dns {
            flags |= 4;
        }
        if row.rcode.is_some() {
            flags |= 8;
        }
        self.flags.push(flags);
        self.rcodes.push(row.rcode.map(Rcode::to_u16).unwrap_or(0));
        self.response_sizes.push(row.response_size.unwrap_or(0));
        self.tcp_rtts.push(row.tcp_rtt_us);
        self.asns.push(row.asn.map(|a| a.0).unwrap_or(0));
    }

    fn intern(&mut self, wire: &[u8]) -> u32 {
        if let Some(&id) = self.dict_index.get(wire) {
            return id;
        }
        let id = self.dict_offsets.len() as u32;
        let start = self.dict_arena.len() as u32;
        self.dict_arena.extend_from_slice(wire);
        self.dict_offsets.push((start, wire.len() as u32));
        self.dict_index.insert(wire.to_vec(), id);
        id
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Distinct qnames in the dictionary.
    pub fn dictionary_size(&self) -> usize {
        self.dict_offsets.len()
    }

    /// Reconstruct row `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn get(&self, i: usize) -> QueryRow {
        let (start, len) = self.dict_offsets[self.qname_ids[i] as usize];
        let wire = &self.dict_arena[start as usize..(start + len) as usize];
        let (qname, _) = Name::parse(wire, 0).expect("dictionary holds valid names");
        let flags = self.flags[i];
        QueryRow {
            timestamp: SimTime(self.timestamps[i]),
            src: self.srcs[i],
            src_port: self.src_ports[i],
            server: self.servers[i],
            transport: if self.transports[i] == 0 {
                Transport::Udp
            } else {
                Transport::Tcp
            },
            qname,
            qtype: RType::from_u16(self.qtypes[i]),
            edns_size: match self.edns_sizes[i] {
                u16::MAX => None,
                v => Some(v),
            },
            do_bit: flags & 1 != 0,
            rcode: if flags & 8 != 0 {
                Some(Rcode::from_u16(self.rcodes[i]))
            } else {
                None
            },
            response_size: match self.response_sizes[i] {
                0 => None,
                v => Some(v),
            },
            response_truncated: flags & 2 != 0,
            tcp_rtt_us: self.tcp_rtts[i],
            asn: match self.asns[i] {
                0 => None,
                v => Some(Asn(v)),
            },
            provider: tag_provider(provider_tag_at(self, i)),
            public_dns: flags & 4 != 0,
        }
    }

    /// Iterate reconstructed rows.
    pub fn iter(&self) -> impl Iterator<Item = QueryRow> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Indices of rows from `provider` (None = the rest of the
    /// Internet) — a columnar predicate scan.
    pub fn filter_provider(&self, provider: Option<Provider>) -> Vec<usize> {
        let tag = provider_tag(provider);
        self.provider_tags()
            .enumerate()
            .filter(|(_, t)| *t == tag)
            .map(|(i, _)| i)
            .collect()
    }

    fn provider_tags(&self) -> impl Iterator<Item = u8> + '_ {
        // providers derive from ASNs: reconstruct via the 20 known ASes
        self.asns.iter().map(|&asn| {
            if asn == 0 {
                return 0;
            }
            for p in asdb::cloud::ALL_PROVIDERS {
                if p.asns().iter().any(|a| a.0 == asn) {
                    return provider_tag(Some(p));
                }
            }
            0
        })
    }

    /// Merge another batch in: columns are appended, the other batch's
    /// dictionary ids are remapped through this batch's dictionary
    /// (shared names stay stored once). Equivalent to pushing the other
    /// batch's rows in order, without reconstructing them.
    pub fn merge(&mut self, other: ColumnarBatch) {
        let remap: Vec<u32> = other
            .dict_offsets
            .iter()
            .map(|&(start, len)| {
                self.intern(&other.dict_arena[start as usize..(start + len) as usize])
            })
            .collect();
        self.qname_ids
            .extend(other.qname_ids.iter().map(|&id| remap[id as usize]));
        self.timestamps.extend(other.timestamps);
        self.srcs.extend(other.srcs);
        self.src_ports.extend(other.src_ports);
        self.servers.extend(other.servers);
        self.transports.extend(other.transports);
        self.qtypes.extend(other.qtypes);
        self.edns_sizes.extend(other.edns_sizes);
        self.flags.extend(other.flags);
        self.rcodes.extend(other.rcodes);
        self.response_sizes.extend(other.response_sizes);
        self.tcp_rtts.extend(other.tcp_rtts);
        self.asns.extend(other.asns);
    }

    /// Approximate heap footprint of the batch, bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.timestamps.len()
            * (size_of::<u64>()
                + size_of::<IpAddr>() * 2
                + size_of::<u16>() * 3
                + size_of::<u8>() * 2
                + size_of::<u32>() * 4)
            + self.dict_arena.len()
            + self.dict_offsets.len() * 8
            + self.dict_index.len() * 48
    }
}

fn provider_tag_at(batch: &ColumnarBatch, i: usize) -> u8 {
    let asn = batch.asns[i];
    if asn == 0 {
        return 0;
    }
    for p in asdb::cloud::ALL_PROVIDERS {
        if p.asns().iter().any(|a| a.0 == asn) {
            return provider_tag(Some(p));
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: u64) -> QueryRow {
        QueryRow {
            timestamp: SimTime(1_000_000 + i),
            src: if i.is_multiple_of(3) {
                "8.8.8.8".parse().unwrap()
            } else {
                format!("192.0.2.{}", i % 250).parse().unwrap()
            },
            src_port: 1000 + (i % 60_000) as u16,
            server: "194.0.28.53".parse().unwrap(),
            transport: if i.is_multiple_of(5) {
                Transport::Tcp
            } else {
                Transport::Udp
            },
            // only a few distinct qnames: the dictionary should dedupe
            qname: format!("host{}.example.nl.", i % 7).parse().unwrap(),
            qtype: if i.is_multiple_of(2) {
                RType::A
            } else {
                RType::Ns
            },
            edns_size: if i.is_multiple_of(4) {
                None
            } else {
                Some(1232)
            },
            do_bit: i.is_multiple_of(2),
            rcode: if i.is_multiple_of(9) {
                None
            } else {
                Some(Rcode::NoError)
            },
            response_size: if i.is_multiple_of(9) {
                None
            } else {
                Some(100 + i as u32)
            },
            response_truncated: i.is_multiple_of(11),
            tcp_rtt_us: if i.is_multiple_of(5) { 20_000 } else { 0 },
            asn: if i.is_multiple_of(3) {
                Some(Asn(15169))
            } else {
                Some(Asn(64512))
            },
            provider: if i.is_multiple_of(3) {
                Some(Provider::Google)
            } else {
                None
            },
            public_dns: i.is_multiple_of(3),
        }
    }

    #[test]
    fn roundtrip_exact() {
        let mut batch = ColumnarBatch::new();
        let rows: Vec<QueryRow> = (0..500).map(row).collect();
        for r in &rows {
            batch.push(r);
        }
        assert_eq!(batch.len(), 500);
        for (i, orig) in rows.iter().enumerate() {
            let got = batch.get(i);
            assert_eq!(got.timestamp, orig.timestamp);
            assert_eq!(got.src, orig.src);
            assert_eq!(got.qname, orig.qname);
            assert_eq!(got.qtype, orig.qtype);
            assert_eq!(got.edns_size, orig.edns_size);
            assert_eq!(got.do_bit, orig.do_bit);
            assert_eq!(got.rcode, orig.rcode);
            assert_eq!(got.response_size, orig.response_size);
            assert_eq!(got.response_truncated, orig.response_truncated);
            assert_eq!(got.tcp_rtt_us, orig.tcp_rtt_us);
            assert_eq!(got.asn, orig.asn);
            assert_eq!(got.provider, orig.provider);
            assert_eq!(got.public_dns, orig.public_dns);
            assert_eq!(got.transport, orig.transport);
        }
    }

    #[test]
    fn dictionary_dedupes_qnames() {
        let mut batch = ColumnarBatch::new();
        for i in 0..10_000 {
            batch.push(&row(i));
        }
        assert_eq!(batch.dictionary_size(), 7, "7 distinct names interned once");
        // far below a row-struct representation (Name alone is ~20B heap
        // per row, plus Vec overheads)
        let per_row = batch.memory_bytes() / batch.len();
        assert!(per_row < 120, "columnar footprint {per_row} B/row");
    }

    #[test]
    fn provider_filter_scans_columns() {
        let mut batch = ColumnarBatch::new();
        for i in 0..300 {
            batch.push(&row(i));
        }
        let google = batch.filter_provider(Some(Provider::Google));
        assert_eq!(google.len(), 100);
        for &i in &google {
            assert_eq!(batch.get(i).provider, Some(Provider::Google));
        }
        let other = batch.filter_provider(None);
        assert_eq!(other.len(), 200);
    }

    #[test]
    fn iter_matches_get() {
        let mut batch = ColumnarBatch::new();
        for i in 0..50 {
            batch.push(&row(i));
        }
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(r.qname, batch.get(i).qname);
        }
        assert_eq!(batch.iter().count(), 50);
    }

    #[test]
    fn merge_equals_serial_pushes() {
        let mut serial = ColumnarBatch::new();
        let mut left = ColumnarBatch::new();
        let mut right = ColumnarBatch::new();
        for i in 0..400 {
            let r = row(i);
            serial.push(&r);
            if i < 150 {
                left.push(&r);
            } else {
                right.push(&r);
            }
        }
        left.merge(right);
        assert_eq!(left.len(), serial.len());
        assert_eq!(left.dictionary_size(), serial.dictionary_size());
        for i in 0..serial.len() {
            assert_eq!(left.get(i), serial.get(i));
        }
    }

    #[test]
    fn empty_batch() {
        let batch = ColumnarBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.iter().count(), 0);
        assert_eq!(batch.dictionary_size(), 0);
    }
}

//! Columnar row batches: the warehouse's in-memory representation.
//!
//! ENTRADA stores joined query rows in columnar form (Parquet); this is
//! the same idea at library scale. A [`ColumnarBatch`] holds each field
//! of [`QueryRow`] in its own dense column, with qnames
//! dictionary-encoded into a shared arena — repeated names (the Zipf
//! head, minimized Q-min names) are stored once. Multi-pass analyses
//! can hold tens of millions of rows this way at a fraction of the
//! row-struct footprint.

use crate::schema::QueryRow;
use asdb::cloud::Provider;
use asdb::registry::Asn;
use dns_wire::name::Name;
use dns_wire::types::{RType, Rcode};
use netbase::flow::Transport;
use netbase::time::SimTime;
use std::collections::HashMap;
use std::net::IpAddr;

/// Provider tag stored per row (one byte): 0 = rest of the Internet,
/// 1..=5 the five paper providers in [`asdb::cloud::ALL_PROVIDERS`]
/// order. Shared with the warehouse's zone maps, which prune
/// partitions on the same tags.
pub fn provider_tag(p: Option<Provider>) -> u8 {
    match p {
        None => 0,
        Some(Provider::Google) => 1,
        Some(Provider::Amazon) => 2,
        Some(Provider::Microsoft) => 3,
        Some(Provider::Facebook) => 4,
        Some(Provider::Cloudflare) => 5,
    }
}

/// Inverse of [`provider_tag`] (unknown tags map to `None`).
pub fn tag_provider(t: u8) -> Option<Provider> {
    match t {
        1 => Some(Provider::Google),
        2 => Some(Provider::Amazon),
        3 => Some(Provider::Microsoft),
        4 => Some(Provider::Facebook),
        5 => Some(Provider::Cloudflare),
        _ => None,
    }
}

/// A dictionary-encoded columnar batch of query rows.
#[derive(Default)]
pub struct ColumnarBatch {
    timestamps: Vec<u64>,
    srcs: Vec<IpAddr>,
    src_ports: Vec<u16>,
    servers: Vec<IpAddr>,
    transports: Vec<u8>, // 0 udp, 1 tcp
    qname_ids: Vec<u32>,
    qtypes: Vec<u16>,
    edns_sizes: Vec<u16>, // u16::MAX sentinel = absent
    flags: Vec<u8>,       // bit0 do, bit1 truncated, bit2 public_dns, bit3 answered
    rcodes: Vec<u16>,
    response_sizes: Vec<u32>,
    tcp_rtts: Vec<u32>,
    asns: Vec<u32>, // 0 sentinel = unattributed
    // qname dictionary: wire-form bytes arena + offsets
    dict_offsets: Vec<(u32, u32)>,
    dict_arena: Vec<u8>,
    dict_index: HashMap<Vec<u8>, u32>,
}

impl ColumnarBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one row.
    pub fn push(&mut self, row: &QueryRow) {
        self.timestamps.push(row.timestamp.as_micros());
        self.srcs.push(row.src);
        self.src_ports.push(row.src_port);
        self.servers.push(row.server);
        self.transports.push(match row.transport {
            Transport::Udp => 0,
            Transport::Tcp => 1,
        });
        let qname_id = self.intern(row.qname.as_wire());
        self.qname_ids.push(qname_id);
        self.qtypes.push(row.qtype.to_u16());
        self.edns_sizes.push(row.edns_size.unwrap_or(u16::MAX));
        let mut flags = 0u8;
        if row.do_bit {
            flags |= 1;
        }
        if row.response_truncated {
            flags |= 2;
        }
        if row.public_dns {
            flags |= 4;
        }
        if row.rcode.is_some() {
            flags |= 8;
        }
        self.flags.push(flags);
        self.rcodes.push(row.rcode.map(Rcode::to_u16).unwrap_or(0));
        self.response_sizes.push(row.response_size.unwrap_or(0));
        self.tcp_rtts.push(row.tcp_rtt_us);
        self.asns.push(row.asn.map(|a| a.0).unwrap_or(0));
    }

    fn intern(&mut self, wire: &[u8]) -> u32 {
        if let Some(&id) = self.dict_index.get(wire) {
            return id;
        }
        let id = self.dict_offsets.len() as u32;
        let start = self.dict_arena.len() as u32;
        self.dict_arena.extend_from_slice(wire);
        self.dict_offsets.push((start, wire.len() as u32));
        self.dict_index.insert(wire.to_vec(), id);
        id
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Distinct qnames in the dictionary.
    pub fn dictionary_size(&self) -> usize {
        self.dict_offsets.len()
    }

    /// Reconstruct row `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn get(&self, i: usize) -> QueryRow {
        let (start, len) = self.dict_offsets[self.qname_ids[i] as usize];
        let wire = &self.dict_arena[start as usize..(start + len) as usize];
        let (qname, _) = Name::parse(wire, 0).expect("dictionary holds valid names");
        let flags = self.flags[i];
        QueryRow {
            timestamp: SimTime(self.timestamps[i]),
            src: self.srcs[i],
            src_port: self.src_ports[i],
            server: self.servers[i],
            transport: if self.transports[i] == 0 {
                Transport::Udp
            } else {
                Transport::Tcp
            },
            qname,
            qtype: RType::from_u16(self.qtypes[i]),
            edns_size: match self.edns_sizes[i] {
                u16::MAX => None,
                v => Some(v),
            },
            do_bit: flags & 1 != 0,
            rcode: if flags & 8 != 0 {
                Some(Rcode::from_u16(self.rcodes[i]))
            } else {
                None
            },
            response_size: match self.response_sizes[i] {
                0 => None,
                v => Some(v),
            },
            response_truncated: flags & 2 != 0,
            tcp_rtt_us: self.tcp_rtts[i],
            asn: match self.asns[i] {
                0 => None,
                v => Some(Asn(v)),
            },
            provider: tag_provider(provider_tag_at(self, i)),
            public_dns: flags & 4 != 0,
        }
    }

    /// Iterate reconstructed rows.
    pub fn iter(&self) -> impl Iterator<Item = QueryRow> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Indices of rows from `provider` (None = the rest of the
    /// Internet) — a columnar predicate scan.
    pub fn filter_provider(&self, provider: Option<Provider>) -> Vec<usize> {
        let tag = provider_tag(provider);
        self.provider_tags()
            .enumerate()
            .filter(|(_, t)| *t == tag)
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-row provider tags (see [`provider_tag`]), derived from the
    /// ASN column — providers are not stored per row.
    pub fn provider_tags(&self) -> impl Iterator<Item = u8> + '_ {
        // providers derive from ASNs: reconstruct via the 20 known ASes
        self.asns.iter().map(|&asn| {
            if asn == 0 {
                return 0;
            }
            for p in asdb::cloud::ALL_PROVIDERS {
                if p.asns().iter().any(|a| a.0 == asn) {
                    return provider_tag(Some(p));
                }
            }
            0
        })
    }

    /// Merge another batch in: columns are appended, the other batch's
    /// dictionary ids are remapped through this batch's dictionary
    /// (shared names stay stored once). Equivalent to pushing the other
    /// batch's rows in order, without reconstructing them.
    pub fn merge(&mut self, other: ColumnarBatch) {
        let remap: Vec<u32> = other
            .dict_offsets
            .iter()
            .map(|&(start, len)| {
                self.intern(&other.dict_arena[start as usize..(start + len) as usize])
            })
            .collect();
        self.qname_ids
            .extend(other.qname_ids.iter().map(|&id| remap[id as usize]));
        self.timestamps.extend(other.timestamps);
        self.srcs.extend(other.srcs);
        self.src_ports.extend(other.src_ports);
        self.servers.extend(other.servers);
        self.transports.extend(other.transports);
        self.qtypes.extend(other.qtypes);
        self.edns_sizes.extend(other.edns_sizes);
        self.flags.extend(other.flags);
        self.rcodes.extend(other.rcodes);
        self.response_sizes.extend(other.response_sizes);
        self.tcp_rtts.extend(other.tcp_rtts);
        self.asns.extend(other.asns);
    }

    /// Heap footprint estimate of the batch, bytes: every column at
    /// `len * size_of::<elem>()` plus the dictionary arena, offsets,
    /// and an estimate for the dictionary hash index. The warehouse
    /// appender flushes partitions when this crosses its byte budget.
    ///
    /// (This supersedes an earlier formula that under-counted by one
    /// `u16` column per row — `rcodes` was missed.)
    pub fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.timestamps.len()
            * (size_of::<u64>()                 // timestamps
                + size_of::<IpAddr>() * 2       // srcs, servers
                + size_of::<u16>() * 4          // src_ports, qtypes, edns_sizes, rcodes
                + size_of::<u8>() * 2           // transports, flags
                + size_of::<u32>() * 4)         // qname_ids, response_sizes, tcp_rtts, asns
            + self.dict_arena.len()
            + self.dict_offsets.len() * size_of::<(u32, u32)>()
            + self.dict_index.len() * 48
    }

    /// Approximate heap footprint of the batch, bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bytes()
    }

    /// Borrowed views of the raw columns, for serialization (the
    /// `warehouse` crate encodes these into partition files).
    pub fn columns(&self) -> ColumnsRef<'_> {
        ColumnsRef {
            timestamps: &self.timestamps,
            srcs: &self.srcs,
            src_ports: &self.src_ports,
            servers: &self.servers,
            transports: &self.transports,
            qname_ids: &self.qname_ids,
            qtypes: &self.qtypes,
            edns_sizes: &self.edns_sizes,
            flags: &self.flags,
            rcodes: &self.rcodes,
            response_sizes: &self.response_sizes,
            tcp_rtts: &self.tcp_rtts,
            asns: &self.asns,
            dict_offsets: &self.dict_offsets,
            dict_arena: &self.dict_arena,
        }
    }

    /// Rebuild a batch from raw columns (the inverse of [`columns`]
    /// after a serialization round trip). Validates column lengths,
    /// dictionary offsets, and qname ids so a decoder bug or corrupt
    /// file surfaces as an error here rather than a panic later.
    ///
    /// [`columns`]: ColumnarBatch::columns
    pub fn from_columns(c: Columns) -> Result<ColumnarBatch, &'static str> {
        let n = c.timestamps.len();
        if [
            c.srcs.len(),
            c.src_ports.len(),
            c.servers.len(),
            c.transports.len(),
            c.qname_ids.len(),
            c.qtypes.len(),
            c.edns_sizes.len(),
            c.flags.len(),
            c.rcodes.len(),
            c.response_sizes.len(),
            c.tcp_rtts.len(),
            c.asns.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err("column lengths disagree");
        }
        for &(start, len) in &c.dict_offsets {
            let end = (start as usize).checked_add(len as usize);
            if end.is_none_or(|e| e > c.dict_arena.len()) {
                return Err("dictionary offset out of arena bounds");
            }
        }
        let dict_len = c.dict_offsets.len() as u32;
        if c.qname_ids.iter().any(|&id| id >= dict_len) {
            return Err("qname id out of dictionary bounds");
        }
        let mut dict_index = HashMap::with_capacity(c.dict_offsets.len());
        for (id, &(start, len)) in c.dict_offsets.iter().enumerate() {
            let wire = c.dict_arena[start as usize..(start + len) as usize].to_vec();
            if Name::parse(&wire, 0).is_err() {
                return Err("dictionary entry is not a valid wire-form name");
            }
            if dict_index.insert(wire, id as u32).is_some() {
                return Err("duplicate dictionary entry");
            }
        }
        Ok(ColumnarBatch {
            timestamps: c.timestamps,
            srcs: c.srcs,
            src_ports: c.src_ports,
            servers: c.servers,
            transports: c.transports,
            qname_ids: c.qname_ids,
            qtypes: c.qtypes,
            edns_sizes: c.edns_sizes,
            flags: c.flags,
            rcodes: c.rcodes,
            response_sizes: c.response_sizes,
            tcp_rtts: c.tcp_rtts,
            asns: c.asns,
            dict_offsets: c.dict_offsets,
            dict_arena: c.dict_arena,
            dict_index,
        })
    }
}

/// Borrowed raw columns of a [`ColumnarBatch`] (see
/// [`ColumnarBatch::columns`]). Field order and sentinels match the
/// batch internals: `edns_sizes` uses `u16::MAX` for absent,
/// `response_sizes` 0 for `None`, `asns` 0 for unattributed, and
/// `flags` packs `do`/`truncated`/`public_dns`/`answered` in bits 0-3.
pub struct ColumnsRef<'a> {
    /// Microseconds since the epoch, one per row.
    pub timestamps: &'a [u64],
    /// Resolver source addresses.
    pub srcs: &'a [IpAddr],
    /// Source ports.
    pub src_ports: &'a [u16],
    /// Authoritative server addresses.
    pub servers: &'a [IpAddr],
    /// 0 = UDP, 1 = TCP.
    pub transports: &'a [u8],
    /// Indexes into `dict_offsets`.
    pub qname_ids: &'a [u32],
    /// Query types as raw u16.
    pub qtypes: &'a [u16],
    /// EDNS sizes (`u16::MAX` = absent).
    pub edns_sizes: &'a [u16],
    /// Packed per-row flag bits.
    pub flags: &'a [u8],
    /// Response codes (valid only when flag bit 3 set).
    pub rcodes: &'a [u16],
    /// Response sizes (0 = unanswered).
    pub response_sizes: &'a [u32],
    /// TCP handshake RTTs, microseconds (0 for UDP).
    pub tcp_rtts: &'a [u32],
    /// Origin AS numbers (0 = unattributed).
    pub asns: &'a [u32],
    /// `(start, len)` spans into `dict_arena`, one per dictionary id.
    pub dict_offsets: &'a [(u32, u32)],
    /// Wire-form qname bytes, concatenated.
    pub dict_arena: &'a [u8],
}

/// Owned raw columns for [`ColumnarBatch::from_columns`]; same layout
/// and sentinels as [`ColumnsRef`].
#[derive(Default)]
pub struct Columns {
    /// Microseconds since the epoch, one per row.
    pub timestamps: Vec<u64>,
    /// Resolver source addresses.
    pub srcs: Vec<IpAddr>,
    /// Source ports.
    pub src_ports: Vec<u16>,
    /// Authoritative server addresses.
    pub servers: Vec<IpAddr>,
    /// 0 = UDP, 1 = TCP.
    pub transports: Vec<u8>,
    /// Indexes into `dict_offsets`.
    pub qname_ids: Vec<u32>,
    /// Query types as raw u16.
    pub qtypes: Vec<u16>,
    /// EDNS sizes (`u16::MAX` = absent).
    pub edns_sizes: Vec<u16>,
    /// Packed per-row flag bits.
    pub flags: Vec<u8>,
    /// Response codes (valid only when flag bit 3 set).
    pub rcodes: Vec<u16>,
    /// Response sizes (0 = unanswered).
    pub response_sizes: Vec<u32>,
    /// TCP handshake RTTs, microseconds (0 for UDP).
    pub tcp_rtts: Vec<u32>,
    /// Origin AS numbers (0 = unattributed).
    pub asns: Vec<u32>,
    /// `(start, len)` spans into `dict_arena`, one per dictionary id.
    pub dict_offsets: Vec<(u32, u32)>,
    /// Wire-form qname bytes, concatenated.
    pub dict_arena: Vec<u8>,
}

fn provider_tag_at(batch: &ColumnarBatch, i: usize) -> u8 {
    let asn = batch.asns[i];
    if asn == 0 {
        return 0;
    }
    for p in asdb::cloud::ALL_PROVIDERS {
        if p.asns().iter().any(|a| a.0 == asn) {
            return provider_tag(Some(p));
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: u64) -> QueryRow {
        QueryRow {
            timestamp: SimTime(1_000_000 + i),
            src: if i.is_multiple_of(3) {
                "8.8.8.8".parse().unwrap()
            } else {
                format!("192.0.2.{}", i % 250).parse().unwrap()
            },
            src_port: 1000 + (i % 60_000) as u16,
            server: "194.0.28.53".parse().unwrap(),
            transport: if i.is_multiple_of(5) {
                Transport::Tcp
            } else {
                Transport::Udp
            },
            // only a few distinct qnames: the dictionary should dedupe
            qname: format!("host{}.example.nl.", i % 7).parse().unwrap(),
            qtype: if i.is_multiple_of(2) {
                RType::A
            } else {
                RType::Ns
            },
            edns_size: if i.is_multiple_of(4) {
                None
            } else {
                Some(1232)
            },
            do_bit: i.is_multiple_of(2),
            rcode: if i.is_multiple_of(9) {
                None
            } else {
                Some(Rcode::NoError)
            },
            response_size: if i.is_multiple_of(9) {
                None
            } else {
                Some(100 + i as u32)
            },
            response_truncated: i.is_multiple_of(11),
            tcp_rtt_us: if i.is_multiple_of(5) { 20_000 } else { 0 },
            asn: if i.is_multiple_of(3) {
                Some(Asn(15169))
            } else {
                Some(Asn(64512))
            },
            provider: if i.is_multiple_of(3) {
                Some(Provider::Google)
            } else {
                None
            },
            public_dns: i.is_multiple_of(3),
        }
    }

    #[test]
    fn roundtrip_exact() {
        let mut batch = ColumnarBatch::new();
        let rows: Vec<QueryRow> = (0..500).map(row).collect();
        for r in &rows {
            batch.push(r);
        }
        assert_eq!(batch.len(), 500);
        for (i, orig) in rows.iter().enumerate() {
            let got = batch.get(i);
            assert_eq!(got.timestamp, orig.timestamp);
            assert_eq!(got.src, orig.src);
            assert_eq!(got.qname, orig.qname);
            assert_eq!(got.qtype, orig.qtype);
            assert_eq!(got.edns_size, orig.edns_size);
            assert_eq!(got.do_bit, orig.do_bit);
            assert_eq!(got.rcode, orig.rcode);
            assert_eq!(got.response_size, orig.response_size);
            assert_eq!(got.response_truncated, orig.response_truncated);
            assert_eq!(got.tcp_rtt_us, orig.tcp_rtt_us);
            assert_eq!(got.asn, orig.asn);
            assert_eq!(got.provider, orig.provider);
            assert_eq!(got.public_dns, orig.public_dns);
            assert_eq!(got.transport, orig.transport);
        }
    }

    #[test]
    fn dictionary_dedupes_qnames() {
        let mut batch = ColumnarBatch::new();
        for i in 0..10_000 {
            batch.push(&row(i));
        }
        assert_eq!(batch.dictionary_size(), 7, "7 distinct names interned once");
        // far below a row-struct representation (Name alone is ~20B heap
        // per row, plus Vec overheads)
        let per_row = batch.memory_bytes() / batch.len();
        assert!(per_row < 120, "columnar footprint {per_row} B/row");
    }

    #[test]
    fn provider_filter_scans_columns() {
        let mut batch = ColumnarBatch::new();
        for i in 0..300 {
            batch.push(&row(i));
        }
        let google = batch.filter_provider(Some(Provider::Google));
        assert_eq!(google.len(), 100);
        for &i in &google {
            assert_eq!(batch.get(i).provider, Some(Provider::Google));
        }
        let other = batch.filter_provider(None);
        assert_eq!(other.len(), 200);
    }

    #[test]
    fn iter_matches_get() {
        let mut batch = ColumnarBatch::new();
        for i in 0..50 {
            batch.push(&row(i));
        }
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(r.qname, batch.get(i).qname);
        }
        assert_eq!(batch.iter().count(), 50);
    }

    #[test]
    fn merge_equals_serial_pushes() {
        let mut serial = ColumnarBatch::new();
        let mut left = ColumnarBatch::new();
        let mut right = ColumnarBatch::new();
        for i in 0..400 {
            let r = row(i);
            serial.push(&r);
            if i < 150 {
                left.push(&r);
            } else {
                right.push(&r);
            }
        }
        left.merge(right);
        assert_eq!(left.len(), serial.len());
        assert_eq!(left.dictionary_size(), serial.dictionary_size());
        for i in 0..serial.len() {
            assert_eq!(left.get(i), serial.get(i));
        }
    }

    #[test]
    fn bytes_counts_every_column() {
        use std::mem::size_of;
        let mut batch = ColumnarBatch::new();
        for i in 0..1_000 {
            batch.push(&row(i));
        }
        // fixed-width per-row footprint: every column, including all
        // four u16 columns (the old formula missed `rcodes`)
        let per_row = size_of::<u64>()
            + size_of::<IpAddr>() * 2
            + size_of::<u16>() * 4
            + size_of::<u8>() * 2
            + size_of::<u32>() * 4;
        assert!(batch.bytes() >= batch.len() * per_row);
        assert_eq!(batch.bytes(), batch.memory_bytes());
    }

    #[test]
    fn columns_roundtrip() {
        let mut batch = ColumnarBatch::new();
        for i in 0..300 {
            batch.push(&row(i));
        }
        let c = batch.columns();
        let rebuilt = ColumnarBatch::from_columns(Columns {
            timestamps: c.timestamps.to_vec(),
            srcs: c.srcs.to_vec(),
            src_ports: c.src_ports.to_vec(),
            servers: c.servers.to_vec(),
            transports: c.transports.to_vec(),
            qname_ids: c.qname_ids.to_vec(),
            qtypes: c.qtypes.to_vec(),
            edns_sizes: c.edns_sizes.to_vec(),
            flags: c.flags.to_vec(),
            rcodes: c.rcodes.to_vec(),
            response_sizes: c.response_sizes.to_vec(),
            tcp_rtts: c.tcp_rtts.to_vec(),
            asns: c.asns.to_vec(),
            dict_offsets: c.dict_offsets.to_vec(),
            dict_arena: c.dict_arena.to_vec(),
        })
        .expect("valid columns");
        assert_eq!(rebuilt.len(), batch.len());
        assert_eq!(rebuilt.dictionary_size(), batch.dictionary_size());
        for i in 0..batch.len() {
            assert_eq!(rebuilt.get(i), batch.get(i));
        }
        // the rebuilt dictionary index keeps interning shared names
        let mut extended = rebuilt;
        extended.push(&row(3));
        assert_eq!(extended.dictionary_size(), batch.dictionary_size());
    }

    #[test]
    fn from_columns_rejects_malformed() {
        let mut batch = ColumnarBatch::new();
        batch.push(&row(1));
        let c = batch.columns();
        let mut cols = Columns {
            timestamps: c.timestamps.to_vec(),
            srcs: c.srcs.to_vec(),
            src_ports: c.src_ports.to_vec(),
            servers: c.servers.to_vec(),
            transports: c.transports.to_vec(),
            qname_ids: c.qname_ids.to_vec(),
            qtypes: c.qtypes.to_vec(),
            edns_sizes: c.edns_sizes.to_vec(),
            flags: c.flags.to_vec(),
            rcodes: c.rcodes.to_vec(),
            response_sizes: c.response_sizes.to_vec(),
            tcp_rtts: c.tcp_rtts.to_vec(),
            asns: c.asns.to_vec(),
            dict_offsets: c.dict_offsets.to_vec(),
            dict_arena: c.dict_arena.to_vec(),
        };
        cols.qtypes.pop();
        assert!(ColumnarBatch::from_columns(cols).is_err(), "length skew");

        let mut bad_ids = Columns {
            timestamps: vec![0],
            srcs: vec!["192.0.2.1".parse().unwrap()],
            src_ports: vec![1],
            servers: vec!["192.0.2.2".parse().unwrap()],
            transports: vec![0],
            qname_ids: vec![7],
            qtypes: vec![1],
            edns_sizes: vec![u16::MAX],
            flags: vec![0],
            rcodes: vec![0],
            response_sizes: vec![0],
            tcp_rtts: vec![0],
            asns: vec![0],
            dict_offsets: vec![],
            dict_arena: vec![],
        };
        assert!(
            ColumnarBatch::from_columns(std::mem::take(&mut bad_ids)).is_err(),
            "qname id out of range"
        );
    }

    #[test]
    fn empty_batch() {
        let batch = ColumnarBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.iter().count(), 0);
        assert_eq!(batch.dictionary_size(), 0);
    }
}

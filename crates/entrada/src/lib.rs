//! A streaming DNS analytics warehouse — the workspace's equivalent of
//! ENTRADA (Wullink et al., NOMS 2016), the platform both ccTLD
//! operators ran for the paper.
//!
//! The pipeline is: `.dnscap` frames → wire-format parse →
//! query/response **join** (transaction matching on flow + DNS id) →
//! **enrichment** (AS, cloud provider, public-DNS classification,
//! address family, EDNS attributes) → a stream of [`QueryRow`]s that
//! analyses aggregate with the primitives in [`agg`] (counters,
//! distinct counting both exact and sketched, CDFs, top-k).
//!
//! Malformed frames are counted and skipped, never fatal — a passive
//! pipeline must survive anything the network throws at it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agg;
pub mod enrich;
pub mod ingest;
pub mod schema;
pub mod table;

pub use agg::{Cdf, Counter, DistinctCounter, HyperLogLog, SpaceSaving, TopK};
pub use enrich::Enricher;
pub use ingest::{CaptureIngest, IngestStats};
pub use schema::QueryRow;
pub use table::ColumnarBatch;

//! The enriched per-query row every analysis consumes.

use asdb::cloud::Provider;
use asdb::registry::Asn;
use dns_wire::name::Name;
use dns_wire::types::{RType, Rcode};
use netbase::flow::{IpVersion, Transport};
use netbase::time::SimTime;
use std::net::IpAddr;

/// One query as observed at an authoritative server, joined with its
/// response and enriched — the logical schema of the ENTRADA warehouse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRow {
    /// Query arrival time.
    pub timestamp: SimTime,
    /// Resolver (source) address.
    pub src: IpAddr,
    /// Source port.
    pub src_port: u16,
    /// The authoritative server address that received the query.
    pub server: IpAddr,
    /// UDP or TCP.
    pub transport: Transport,
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RType,
    /// EDNS(0) advertised UDP size, if present on the query.
    pub edns_size: Option<u16>,
    /// DNSSEC-OK bit.
    pub do_bit: bool,
    /// Response code from the joined response; `None` if unanswered.
    pub rcode: Option<Rcode>,
    /// Joined response size in octets.
    pub response_size: Option<u32>,
    /// The joined response carried the TC bit.
    pub response_truncated: bool,
    /// TCP handshake RTT measured by the capture box (0 for UDP).
    pub tcp_rtt_us: u32,
    /// Origin AS of the source address.
    pub asn: Option<Asn>,
    /// Cloud provider owning that AS, if any.
    pub provider: Option<Provider>,
    /// Source address falls in an advertised public-DNS range.
    pub public_dns: bool,
}

impl QueryRow {
    /// Address family of the source.
    pub fn ip_version(&self) -> IpVersion {
        IpVersion::of(self.src)
    }

    /// The paper's §3 junk test: non-NOERROR (unanswered queries are
    /// not classifiable and excluded by convention).
    pub fn is_junk(&self) -> bool {
        matches!(self.rcode, Some(rc) if rc.is_junk())
    }

    /// Valid = answered NOERROR (Table 3's "Queries (valid)").
    pub fn is_valid(&self) -> bool {
        matches!(self.rcode, Some(rc) if !rc.is_junk())
    }

    /// Year/month bucket for longitudinal series (Figure 3).
    pub fn year_month(&self) -> (i32, u32) {
        self.timestamp.year_month()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(rcode: Option<Rcode>) -> QueryRow {
        QueryRow {
            timestamp: SimTime::from_date(2020, 4, 7),
            src: "8.8.8.8".parse().unwrap(),
            src_port: 4242,
            server: "194.0.28.53".parse().unwrap(),
            transport: Transport::Udp,
            qname: "example.nl.".parse().unwrap(),
            qtype: RType::A,
            edns_size: Some(1232),
            do_bit: true,
            rcode,
            response_size: Some(100),
            response_truncated: false,
            tcp_rtt_us: 0,
            asn: None,
            provider: None,
            public_dns: true,
        }
    }

    #[test]
    fn junk_classification() {
        assert!(!row(Some(Rcode::NoError)).is_junk());
        assert!(row(Some(Rcode::NoError)).is_valid());
        assert!(row(Some(Rcode::NxDomain)).is_junk());
        assert!(!row(Some(Rcode::NxDomain)).is_valid());
        assert!(!row(None).is_junk(), "unanswered is not junk");
        assert!(!row(None).is_valid(), "unanswered is not valid either");
    }

    #[test]
    fn derived_fields() {
        let r = row(Some(Rcode::NoError));
        assert_eq!(r.ip_version(), IpVersion::V4);
        assert_eq!(r.year_month(), (2020, 4));
    }
}

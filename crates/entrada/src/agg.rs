//! Aggregation primitives: counters, distinct counting (exact and
//! HyperLogLog), CDFs and top-k — the operators behind every table and
//! figure in the paper.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// A grouped counter: `K -> u64` with ratio helpers.
#[derive(Debug, Clone)]
pub struct Counter<K: Eq + Hash> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash> Default for Counter<K> {
    fn default() -> Self {
        Counter {
            counts: HashMap::new(),
            total: 0,
        }
    }
}

impl<K: Eq + Hash> Counter<K> {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to `key`.
    pub fn add(&mut self, key: K, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Increment `key` by one.
    pub fn incr(&mut self, key: K) {
        self.add(key, 1);
    }

    /// Count for `key` (0 when absent).
    pub fn get<Q>(&self, key: &Q) -> u64
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Sum over all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `count(key) / total`, or 0 on an empty counter.
    pub fn ratio<Q>(&self, key: &Q) -> f64
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        if self.total == 0 {
            0.0
        } else {
            self.get(key) as f64 / self.total as f64
        }
    }

    /// Number of distinct keys.
    pub fn keys(&self) -> usize {
        self.counts.len()
    }

    /// Iterate `(key, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// Merge another counter in.
    pub fn merge(&mut self, other: Counter<K>) {
        for (k, v) in other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        self.total += other.total;
    }
}

impl<K: Eq + Hash + Clone + Ord> Counter<K> {
    /// The `k` heaviest keys, descending, ties broken by key order.
    pub fn top_k(&self, k: usize) -> Vec<(K, u64)> {
        let mut all: Vec<(K, u64)> = self.counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

/// Exact distinct counting (a `HashSet` under the hood) — the reference
/// for the HyperLogLog ablation.
#[derive(Debug, Clone)]
pub struct DistinctCounter<K: Eq + Hash> {
    seen: HashSet<K>,
}

impl<K: Eq + Hash> Default for DistinctCounter<K> {
    fn default() -> Self {
        DistinctCounter {
            seen: HashSet::new(),
        }
    }
}

impl<K: Eq + Hash> DistinctCounter<K> {
    /// Empty counter.
    pub fn new() -> Self {
        DistinctCounter {
            seen: HashSet::new(),
        }
    }

    /// Observe a value; returns true the first time.
    pub fn observe(&mut self, key: K) -> bool {
        self.seen.insert(key)
    }

    /// Distinct values observed.
    pub fn count(&self) -> u64 {
        self.seen.len() as u64
    }

    /// Membership check.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.seen.contains(key)
    }

    /// Merge another counter in (set union).
    pub fn merge(&mut self, other: DistinctCounter<K>) {
        if self.seen.len() < other.seen.len() {
            let mut bigger = other.seen;
            bigger.extend(self.seen.drain());
            self.seen = bigger;
        } else {
            self.seen.extend(other.seen);
        }
    }
}

/// HyperLogLog with 2^P registers: constant-memory distinct counting,
/// ~1.04/sqrt(2^P) relative error. P=12 ⇒ 4096 registers, ~1.6% error —
/// the sketch a production warehouse would use for the paper's
/// millions-of-resolvers counts (Table 3).
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    p: u8,
}

impl Default for HyperLogLog {
    fn default() -> Self {
        HyperLogLog::new(12)
    }
}

impl HyperLogLog {
    /// Build with 2^p registers (4 ≤ p ≤ 16).
    pub fn new(p: u8) -> Self {
        assert!((4..=16).contains(&p), "p out of range");
        HyperLogLog {
            registers: vec![0; 1 << p],
            p,
        }
    }

    /// Observe a hashable value.
    pub fn observe<T: Hash>(&mut self, value: &T) {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        value.hash(&mut hasher);
        let h = hasher.finish();
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        let rank = (rest.leading_zeros() as u8 + 1).min(64 - self.p + 1);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimate the distinct count.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // small-range correction (linear counting)
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros != 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merge another sketch (register-wise max).
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "precision mismatch");
        for (a, b) in self.registers.iter_mut().zip(other.registers.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Memory used by the registers, bytes.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }
}

/// An empirical CDF over integer samples (Figure 6's EDNS sizes).
///
/// Samples are kept unsorted; every read is a pure `&self` function of
/// the sample *multiset* (a linear count, or an order statistic via
/// select-nth on a scratch copy), so report renderers can share one
/// aggregate immutably and merged partials answer identically to a
/// serially-built CDF regardless of insertion order.
#[derive(Debug, Default, Clone)]
pub struct Cdf {
    samples: Vec<u64>,
}

impl Cdf {
    /// Empty CDF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn add(&mut self, v: u64) {
        self.samples.push(v);
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// P(X ≤ x).
    pub fn fraction_at_most(&self, x: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let at_most = self.samples.iter().filter(|&&s| s <= x).count();
        at_most as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), nearest-rank:
    /// `x_(⌈q·n⌉)` with 1-based ranks.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(!self.samples.is_empty(), "quantile of empty CDF");
        let n = self.samples.len();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        let mut scratch = self.samples.clone();
        let (_, nth, _) = scratch.select_nth_unstable(rank - 1);
        *nth
    }

    /// Median, nearest-rank.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Evaluate the CDF at each point, for plotting/reporting.
    pub fn curve(&self, points: &[u64]) -> Vec<(u64, f64)> {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        points
            .iter()
            .map(|&x| {
                let frac = if sorted.is_empty() {
                    0.0
                } else {
                    sorted.partition_point(|&s| s <= x) as f64 / sorted.len() as f64
                };
                (x, frac)
            })
            .collect()
    }

    /// Merge another CDF in (sample multiset union).
    pub fn merge(&mut self, other: Cdf) {
        self.samples.extend(other.samples);
    }
}

/// Convenience alias: heaviest-hitters over a counter.
pub type TopK<K> = Vec<(K, u64)>;

/// The Space-Saving heavy-hitters sketch (Metwally et al. 2005):
/// bounded-memory top-k over an unbounded stream — what a warehouse
/// would use for the per-AS volume ranking when the key space (tens of
/// thousands of ASes, millions of resolvers) exceeds memory comfort.
///
/// Guarantee: any key whose true count exceeds `N / capacity` is
/// present, and each reported count overestimates the true count by at
/// most the smallest monitored count.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Eq + Hash + Clone> {
    capacity: usize,
    counts: HashMap<K, (u64, u64)>, // key -> (count, overestimation)
    total: u64,
}

impl<K: Eq + Hash + Clone> SpaceSaving<K> {
    /// Monitor at most `capacity` keys.
    ///
    /// # Panics
    /// If `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSaving {
            capacity,
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Observe one occurrence of `key`.
    pub fn observe(&mut self, key: K) {
        self.total += 1;
        if let Some(entry) = self.counts.get_mut(&key) {
            entry.0 += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(key, (1, 0));
            return;
        }
        // evict the minimum and inherit its count as overestimation
        let (victim, min) = self
            .counts
            .iter()
            .min_by_key(|(_, (c, _))| *c)
            .map(|(k, (c, _))| (k.clone(), *c))
            .expect("capacity > 0");
        self.counts.remove(&victim);
        self.counts.insert(key, (min + 1, min));
    }

    /// Total stream length observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The monitored keys, by estimated count descending. Each entry is
    /// `(key, estimate, overestimation_bound)`; the true count lies in
    /// `[estimate - bound, estimate]`.
    pub fn top(&self, k: usize) -> Vec<(K, u64, u64)> {
        let mut all: Vec<(K, u64, u64)> = self
            .counts
            .iter()
            .map(|(key, (c, e))| (key.clone(), *c, *e))
            .collect();
        all.sort_by_key(|e| std::cmp::Reverse(e.1));
        all.truncate(k);
        all
    }

    /// Memory bound: number of monitored entries.
    pub fn monitored(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr("a");
        c.incr("a");
        c.add("b", 3);
        assert_eq!(c.get("a"), 2);
        assert_eq!(c.get("b"), 3);
        assert_eq!(c.get("zzz"), 0);
        assert_eq!(c.total(), 5);
        assert!((c.ratio("a") - 0.4).abs() < 1e-12);
        assert_eq!(c.keys(), 2);
    }

    #[test]
    fn counter_merge_and_topk() {
        let mut a = Counter::new();
        a.add("x", 5);
        a.add("y", 1);
        let mut b = Counter::new();
        b.add("y", 10);
        b.add("z", 3);
        a.merge(b);
        assert_eq!(a.total(), 19);
        assert_eq!(a.top_k(2), vec![("y", 11), ("x", 5)]);
        assert_eq!(a.top_k(10).len(), 3);
    }

    #[test]
    fn topk_tie_break_is_deterministic() {
        let mut c = Counter::new();
        c.add("b", 2);
        c.add("a", 2);
        assert_eq!(c.top_k(2), vec![("a", 2), ("b", 2)]);
    }

    #[test]
    fn empty_counter_ratio_is_zero() {
        let c: Counter<&str> = Counter::new();
        assert_eq!(c.ratio("a"), 0.0);
    }

    #[test]
    fn distinct_counter() {
        let mut d = DistinctCounter::new();
        assert!(d.observe("1.2.3.4"));
        assert!(!d.observe("1.2.3.4"));
        assert!(d.observe("1.2.3.5"));
        assert_eq!(d.count(), 2);
        assert!(d.contains("1.2.3.4"));
    }

    #[test]
    fn hll_accuracy_within_bounds() {
        let mut hll = HyperLogLog::new(12);
        let n = 100_000u64;
        for i in 0..n {
            hll.observe(&i);
        }
        let est = hll.estimate();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.05, "error {err} (est {est})");
    }

    #[test]
    fn hll_small_range_is_nearly_exact() {
        let mut hll = HyperLogLog::new(12);
        for i in 0..50u64 {
            hll.observe(&i);
        }
        let est = hll.estimate();
        assert!((est - 50.0).abs() < 5.0, "est {est}");
    }

    #[test]
    fn hll_merge_equals_union() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        let mut union = HyperLogLog::new(10);
        for i in 0..5000u64 {
            a.observe(&i);
            union.observe(&i);
        }
        for i in 2500..7500u64 {
            b.observe(&i);
            union.observe(&i);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), union.estimate());
    }

    #[test]
    fn hll_duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(12);
        for _ in 0..10_000 {
            hll.observe(&"same");
        }
        assert!(hll.estimate() < 3.0);
    }

    #[test]
    fn hll_memory_is_constant() {
        assert_eq!(HyperLogLog::new(12).memory_bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn hll_merge_precision_mismatch_panics() {
        HyperLogLog::new(10).merge(&HyperLogLog::new(12));
    }

    #[test]
    fn space_saving_exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for _ in 0..5 {
            ss.observe("a");
        }
        for _ in 0..3 {
            ss.observe("b");
        }
        let top = ss.top(10);
        assert_eq!(top[0], ("a", 5, 0));
        assert_eq!(top[1], ("b", 3, 0));
        assert_eq!(ss.total(), 8);
    }

    #[test]
    fn space_saving_finds_heavy_hitters_under_pressure() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut ss = SpaceSaving::new(32);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        // two heavy keys inside a sea of 10k light ones
        for _ in 0..100_000 {
            let key = if rng.gen_bool(0.30) {
                7
            } else if rng.gen_bool(0.20) {
                13
            } else {
                1000 + rng.gen_range(0..10_000u32)
            };
            ss.observe(key);
            *truth.entry(key).or_insert(0) += 1;
        }
        assert_eq!(ss.monitored(), 32, "memory bounded");
        let top = ss.top(2);
        let keys: Vec<u32> = top.iter().map(|(k, _, _)| *k).collect();
        assert!(keys.contains(&7) && keys.contains(&13), "{keys:?}");
        // estimates bracket the truth
        for (k, est, over) in top {
            let t = truth[&k];
            assert!(est >= t, "estimate is an upper bound");
            assert!(est - over <= t, "lower bound holds");
        }
    }

    #[test]
    fn space_saving_guarantee_threshold() {
        // any key above total/capacity must be monitored
        let mut ss = SpaceSaving::new(10);
        for i in 0..1000u32 {
            ss.observe(i % 100); // uniform: each key = 10 = total/capacity boundary
        }
        // now hammer one key well past the threshold
        for _ in 0..500 {
            ss.observe(42);
        }
        assert!(ss.top(10).iter().any(|(k, _, _)| *k == 42));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn space_saving_zero_capacity_panics() {
        SpaceSaving::<u32>::new(0);
    }

    #[test]
    fn cdf_fractions_and_quantiles() {
        let mut cdf = Cdf::new();
        for v in [512u64, 512, 512, 1232, 1232, 4096, 4096, 4096, 4096, 4096] {
            cdf.add(v);
        }
        assert!((cdf.fraction_at_most(512) - 0.3).abs() < 1e-12);
        assert!((cdf.fraction_at_most(1232) - 0.5).abs() < 1e-12);
        assert!((cdf.fraction_at_most(4095) - 0.5).abs() < 1e-12);
        assert!((cdf.fraction_at_most(4096) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_at_most(100), 0.0);
        assert_eq!(cdf.median(), 1232);
        assert_eq!(cdf.quantile(0.0), 512);
        assert_eq!(cdf.quantile(1.0), 4096);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut cdf = Cdf::new();
        for i in 0..1000u64 {
            cdf.add(i * 7 % 501);
        }
        let curve = cdf.curve(&[0, 100, 200, 300, 400, 500, 600]);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "CDF must be monotone");
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_interleaved_add_and_query() {
        let mut cdf = Cdf::new();
        cdf.add(10);
        assert_eq!(cdf.fraction_at_most(10), 1.0);
        cdf.add(20);
        assert_eq!(cdf.fraction_at_most(10), 0.5, "reads see later adds");
    }

    #[test]
    fn cdf_merge_equals_serial_build() {
        let mut serial = Cdf::new();
        let mut left = Cdf::new();
        let mut right = Cdf::new();
        for i in 0..500u64 {
            let v = i * 13 % 97;
            serial.add(v);
            if i % 2 == 0 {
                left.add(v);
            } else {
                right.add(v);
            }
        }
        left.merge(right);
        assert_eq!(left.len(), serial.len());
        assert_eq!(left.median(), serial.median());
        assert_eq!(left.quantile(0.99), serial.quantile(0.99));
        assert_eq!(
            left.curve(&[0, 25, 50, 75, 100]),
            serial.curve(&[0, 25, 50, 75, 100])
        );
    }

    #[test]
    fn distinct_counter_merge_is_union() {
        let mut a = DistinctCounter::new();
        let mut b = DistinctCounter::new();
        for i in 0..10u32 {
            a.observe(i);
        }
        for i in 5..15u32 {
            b.observe(i);
        }
        a.merge(b);
        assert_eq!(a.count(), 15);
        assert!(a.contains(&14));
    }

    #[test]
    #[should_panic(expected = "quantile of empty")]
    fn empty_quantile_panics() {
        Cdf::new().quantile(0.5);
    }
}

//! Source-address enrichment: AS, provider, public-DNS classification.

use asdb::cloud::Provider;
use asdb::mapping::AsMapper;
use asdb::registry::Asn;
use std::net::IpAddr;

/// Wraps the IP→AS mapper with a small LRU-free memo (source addresses
/// repeat heavily, so memoizing the LPM walk is a large win; the memo
/// is unbounded but capped by the resolver population).
pub struct Enricher {
    mapper: AsMapper,
    memo: std::collections::HashMap<IpAddr, (Option<Asn>, Option<Provider>, bool)>,
}

impl Enricher {
    /// Build around a mapper (usually from the dataset's address plan).
    pub fn new(mapper: AsMapper) -> Self {
        Enricher {
            mapper,
            memo: std::collections::HashMap::new(),
        }
    }

    /// Resolve `(asn, provider, is_public_dns)` for a source address.
    pub fn enrich(&mut self, ip: IpAddr) -> (Option<Asn>, Option<Provider>, bool) {
        if let Some(hit) = self.memo.get(&ip) {
            return *hit;
        }
        let asn = self.mapper.asn_of(ip);
        let provider = self.mapper.provider_of(ip);
        let public = self.mapper.is_public_dns(ip);
        let out = (asn, provider, public);
        self.memo.insert(ip, out);
        out
    }

    /// The wrapped mapper.
    pub fn mapper(&self) -> &AsMapper {
        &self.mapper
    }

    /// Memoized address count (≈ distinct resolvers seen).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb::synth::{InternetPlan, PlanConfig};

    #[test]
    fn enrichment_matches_mapper_and_memoizes() {
        let plan = InternetPlan::build(&PlanConfig {
            other_as_count: 50,
            isp_fraction: 0.5,
            v6_fraction: 0.3,
            seed: 3,
        });
        let mut e = Enricher::new(plan.mapper);
        let google: IpAddr = "8.8.8.8".parse().unwrap();
        let (asn, provider, public) = e.enrich(google);
        assert_eq!(asn, Some(Asn(15169)));
        assert_eq!(provider, Some(Provider::Google));
        assert!(public);
        assert_eq!(e.memo_len(), 1);
        // second hit comes from the memo and agrees
        assert_eq!(e.enrich(google), (asn, provider, public));
        assert_eq!(e.memo_len(), 1);
        // unknown space
        let (a2, p2, pub2) = e.enrich("203.0.113.7".parse().unwrap());
        assert_eq!(a2, None);
        assert_eq!(p2, None);
        assert!(!pub2);
        assert_eq!(e.memo_len(), 2);
    }
}

//! `dnscentral` — the command-line front end of the IMC'20 reproduction.
//!
//! ```text
//! dnscentral table1                      # Table 1 (static ground truth)
//! dnscentral generate nl 2020 out.dnscap # synthesize one dataset capture
//! dnscentral analyze  nl 2020 out.dnscap # analyze a capture
//! dnscentral dataset  nl 2020            # generate + analyze in one go
//! dnscentral ingest   nl 2020 --warehouse=wh  # ...into a columnar store
//! dnscentral qmin     nl                 # Figure 3 series + change-point
//! dnscentral report                      # every table and figure
//! dnscentral report --warehouse=wh       # the same, from stored partitions
//! dnscentral serve    nl 2020            # live authoritative on real sockets
//! dnscentral loadgen  nl 2020 --udp A --tcp B  # profile-driven load
//! dnscentral live     nl 2020 out.dnscap # serve+loadgen over loopback,
//!                                        # then analyze the live tap
//! dnscentral bench    --quick --json     # perf scenarios -> BENCH_*.json
//! dnscentral help                        # full command and flag list
//! ```
//!
//! Common flags: `--scale=tiny|small|report` (default small),
//! `--seed=N` (default 42), `--shards=N` (generator threads), and
//! `--jobs=N` (analysis workers per dataset, and datasets in flight for
//! the multi-dataset commands — output is byte-identical for any
//! value). Value-taking flags accept both `--flag=value` and
//! `--flag value`.
//!
//! Observability flags (any command): `--stats` prints a per-stage
//! time/throughput table (and enables progress lines on long runs),
//! `--trace out.json` writes a Chrome trace-event JSONL of the run, and
//! `--metrics-addr ip:port` serves live Prometheus metrics over HTTP
//! (most useful with `serve` and `live`). `serve` and `live` print
//! periodic stats lines every `--stats-interval` (default 5s).
//! `--flight out.jsonl` runs the flight recorder (a background sampler
//! of every metric, dumped as JSONL and served at `/flight.json`),
//! `--sample N` traces 1-in-N queries across pipeline hops, and
//! `--explain` prints warehouse scan plans + a decode profile.
//!
//! The command table ([`COMMANDS`]) and flag tables ([`VALUE_FLAGS`],
//! [`BOOL_FLAGS`]) are the single source for arg normalization, the
//! usage line, and `help` — they cannot drift apart.

use dnscentral_core::dualstack::DualStackAnalysis;
use dnscentral_core::experiments::{analyze_capture, generate_capture_sharded};
use dnscentral_core::pipeline::{run_spec_with, PipelineOpts};
use dnscentral_core::{ednssize, junk, metrics, qmin, report, store, transport};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};
use std::net::IpAddr;
use std::path::Path;
use std::process::ExitCode;
use warehouse::Warehouse;

/// Counting global allocator: makes allocations a measured quantity, so
/// `dnscentral bench` reports allocs/op next to ns/op (see `obs::alloc`;
/// the per-event overhead is a few relaxed atomic adds).
#[global_allocator]
static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc;

/// Every command: `(name, argument synopsis, one-line description)`.
const COMMANDS: &[(&str, &str, &str)] = &[
    (
        "table1",
        "",
        "Table 1: the static cloud-provider ground truth",
    ),
    (
        "generate",
        "<nl|nz|broot> <year> <out.dnscap>",
        "synthesize one dataset capture",
    ),
    (
        "analyze",
        "<nl|nz|broot> <year> <capture.dnscap>",
        "analyze a capture",
    ),
    (
        "dataset",
        "<nl|nz|broot> <year>",
        "generate + analyze in one go (--json for machine output)",
    ),
    (
        "ingest",
        "<nl|nz|broot> [year]",
        "generate + analyze into a --warehouse dir (--monthly: Figure 3 series)",
    ),
    (
        "qmin",
        "[nl|nz|broot]",
        "Figure 3 monthly series + change-point detection",
    ),
    ("report", "", "every table and figure of the paper"),
    (
        "inspect",
        "<capture.dnscap>",
        "capture forensics without the scenario",
    ),
    (
        "export-pcap",
        "<in.dnscap> <out.pcap>",
        "convert a capture to libpcap for tcpdump/Wireshark",
    ),
    (
        "import-pcap",
        "<in.pcap> <out.dnscap>",
        "bring externally captured DNS traffic into the pipeline",
    ),
    (
        "analyze-pcap",
        "<in.pcap>",
        "analyze a raw pcap against the real provider ranges",
    ),
    (
        "concentration",
        "",
        "CR1/CR10/CR100, HHI, and Gini concentration indices",
    ),
    ("junk-overview", "", "B-Root valid-traffic share, 2018-2020"),
    ("experiments", "", "measured-vs-paper comparison table"),
    (
        "scenario-template",
        "<nl|nz|broot> <year>",
        "dump an editable scenario JSON",
    ),
    ("scenario", "<scenario.json>", "run a custom scenario file"),
    (
        "serve",
        "<nl|nz|broot> <year>",
        "live authoritative DNS on real sockets",
    ),
    (
        "loadgen",
        "<nl|nz|broot> <year> --udp A --tcp B",
        "closed-loop load against a running server",
    ),
    (
        "live",
        "<nl|nz|broot> <year> [out.dnscap]",
        "serve + loadgen over loopback, then analyze the tap",
    ),
    (
        "bench",
        "[--quick] [--filter=S] [--json[=path]] [--baseline=B]",
        "run the perf scenarios; write BENCH_*.json; gate on a baseline",
    ),
    ("help", "", "print this command and flag reference"),
];

/// Every value-taking flag: `(name, value synopsis, description)`.
/// Drives arg normalization (`--flag value` -> `--flag=value`) and
/// `help`.
const VALUE_FLAGS: &[(&str, &str, &str)] = &[
    (
        "--scale",
        "tiny|small|medium|report",
        "dataset scale (default small)",
    ),
    ("--seed", "N", "deterministic RNG seed (default 42)"),
    (
        "--shards",
        "N",
        "generator/pipeline worker threads (default 1)",
    ),
    (
        "--jobs",
        "N",
        "analysis workers per dataset and datasets in flight (default 1)",
    ),
    (
        "--zone",
        "nl|nz|root",
        "analyze-pcap: zone model (default root)",
    ),
    (
        "--provider",
        "google|amazon|microsoft|facebook|cloudflare",
        "qmin: provider to track (default google)",
    ),
    (
        "--duration",
        "3s|500ms|2m",
        "serve/loadgen/live: stop after this long",
    ),
    ("--queries", "N", "loadgen/live: stop after N queries"),
    (
        "--resolvers",
        "N",
        "loadgen/live: drive N algorithmic resolver instances (fleet mode) \
         instead of the calibrated replay",
    ),
    ("--port", "N", "serve: fixed port (default ephemeral)"),
    ("--workers", "N", "loadgen/live: load worker threads"),
    (
        "--udp-workers",
        "N",
        "serve/live: UDP worker threads (socket shards)",
    ),
    ("--tcp-workers", "N", "serve/live: TCP worker threads"),
    ("--udp", "host:port", "loadgen: server UDP address"),
    ("--tcp", "host:port", "loadgen: server TCP address"),
    (
        "--out",
        "tap.dnscap",
        "serve: mirror served traffic into a capture",
    ),
    (
        "--stats-interval",
        "5s",
        "serve/live: interval between periodic stats lines (default 5s)",
    ),
    (
        "--trace",
        "out.json",
        "write a Chrome trace-event JSONL of the run",
    ),
    (
        "--metrics-addr",
        "ip:port",
        "serve live Prometheus metrics over HTTP",
    ),
    (
        "--warehouse",
        "dir",
        "columnar warehouse dir: ingest writes it; dataset/analyze/live append; \
         report/qmin/experiments scan it instead of regenerating",
    ),
    (
        "--from",
        "YYYY-MM-DD",
        "warehouse scans: inclusive start time (also raw micros)",
    ),
    (
        "--to",
        "YYYY-MM-DD",
        "warehouse scans: exclusive end time (also raw micros)",
    ),
    (
        "--partition-rows",
        "N",
        "warehouse appends: rows per partition before a flush (default 1M)",
    ),
    (
        "--partition-bytes",
        "N",
        "warehouse appends: in-memory byte budget per partition (default 64M)",
    ),
    (
        "--filter",
        "substr",
        "bench: only scenarios whose id contains substr",
    ),
    (
        "--baseline",
        "bench/baseline.json",
        "bench: exit nonzero on regressions vs this report",
    ),
    (
        "--threshold",
        "0.15",
        "bench: regression threshold as a fraction (default 0.15)",
    ),
    (
        "--flight",
        "flight.jsonl",
        "flight recorder: dump the retained telemetry window as JSONL on exit",
    ),
    (
        "--flight-interval",
        "1s",
        "flight recorder: metric sampling interval (default 1s)",
    ),
    (
        "--sample",
        "N",
        "trace 1-in-N queries across pipeline hops (deterministic, seeded by --seed)",
    ),
    (
        "--profile",
        "out.folded",
        "sampling CPU profiler: write flamegraph-ready folded stacks on exit \
         (bench: per-scenario profiles, merged into one file)",
    ),
];

/// Every boolean flag: `(name, description)`. `--json` doubles as
/// `--json=path` for `bench`, so it is listed here, not in
/// [`VALUE_FLAGS`] (a bare `--json` must not swallow the next arg).
const BOOL_FLAGS: &[(&str, &str)] = &[
    (
        "--keep-capture",
        "dataset/scenario: keep the intermediate capture file",
    ),
    (
        "--fleet",
        "dataset/scenario/concentration/junk-overview: generate with the \
         algorithmic resolver fleet (emergent signatures) instead of the \
         calibrated sampler",
    ),
    ("--stats", "print the per-stage time/throughput table"),
    (
        "--json",
        "dataset: JSON output; bench: write BENCH_<label>.json (or --json=path)",
    ),
    ("--quick", "bench: reduced samples for CI"),
    ("--list", "bench: list scenario ids and exit"),
    (
        "--monthly",
        "ingest: the 18-month Figure 3 series instead of one dataset",
    ),
    (
        "--explain",
        "warehouse scans: print the scan plan, then a post-run decode profile",
    ),
];

fn main() -> ExitCode {
    let args: Vec<String> = match normalize_args(std::env::args().skip(1).collect()) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (flags, positional): (Vec<&String>, Vec<&String>) =
        args.iter().partition(|a| a.starts_with("--"));

    // observability flags apply to every command
    let trace_path = flag_value(&flags, "--trace").map(std::path::PathBuf::from);
    if trace_path.is_some() {
        obs::trace::enable();
    }
    let want_stats = flags.iter().any(|f| *f == "--stats");
    if want_stats {
        obs::stage::set_progress(true);
    }
    let metrics_server = match flag_value(&flags, "--metrics-addr") {
        Some(addr) => {
            let addr: std::net::SocketAddr = match addr.parse() {
                Ok(a) => a,
                Err(_) => {
                    eprintln!("--metrics-addr takes ip:port, got {addr:?}");
                    return ExitCode::FAILURE;
                }
            };
            match obs::prom::serve(addr) {
                Ok(server) => {
                    println!("metrics: http://{}/metrics", server.addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("cannot bind metrics endpoint {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let flight_path = flag_value(&flags, "--flight").map(std::path::PathBuf::from);
    let flight_on = flight_path.is_some() || flag_value(&flags, "--flight-interval").is_some();
    if flight_on {
        let interval = match flag_value(&flags, "--flight-interval") {
            Some(v) => match parse_duration(v) {
                Ok(d) if !d.is_zero() => d,
                Ok(_) => {
                    eprintln!("--flight-interval must be positive");
                    return ExitCode::FAILURE;
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            },
            None => obs::flight::DEFAULT_INTERVAL,
        };
        obs::flight::start(interval);
    }
    if let Some(n) = flag_value(&flags, "--sample") {
        let n: u64 = match n.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--sample takes a positive integer, got {n:?}");
                return ExitCode::FAILURE;
            }
        };
        let seed: u64 = flag_value(&flags, "--seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        obs::flight::enable_sampling(n, seed);
    }
    if flags.iter().any(|f| *f == "--explain") {
        warehouse::explain::enable();
    }
    // `bench` profiles per scenario inside bench_cli; every other
    // command gets one profile spanning the whole run
    let profile_path = flag_value(&flags, "--profile").map(std::path::PathBuf::from);
    let whole_run_profile =
        profile_path.is_some() && positional.first().map(|s| s.as_str()) != Some("bench");
    if whole_run_profile {
        if !obs::prof::supported() {
            eprintln!("profile: CPU sampling unsupported on this platform; output will be empty");
        }
        if let Err(e) = obs::prof::start(obs::prof::DEFAULT_HZ) {
            eprintln!("profile: {e}");
            return ExitCode::FAILURE;
        }
    }

    let code = match run_command(&flags, &positional) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    };

    if whole_run_profile {
        if let Some(profile) = obs::prof::stop() {
            let path = profile_path.as_ref().expect("profile path parsed above");
            if let Err(e) = std::fs::write(path, profile.folded()) {
                eprintln!("profile: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "profile: {} samples ({} lost) over {:.1}s -> {}",
                profile.samples,
                profile.lost,
                profile.duration.as_secs_f64(),
                path.display()
            );
        }
    }

    if flight_on {
        obs::flight::stop();
    }
    if let Some(path) = flight_path {
        match obs::flight::recorder()
            .expect("recorder started")
            .write_jsonl_file(&path)
        {
            Ok(n) => eprintln!("flight: {n} series -> {}", path.display()),
            Err(e) => {
                eprintln!("flight: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if want_stats {
        let table = obs::stage::render_table();
        if !table.is_empty() {
            print!("{table}");
        }
        let scans = render_scan_counters();
        if !scans.is_empty() {
            print!("{scans}");
        }
        let queues = render_queue_gauges();
        if !queues.is_empty() {
            print!("{queues}");
        }
    }
    if let Some(path) = trace_path {
        match obs::trace::write_jsonl_file(&path) {
            Ok(n) => eprintln!("trace: {n} spans -> {}", path.display()),
            Err(e) => {
                eprintln!("trace: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    drop(metrics_server); // keep the endpoint up until the very end
    code
}

/// Parse + dispatch one command; `Err` is a user-facing message.
fn run_command(flags: &[&String], positional: &[&String]) -> Result<ExitCode, String> {
    let scale = match flag_value(flags, "--scale").unwrap_or("small") {
        "tiny" => Scale::tiny(),
        "small" => Scale::small(),
        "medium" => Scale::medium(),
        "report" => Scale::report(),
        other => {
            return Err(format!(
                "unknown scale {other:?} (tiny|small|medium|report)"
            ))
        }
    };
    let seed: u64 = parsed_flag(flags, "--seed", "an integer")?.unwrap_or(42);
    let shards: usize = parsed_flag(flags, "--shards", "a worker-thread count")?.unwrap_or(1);
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let jobs: usize = parsed_flag(flags, "--jobs", "a worker-thread count")?.unwrap_or(1);
    if jobs == 0 {
        return Err("--jobs must be at least 1".to_string());
    }
    let keep_capture = flags.iter().any(|f| *f == "--keep-capture");
    let fleet = flags.iter().any(|f| *f == "--fleet");
    // capture kept next to the cwd, named after the dataset
    let opts_for = |id: &str| PipelineOpts {
        shards,
        jobs,
        keep_capture: keep_capture.then(|| std::path::PathBuf::from(format!("{id}.dnscap"))),
        warehouse: None,
        fleet,
    };

    match positional.first().map(|s| s.as_str()) {
        Some("table1") => print!("{}", report::render_table1()),
        Some("generate") => {
            let (vantage, year, path) = dataset_args(positional)?;
            let spec = dataset(vantage, year);
            let stats = generate_capture_sharded(&spec, scale, seed, Path::new(path), shards)
                .expect("capture generation");
            println!(
                "{}: {} queries ({} tcp, {} truncated, {} junk) -> {path}",
                spec.id(),
                stats.queries,
                stats.tcp_queries,
                stats.truncated_udp,
                stats.junk_queries
            );
        }
        Some("analyze") => {
            let (vantage, year, path) = dataset_args(positional)?;
            let spec = dataset(vantage, year);
            let (analysis, dualstack, ingest) =
                analyze_capture(&spec, scale, seed, Path::new(path)).expect("analysis");
            print_dataset_report(&spec.id(), vantage, &analysis, &dualstack, &spec);
            eprintln!(
                "[ingest: {} frames, {} malformed, {} unanswered, {} capture errors]",
                ingest.frames, ingest.malformed, ingest.unanswered_queries, ingest.capture_errors
            );
            if let Some(wh) = open_warehouse(flags)? {
                let stats = store::append_dataset_capture(
                    &wh,
                    &spec,
                    scale,
                    seed,
                    Path::new(path),
                    append_config(flags)?,
                )?;
                let committed = wh.commit().map_err(|e| e.to_string())?;
                eprintln!(
                    "[warehouse: {} row(s) -> {committed} new partition(s)]",
                    stats.rows
                );
            }
        }
        Some("dataset") => {
            let (vantage, year) = vantage_year(positional)?;
            let spec = dataset(vantage, year);
            let opts = opts_for(&spec.id());
            let run = match open_warehouse(flags)? {
                Some(wh) => {
                    let run =
                        store::ingest_spec(&wh, spec, scale, seed, &opts, append_config(flags)?)?;
                    let committed = wh.commit().map_err(|e| e.to_string())?;
                    eprintln!("[warehouse: {committed} new partition(s)]");
                    run
                }
                None => run_spec_with(spec, scale, seed, &opts),
            };
            if let Some(p) = &opts.keep_capture {
                eprintln!("[capture kept at {}]", p.display());
            }
            if flags.iter().any(|f| *f == "--json") {
                let doc = report::dataset_json(&run.id, &run.analysis);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&doc).expect("serializes")
                );
            } else {
                print_dataset_report(&run.id, vantage, &run.analysis, &run.dualstack, &run.spec);
            }
        }
        Some("ingest") => {
            let wh = open_warehouse(flags)?.ok_or("ingest requires --warehouse=dir")?;
            let dir = flag_value(flags, "--warehouse").expect("flag present");
            let config = append_config(flags)?;
            let vantage =
                parse_vantage(positional.get(1).ok_or("vantage required (nl|nz|broot)")?)?;
            if flags.iter().any(|f| *f == "--monthly") {
                // one month per task, `jobs` months in flight
                let opts = PipelineOpts {
                    shards,
                    ..PipelineOpts::default()
                };
                let provider = parse_provider(flags)?;
                let runs = store::ingest_monthly(
                    &wh, vantage, provider, scale, seed, &opts, config, jobs,
                )?;
                let committed = wh.commit().map_err(|e| e.to_string())?;
                let rows: u64 = runs.iter().map(|r| r.ingest_stats.rows).sum();
                println!(
                    "{} monthly sources, {rows} row(s) -> {committed} new partition(s) in {dir}",
                    runs.len()
                );
            } else {
                let year_str = positional
                    .get(2)
                    .ok_or("year required (2018|2019|2020), or --monthly")?;
                let year: u16 = year_str
                    .parse()
                    .map_err(|_| format!("year must be a number, got {year_str:?}"))?;
                let spec = dataset(vantage, year);
                let opts = opts_for(&spec.id());
                let run = store::ingest_spec(&wh, spec, scale, seed, &opts, config)?;
                let committed = wh.commit().map_err(|e| e.to_string())?;
                println!(
                    "{}: {} row(s) -> {committed} new partition(s) in {dir}",
                    run.id, run.ingest_stats.rows
                );
            }
        }
        Some("qmin") => {
            let vantage = parse_vantage(positional.get(1).map(|s| s.as_str()).unwrap_or("nl"))?;
            let provider = parse_provider(flags)?;
            let series = match open_warehouse(flags)? {
                Some(wh) => {
                    let (series, stats) = store::monthly_series(&wh, vantage, provider, jobs)?;
                    print_explain(&stats);
                    eprintln!("[warehouse: {}]", stats.summary());
                    series
                }
                None => dnscentral_core::experiments::run_monthly_series_for_jobs(
                    vantage, provider, scale, seed, jobs,
                ),
            };
            let detected = qmin::detect_cusum(&series, 0.05, 0.3);
            print!(
                "{}",
                report::render_fig3(
                    &format!("{} ({provider})", vantage.label()),
                    &series,
                    detected
                )
            );
        }
        Some("report") => match open_warehouse(flags)? {
            Some(wh) => {
                let pred = scan_predicate(flags)?;
                if flags.iter().any(|f| *f == "--json") {
                    let (doc, stats) = store::report_json(&wh, &pred, jobs)?;
                    print_explain(&stats);
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&doc).expect("serializes")
                    );
                    eprintln!("[warehouse: {}]", stats.summary());
                } else {
                    let (text, stats) = store::render_report(&wh, &pred, jobs)?;
                    print_explain(&stats);
                    print!("{text}");
                    eprintln!("[warehouse: {}]", stats.summary());
                }
            }
            None => full_report(scale, seed, shards, jobs),
        },
        Some("inspect") => {
            let path = positional
                .get(1)
                .ok_or("usage: dnscentral inspect <capture.dnscap>")?;
            inspect_capture(Path::new(path.as_str()));
        }
        Some("export-pcap") => {
            let [input, output] = two_paths(positional, "export-pcap <in.dnscap> <out.pcap>")?;
            export_pcap(Path::new(input), Path::new(output));
        }
        Some("analyze-pcap") => {
            let input = positional
                .get(1)
                .ok_or("usage: dnscentral analyze-pcap <in.pcap> [--zone=nl|nz|root]")?;
            let zone = match flag_value(flags, "--zone").unwrap_or("root") {
                "nl" => zonedb::zone::ZoneModel::nl(5_900_000),
                "nz" => zonedb::zone::ZoneModel::nz(141_000, 569_000),
                "root" => zonedb::zone::ZoneModel::root(1514),
                other => return Err(format!("unknown zone {other:?} (nl|nz|root)")),
            };
            analyze_external_pcap(Path::new(input.as_str()), zone);
        }
        Some("import-pcap") => {
            let [input, output] = two_paths(positional, "import-pcap <in.pcap> <out.dnscap>")?;
            import_pcap_cli(Path::new(input), Path::new(output));
        }
        Some("concentration") => {
            let specs = [Vantage::Nl, Vantage::Nz, Vantage::BRoot]
                .into_iter()
                .map(|v| dataset(v, 2020))
                .collect();
            let pipe = PipelineOpts {
                shards,
                jobs,
                fleet,
                ..PipelineOpts::default()
            };
            let reports: Vec<_> = dnscentral_core::run_suite(specs, scale, seed, &pipe, jobs)
                .iter()
                .map(|run| dnscentral_core::concentration::concentration(&run.id, &run.analysis))
                .collect();
            print!("{}", report::render_concentration(&reports));
        }
        Some("scenario-template") => {
            let (vantage, year) = vantage_year(positional)?;
            let mut spec = dataset(vantage, year);
            // materialize the fleet list so every knob is editable
            spec.fleets_override = Some(spec.fleets());
            println!(
                "{}",
                serde_json::to_string_pretty(&spec).expect("serializes")
            );
        }
        Some("scenario") => {
            let path = positional
                .get(1)
                .ok_or("usage: dnscentral scenario <scenario.json>")?;
            let text = std::fs::read_to_string(path).expect("scenario file reads");
            let spec: simnet::scenario::DatasetSpec =
                serde_json::from_str(&text).expect("valid scenario JSON");
            let vantage = spec.vantage;
            let opts = opts_for(&spec.id());
            let run = run_spec_with(spec, scale, seed, &opts);
            if let Some(p) = &opts.keep_capture {
                eprintln!("[capture kept at {}]", p.display());
            }
            print_dataset_report(&run.id, vantage, &run.analysis, &run.dualstack, &run.spec);
        }
        Some("experiments") => {
            let rows = match open_warehouse(flags)? {
                Some(wh) => {
                    let (rows, stats) = store::compare(&wh, jobs)?;
                    print_explain(&stats);
                    eprintln!("[warehouse: {}]", stats.summary());
                    rows
                }
                None => dnscentral_core::paper::compare_with(scale, seed, jobs),
            };
            print!("{}", dnscentral_core::paper::render_markdown(&rows));
        }
        Some("junk-overview") => {
            let specs = [2018u16, 2019, 2020]
                .into_iter()
                .map(|year| dataset(Vantage::BRoot, year))
                .collect();
            let pipe = PipelineOpts {
                shards,
                jobs,
                fleet,
                ..PipelineOpts::default()
            };
            let measured: Vec<_> = dnscentral_core::run_suite(specs, scale, seed, &pipe, jobs)
                .iter()
                .map(|run| (run.spec.year, run.analysis.valid_fraction()))
                .collect();
            print!("{}", report::render_junk_overview(&measured));
        }
        Some("serve") => {
            let (vantage, year) = vantage_year(positional)?;
            return serve_cli(vantage, year, flags);
        }
        Some("loadgen") => {
            let (vantage, year) = vantage_year(positional)?;
            return loadgen_cli(vantage, year, scale, seed, flags);
        }
        Some("live") => {
            let (vantage, year) = vantage_year(positional)?;
            let out = positional
                .get(3)
                .map(|s| s.as_str())
                .unwrap_or("live.dnscap");
            return live_cli(vantage, year, scale, seed, out, flags);
        }
        Some("bench") => return bench_cli(flags),
        Some("help") => print!("{}", render_help()),
        _ => return Err(usage_line()),
    }
    Ok(ExitCode::SUCCESS)
}

/// Flush buffered `--explain` output after a warehouse scan: the
/// per-source plan trees to stdout (buffered + sorted by source, so
/// the bytes are identical for any `--jobs`), then the run-variable
/// decode profile to stderr.
fn print_explain(stats: &warehouse::ScanStats) {
    if !warehouse::explain::enabled() {
        return;
    }
    for (_, text) in warehouse::explain::take_plans() {
        print!("{text}");
    }
    eprint!(
        "{}",
        warehouse::explain::render_profile(&warehouse::explain::take(), stats)
    );
}

/// The warehouse-scan counter summary printed under the `--stats`
/// stage table; empty until a scan has actually run in this process.
fn render_scan_counters() -> String {
    let read = |name: &str, help: &str| obs::counter(name, help).get();
    let pruned = read(
        "warehouse_partitions_pruned_total",
        "partitions skipped via zone maps before reading any column bytes",
    );
    let scanned = read(
        "warehouse_partitions_scanned_total",
        "partition files read and decoded by scans",
    );
    let corrupt = read(
        "warehouse_partitions_corrupt_total",
        "partition files skipped by scans after CRC/decode failure",
    );
    let rows = read(
        "warehouse_rows_scanned_total",
        "rows decoded from partition files by scans",
    );
    if pruned + scanned + corrupt == 0 {
        return String::new();
    }
    format!(
        "== warehouse scans ==\n\
         {:<20} {pruned:>12}\n\
         {:<20} {scanned:>12}\n\
         {:<20} {corrupt:>12}\n\
         {:<20} {rows:>12}\n",
        "partitions pruned", "partitions scanned", "partitions corrupt", "rows scanned"
    )
}

/// The queue-depth summary printed under the `--stats` stage table:
/// one row per registered `QueueDepth` (depth at last observation plus
/// high-water mark); empty when nothing registered a bounded queue.
fn render_queue_gauges() -> String {
    let samples = obs::Registry::global().sample();
    let value_of = |name: &str| {
        samples.iter().find_map(|(n, v)| match v {
            obs::SampleValue::Gauge(v) if n == name => Some(*v),
            _ => None,
        })
    };
    let mut rows = String::new();
    for (name, value) in &samples {
        let Some(prefix) = name.strip_suffix("_queue_peak") else {
            continue;
        };
        let obs::SampleValue::Gauge(peak) = value else {
            continue;
        };
        let depth = value_of(&format!("{prefix}_queue_depth")).unwrap_or(0.0);
        rows.push_str(&format!(
            "{prefix:<28} {:>8} {:>8}\n",
            depth as u64, *peak as u64
        ));
    }
    if rows.is_empty() {
        return String::new();
    }
    format!(
        "== queues ==\n{:<28} {:>8} {:>8}\n{rows}",
        "queue", "depth", "peak"
    )
}

/// Two required positional path arguments (friendly usage on absence).
fn two_paths<'a>(positional: &[&'a String], usage: &str) -> Result<[&'a str; 2], String> {
    match (positional.get(1), positional.get(2)) {
        (Some(a), Some(b)) => Ok([a.as_str(), b.as_str()]),
        _ => Err(format!("usage: dnscentral {usage}")),
    }
}

/// Parse a value-taking flag with a friendly error instead of a panic.
fn parsed_flag<T: std::str::FromStr>(
    flags: &[&String],
    name: &str,
    what: &str,
) -> Result<Option<T>, String> {
    match flag_value(flags, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{name} takes {what}, got {v:?}")),
    }
}

/// Live authoritative server on real sockets until SIGINT (or
/// `--duration`); `--out tap.dnscap` mirrors served traffic.
fn serve_cli(vantage: Vantage, year: u16, flags: &[&String]) -> Result<ExitCode, String> {
    let spec = dataset(vantage, year);
    let mut config = authd::ServerConfig::for_spec(&spec);
    if let Some(port) = parsed_flag::<u16>(flags, "--port", "a port number")? {
        config.bind = std::net::SocketAddr::new(IpAddr::from([127, 0, 0, 1]), port);
    }
    if let Some(n) = parsed_flag(flags, "--udp-workers", "a count")? {
        config.udp_workers = n;
    }
    if let Some(n) = parsed_flag(flags, "--tcp-workers", "a count")? {
        config.tcp_workers = n;
    }
    if let Some(path) = flag_value(flags, "--out") {
        config.tap = Some(authd::Tap::create(Path::new(path)).expect("tap creates"));
    }
    let duration = flag_value(flags, "--duration")
        .map(parse_duration)
        .transpose()?;
    let interval = flag_value(flags, "--stats-interval")
        .map(parse_duration)
        .transpose()?
        .unwrap_or(std::time::Duration::from_secs(5));

    authd::signal::install();
    let server = authd::Server::start(config).expect("server starts");
    println!(
        "{} serving on udp {} / tcp {} (Ctrl-C to drain)",
        spec.id(),
        server.udp_addr(),
        server.tcp_addr()
    );
    let started = std::time::Instant::now();
    let mut since_print = std::time::Duration::ZERO;
    let step = std::time::Duration::from_millis(100);
    let qps_gauge = obs::gauge("authd_server_qps", "server-side queries per second");
    loop {
        if authd::signal::triggered() || duration.is_some_and(|d| started.elapsed() >= d) {
            break;
        }
        std::thread::sleep(step);
        since_print += step;
        let snap = server.stats().snapshot(started.elapsed().as_secs_f64());
        qps_gauge.set(snap.qps);
        if since_print >= interval {
            since_print = std::time::Duration::ZERO;
            eprintln!("{snap}");
        }
    }
    let snap = server.stats().snapshot(started.elapsed().as_secs_f64());
    let records = server.shutdown().expect("drain flushes");
    println!("final: {snap}");
    if records > 0 {
        println!("capture: {records} records flushed");
    }
    Ok(ExitCode::SUCCESS)
}

/// Closed-loop load against an already-running server
/// (`--udp addr --tcp addr`, from `dnscentral serve`'s banner).
fn loadgen_cli(
    vantage: Vantage,
    year: u16,
    scale: Scale,
    seed: u64,
    flags: &[&String],
) -> Result<ExitCode, String> {
    let spec = dataset(vantage, year);
    let udp = parsed_flag(flags, "--udp", "host:port")?.ok_or("--udp server address required")?;
    let tcp = parsed_flag(flags, "--tcp", "host:port")?.ok_or("--tcp server address required")?;
    let mut config = authd::LoadgenConfig::new(spec, scale, seed, udp, tcp);
    if let Some(n) = parsed_flag(flags, "--workers", "a count")? {
        config.workers = n;
    }
    config.max_queries = parsed_flag(flags, "--queries", "a count")?;
    config.duration = flag_value(flags, "--duration")
        .map(parse_duration)
        .transpose()?;
    if config.max_queries.is_none() && config.duration.is_none() {
        config.max_queries = Some(10_000);
    }

    authd::signal::install();
    let stats = authd::Stats::new();
    if let Some(resolvers) = parsed_flag(flags, "--resolvers", "a count")? {
        let mut fg = authd::FleetgenConfig::new(
            config.spec.clone(),
            config.scale,
            config.seed,
            config.server_udp,
            config.server_tcp,
        );
        fg.resolvers = resolvers;
        fg.workers = config.workers;
        fg.max_queries = config.max_queries;
        fg.duration = config.duration;
        let report = authd::run_fleetgen(&fg, &stats).expect("fleetgen runs");
        println!("{}", stats.snapshot(report.elapsed.as_secs_f64()));
        println!(
            "fleet  | resolvers {} cache-hit {:.3} stimuli {} retries {} timeouts {}",
            resolvers,
            report.cache_hit_ratio,
            report.stimuli,
            report.resolver_retries,
            report.resolver_timeouts
        );
        println!(
            "sent {} received {} timeouts {} tcp-fallbacks {} in {:.2}s",
            report.sent,
            report.received,
            report.timeouts,
            report.tcp_fallbacks,
            report.elapsed.as_secs_f64()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let report = authd::run_loadgen(&config, &stats).expect("loadgen runs");
    println!("{}", stats.snapshot(report.elapsed.as_secs_f64()));
    println!(
        "sent {} received {} timeouts {} tcp-fallbacks {} in {:.2}s",
        report.sent,
        report.received,
        report.timeouts,
        report.tcp_fallbacks,
        report.elapsed.as_secs_f64()
    );
    Ok(ExitCode::SUCCESS)
}

/// Serve + loadgen over loopback, seal the tap, then run the standard
/// offline analysis on the live capture.
fn live_cli(
    vantage: Vantage,
    year: u16,
    scale: Scale,
    seed: u64,
    out: &str,
    flags: &[&String],
) -> Result<ExitCode, String> {
    let spec = dataset(vantage, year);
    let mut config =
        authd::LiveConfig::new(spec.clone(), scale, seed, Path::new(out).to_path_buf());
    if let Some(n) = parsed_flag(flags, "--workers", "a count")? {
        config.loadgen_workers = n;
    }
    if let Some(n) = parsed_flag(flags, "--udp-workers", "a count")? {
        config.udp_workers = n;
    }
    if let Some(n) = parsed_flag(flags, "--tcp-workers", "a count")? {
        config.tcp_workers = n;
    }
    if let Some(q) = parsed_flag(flags, "--queries", "a count")? {
        config.max_queries = Some(q);
    }
    if let Some(d) = flag_value(flags, "--duration") {
        config.duration = Some(parse_duration(d)?);
        config.max_queries = parsed_flag(flags, "--queries", "a count")?;
    }
    config.stats_interval = flag_value(flags, "--stats-interval")
        .map(parse_duration)
        .transpose()?;
    config.resolvers = parsed_flag(flags, "--resolvers", "a count")?;

    authd::signal::install();
    let report = authd::run_live(&config).expect("live loop runs");
    println!(
        "live: sent {} ({} tcp-fallbacks, {} timeouts), served {} ({} udp / {} tcp), \
         {} capture records -> {out}",
        report.loadgen.sent,
        report.loadgen.tcp_fallbacks,
        report.loadgen.timeouts,
        report.server.queries(),
        report.server.udp_queries,
        report.server.tcp_queries,
        report.records
    );
    println!("serve  | {}", report.server);
    println!("loadgen| {}", report.client);
    if let Some(fleet) = &report.fleet {
        println!(
            "fleet  | resolvers {} cache-hit {:.3} stimuli {} retries {} timeouts {}",
            config.resolvers.unwrap_or(0),
            fleet.cache_hit_ratio,
            fleet.stimuli,
            fleet.resolver_retries,
            fleet.resolver_timeouts
        );
    }
    if report.records == 0 {
        eprintln!("live run produced an empty capture");
        return Ok(ExitCode::FAILURE);
    }

    let (analysis, dualstack, ingest) =
        analyze_capture(&spec, scale, seed, Path::new(out)).expect("live capture analyzes");
    print_dataset_report(&spec.id(), vantage, &analysis, &dualstack, &spec);
    eprintln!(
        "[ingest: {} frames, {} malformed, {} unanswered, {} capture errors]",
        ingest.frames, ingest.malformed, ingest.unanswered_queries, ingest.capture_errors
    );
    if let Some(wh) = open_warehouse(flags)? {
        let stats = store::append_dataset_capture(
            &wh,
            &spec,
            scale,
            seed,
            Path::new(out),
            append_config(flags)?,
        )?;
        let committed = wh.commit().map_err(|e| e.to_string())?;
        eprintln!(
            "[warehouse: {} row(s) -> {committed} new partition(s)]",
            stats.rows
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Rewrite `--flag value` as `--flag=value` for the known value-taking
/// flags, so both spellings work.
fn normalize_args(raw: Vec<String>) -> Result<Vec<String>, String> {
    let mut out = Vec::with_capacity(raw.len());
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        if VALUE_FLAGS.iter().any(|(name, _, _)| *name == arg) {
            match it.next() {
                Some(value) => out.push(format!("{arg}={value}")),
                None => return Err(format!("flag {arg} requires a value")),
            }
        } else {
            out.push(arg);
        }
    }
    Ok(out)
}

/// The one-line usage error, generated from [`COMMANDS`].
fn usage_line() -> String {
    let names: Vec<&str> = COMMANDS.iter().map(|(name, _, _)| *name).collect();
    format!(
        "usage: dnscentral <{}> [args] [flags] — run `dnscentral help` for the full reference",
        names.join("|")
    )
}

/// The `help` command: every command and flag, from the same tables
/// the parser uses.
fn render_help() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "dnscentral — reproduction of \"Clouding up the Internet\" (IMC 2020)\n\n\
         usage: dnscentral <command> [args] [flags]\n\ncommands:"
    )
    .expect("string write");
    for (name, args, desc) in COMMANDS {
        let synopsis = if args.is_empty() {
            (*name).to_string()
        } else {
            format!("{name} {args}")
        };
        writeln!(out, "  {synopsis:<52} {desc}").expect("string write");
    }
    writeln!(
        out,
        "\nvalue flags (both `--flag=value` and `--flag value` work):"
    )
    .expect("string write");
    for (name, value, desc) in VALUE_FLAGS {
        let synopsis = format!("{name}={value}");
        writeln!(out, "  {synopsis:<52} {desc}").expect("string write");
    }
    writeln!(out, "\nboolean flags:").expect("string write");
    for (name, desc) in BOOL_FLAGS {
        writeln!(out, "  {name:<52} {desc}").expect("string write");
    }
    out
}

/// `dnscentral bench`: run the shared scenario registry (the same
/// bodies the criterion benches time) under `obs::bench::Runner`,
/// print the results table, optionally write a `BENCH_<label>.json`
/// report, and optionally gate against a baseline report.
fn bench_cli(flags: &[&String]) -> Result<ExitCode, String> {
    use obs::bench::{default_label, BenchReport, Runner};

    let quick = flags.iter().any(|f| *f == "--quick");
    let filter = flag_value(flags, "--filter");
    let scenarios: Vec<bench::scenarios::Scenario> = bench::scenarios::all()
        .into_iter()
        .filter(|s| match filter {
            Some(f) => s.id().contains(f),
            None => true,
        })
        .collect();
    if flags.iter().any(|f| *f == "--list") {
        for s in &scenarios {
            println!("{}", s.id());
        }
        return Ok(ExitCode::SUCCESS);
    }
    if scenarios.is_empty() {
        return Err(format!(
            "no bench scenarios match --filter={}",
            filter.unwrap_or("")
        ));
    }

    let runner = if quick {
        Runner::quick()
    } else {
        Runner::full()
    };
    let label = default_label();
    let mut report = BenchReport::new(&label, quick);
    // --profile: one profiler session per scenario so each report row
    // carries its own hot frames; the folded file merges all of them.
    let profile_path = flag_value(flags, "--profile").map(std::path::PathBuf::from);
    if profile_path.is_some() && !obs::prof::supported() {
        eprintln!("bench: CPU sampling unsupported on this platform; profile will be empty");
    }
    let mut merged = obs::prof::Profile::default();
    for s in scenarios {
        eprintln!("bench: running {}", s.id());
        let mut prepared = (s.setup)();
        if profile_path.is_some() {
            obs::prof::start(obs::prof::BENCH_HZ).map_err(|e| format!("bench profile: {e}"))?;
        }
        let mut row = runner.run(
            &s.id(),
            s.group,
            prepared.records_per_iter,
            &mut prepared.iter,
        );
        if profile_path.is_some() {
            if let Some(profile) = obs::prof::stop() {
                row.hot_frames = Some(profile.hot_frames(5));
                merged.merge(profile);
            }
        }
        report.scenarios.push(row);
    }
    print!("{}", report.render_table());
    if let Some(path) = &profile_path {
        std::fs::write(path, merged.folded())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "bench: profile {} samples ({} lost) -> {}",
            merged.samples,
            merged.lost,
            path.display()
        );
    }

    // `--json=path` writes there; bare `--json` names the file after
    // the run label, extending the BENCH_* trajectory.
    let json_path = match flag_value(flags, "--json") {
        Some(path) => Some(std::path::PathBuf::from(path)),
        None if flags.iter().any(|f| *f == "--json") => {
            Some(std::path::PathBuf::from(format!("BENCH_{label}.json")))
        }
        None => None,
    };
    if let Some(path) = &json_path {
        report
            .save(path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("bench: report -> {}", path.display());
    }

    if let Some(base_path) = flag_value(flags, "--baseline") {
        let baseline = BenchReport::load(Path::new(base_path))?;
        let threshold: f64 =
            parsed_flag(flags, "--threshold", "a fraction like 0.15")?.unwrap_or(0.15);
        let regressions = report.diff(&baseline, threshold);
        if !regressions.is_empty() {
            for r in &regressions {
                println!(
                    "REGRESSION {}: {:.0} -> {:.0} ns/op ({:+.1}%)",
                    r.name,
                    r.baseline_ns,
                    r.current_ns,
                    (r.ratio - 1.0) * 100.0
                );
            }
            return Ok(ExitCode::FAILURE);
        }
        println!(
            "no regressions vs {base_path} (label {}, threshold +{:.0}%)",
            baseline.label,
            threshold * 100.0
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// Parse `3s`, `500ms`, `2m`, or bare seconds.
fn parse_duration(s: &str) -> Result<std::time::Duration, String> {
    let parse_num = |v: &str, unit: &str| -> Result<f64, String> {
        v.parse()
            .map_err(|_| format!("bad duration {s:?} (want e.g. 3{unit})"))
    };
    let secs = if let Some(ms) = s.strip_suffix("ms") {
        parse_num(ms, "ms")? / 1000.0
    } else if let Some(m) = s.strip_suffix('m') {
        parse_num(m, "m")? * 60.0
    } else if let Some(secs) = s.strip_suffix('s') {
        parse_num(secs, "s")?
    } else {
        parse_num(s, "s")?
    };
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("bad duration {s:?} (must be non-negative)"));
    }
    Ok(std::time::Duration::from_secs_f64(secs))
}

fn flag_value<'a>(flags: &'a [&'a String], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find_map(|f| f.strip_prefix(name)?.strip_prefix('='))
}

/// Open the warehouse named by `--warehouse=dir`, if any.
fn open_warehouse(flags: &[&String]) -> Result<Option<std::sync::Arc<Warehouse>>, String> {
    match flag_value(flags, "--warehouse") {
        None => Ok(None),
        Some(dir) => Warehouse::open(Path::new(dir))
            .map(|wh| Some(std::sync::Arc::new(wh)))
            .map_err(|e| e.to_string()),
    }
}

/// Appender tuning from `--partition-rows` / `--partition-bytes`.
fn append_config(flags: &[&String]) -> Result<warehouse::AppendConfig, String> {
    let mut config = warehouse::AppendConfig::default();
    if let Some(n) = parsed_flag(flags, "--partition-rows", "a row count")? {
        if n == 0 {
            return Err("--partition-rows must be at least 1".to_string());
        }
        config.max_rows = n;
    }
    if let Some(n) = parsed_flag(flags, "--partition-bytes", "a byte budget")? {
        if n == 0 {
            return Err("--partition-bytes must be at least 1".to_string());
        }
        config.max_bytes = n;
    }
    Ok(config)
}

/// The pushdown predicate from `--from` / `--to`.
fn scan_predicate(flags: &[&String]) -> Result<warehouse::Predicate, String> {
    let mut pred = warehouse::Predicate::all();
    pred.from = flag_value(flags, "--from")
        .map(parse_sim_time)
        .transpose()?;
    pred.to = flag_value(flags, "--to").map(parse_sim_time).transpose()?;
    Ok(pred)
}

/// Parse a scan bound: `YYYY-MM-DD`, or raw simulation microseconds.
fn parse_sim_time(s: &str) -> Result<netbase::time::SimTime, String> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() == 3 {
        let bad = || format!("bad date {s:?} (want YYYY-MM-DD)");
        let year: i32 = parts[0].parse().map_err(|_| bad())?;
        let month: u32 = parts[1].parse().map_err(|_| bad())?;
        let day: u32 = parts[2].parse().map_err(|_| bad())?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(bad());
        }
        Ok(netbase::time::SimTime::from_date(year, month, day))
    } else {
        s.parse::<u64>()
            .map(netbase::time::SimTime)
            .map_err(|_| format!("bad time {s:?} (want YYYY-MM-DD or microseconds)"))
    }
}

/// The `--provider` flag (default google).
fn parse_provider(flags: &[&String]) -> Result<asdb::cloud::Provider, String> {
    match flag_value(flags, "--provider") {
        None | Some("google") => Ok(asdb::cloud::Provider::Google),
        Some("amazon") => Ok(asdb::cloud::Provider::Amazon),
        Some("microsoft") => Ok(asdb::cloud::Provider::Microsoft),
        Some("facebook") => Ok(asdb::cloud::Provider::Facebook),
        Some("cloudflare") => Ok(asdb::cloud::Provider::Cloudflare),
        Some(other) => Err(format!(
            "unknown provider {other:?} (google|amazon|microsoft|facebook|cloudflare)"
        )),
    }
}

fn parse_vantage(s: &str) -> Result<Vantage, String> {
    match s {
        "nl" => Ok(Vantage::Nl),
        "nz" => Ok(Vantage::Nz),
        "broot" | "b-root" => Ok(Vantage::BRoot),
        other => Err(format!("unknown vantage {other:?} (nl|nz|broot)")),
    }
}

fn vantage_year(positional: &[&String]) -> Result<(Vantage, u16), String> {
    let vantage = parse_vantage(positional.get(1).ok_or("vantage required (nl|nz|broot)")?)?;
    let year_str = positional.get(2).ok_or("year required (2018|2019|2020)")?;
    let year: u16 = year_str
        .parse()
        .map_err(|_| format!("year must be a number, got {year_str:?}"))?;
    Ok((vantage, year))
}

fn dataset_args<'a>(positional: &[&'a String]) -> Result<(Vantage, u16, &'a str), String> {
    let (vantage, year) = vantage_year(positional)?;
    let path = positional
        .get(3)
        .ok_or("capture path required (e.g. out.dnscap)")?;
    Ok((vantage, year, path.as_str()))
}

/// Print the per-dataset exhibits (the same rendering warehouse scans
/// reuse, so `report --warehouse` stays byte-identical to this path).
fn print_dataset_report(
    id: &str,
    vantage: Vantage,
    analysis: &dnscentral_core::DatasetAnalysis,
    dualstack: &DualStackAnalysis,
    spec: &simnet::scenario::DatasetSpec,
) {
    print!(
        "{}",
        report::render_dataset_report(id, vantage, analysis, dualstack, spec)
    );
}

/// Run everything: the nine datasets, then the Figure 3 series.
///
/// The datasets come back from the suite scheduler (at most `jobs` in
/// flight) in spec order, and every exhibit renders from the collected
/// results in the same sequence a serial run printed — the report is
/// byte-identical for any `jobs`/`shards` value.
fn full_report(scale: Scale, seed: u64, shards: usize, jobs: usize) {
    let opts = PipelineOpts {
        shards,
        jobs,
        ..PipelineOpts::default()
    };
    let mut summaries = Vec::new();
    let mut shares = Vec::new();
    let mut splits = Vec::new();
    let mut junks = Vec::new();
    let mut transports = Vec::new();
    let mut t6 = Vec::new();
    print!("{}", report::render_table1());
    println!();
    print!("{}", report::render_table2());
    println!();
    let mut broot_valid = Vec::new();
    let runs = dnscentral_core::run_suite(
        dnscentral_core::experiments::table3_specs(),
        scale,
        seed,
        &opts,
        jobs,
    );
    for run in &runs {
        let (vantage, year) = (run.spec.vantage, run.spec.year);
        let id = run.id.clone();
        let analysis = &run.analysis;
        summaries.push(metrics::dataset_summary(&id, analysis));
        shares.push(metrics::cloud_share(&id, analysis));
        if year >= 2019 && vantage != Vantage::BRoot {
            splits.push(metrics::google_split(&id, analysis));
        }
        junks.push(junk::junk_report(&id, analysis));
        transports.push(transport::transport_report(&id, analysis));
        if year == 2020 && vantage != Vantage::BRoot {
            for p in [
                asdb::cloud::Provider::Amazon,
                asdb::cloud::Provider::Microsoft,
            ] {
                t6.push((id.clone(), transport::resolver_families(analysis, p)));
            }
        }
        if vantage == Vantage::Nl && year == 2020 {
            // the .nl w2020 exhibits: Figure 2 panel, Figure 6, Figure 5/8
            let mixes: Vec<_> = asdb::cloud::ALL_PROVIDERS
                .iter()
                .map(|&p| metrics::qtype_mix(&id, analysis, Some(p)))
                .collect();
            print!("{}", report::render_fig2(&mixes));
            println!();
            print!("{}", report::render_fig6(&ednssize::edns_report(analysis)));
            println!();
            for server in &run.spec.servers {
                let sites = run.dualstack.report_for_server(IpAddr::V4(server.v4));
                print!("{}", report::render_fig5(&server.name, &sites));
                println!();
            }
        }
        if vantage == Vantage::Nl && year == 2019 {
            // Appendix B, Figure 7: the 2019 qtype panels
            let mixes: Vec<_> = asdb::cloud::ALL_PROVIDERS
                .iter()
                .map(|&p| metrics::qtype_mix(&id, analysis, Some(p)))
                .collect();
            print!(
                "{}",
                report::render_fig2(&mixes).replace("Figure 2", "Figure 7")
            );
            println!();
        }
        if vantage == Vantage::BRoot {
            broot_valid.push((year, analysis.valid_fraction()));
            if year == 2020 {
                print!("{}", report::render_as_ranking(analysis, 8));
                println!();
            }
        }
    }
    print!("{}", report::render_table3(&summaries));
    println!();
    print!("{}", report::render_fig1(&shares));
    println!();
    print!("{}", report::render_table4(&splits));
    println!();
    print!("{}", report::render_fig4(&junks));
    println!();
    print!("{}", report::render_table5(&transports));
    println!();
    print!("{}", report::render_table6(&t6));
    println!();
    print!("{}", report::render_junk_overview(&broot_valid));
    println!();
    for vantage in [Vantage::Nl, Vantage::Nz] {
        let series = dnscentral_core::experiments::run_monthly_series_for_jobs(
            vantage,
            asdb::cloud::Provider::Google,
            scale,
            seed,
            jobs,
        );
        let detected = qmin::detect_cusum(&series, 0.05, 0.3);
        print!(
            "{}",
            report::render_fig3(vantage.label(), &series, detected)
        );
        println!();
    }
}

/// Convert a `.dnscap` into a classic libpcap file (Ethernet/IP/UDP/TCP
/// with valid checksums) for tcpdump/Wireshark.
fn export_pcap(input: &Path, output: &Path) {
    use netbase::capture::CaptureReader;
    use netbase::pcap::PcapWriter;
    let infile = std::fs::File::open(input).expect("input opens");
    let reader = CaptureReader::new(std::io::BufReader::new(infile)).expect("valid .dnscap header");
    let outfile = std::fs::File::create(output).expect("output creates");
    let mut writer = PcapWriter::new(std::io::BufWriter::new(outfile)).expect("pcap header writes");
    let mut errors = 0u64;
    for item in reader {
        match item {
            Ok(rec) => writer.write_record(&rec).expect("pcap frame writes"),
            Err(_) => errors += 1,
        }
    }
    let frames = writer.frames_written();
    writer.finish().expect("flush");
    println!(
        "{frames} frames -> {} ({errors} capture errors skipped)",
        output.display()
    );
}

/// Analyze an externally captured pcap without a scenario: cloud
/// attribution uses the providers' real published address ranges, so
/// the Figure 1/4/5-style numbers are meaningful on real traffic; the
/// synthetic rest-of-Internet plan is NOT used (non-CP sources simply
/// stay unattributed).
fn analyze_external_pcap(input: &Path, zone: zonedb::zone::ZoneModel) {
    use asdb::mapping::AsMapper;
    use asdb::registry::AsRegistry;
    use dnscentral_core::DatasetAnalysis;
    use entrada::enrich::Enricher;
    use entrada::ingest::CaptureIngest;
    use netbase::capture::{CaptureReader, CaptureWriter};
    use netbase::trie::PrefixTrie;

    let data = std::fs::read(input).expect("input reads");
    let (records, skipped) = netbase::pcap::import_pcap(&data).expect("valid pcap");
    eprintln!("[{} DNS frames imported, {skipped} skipped]", records.len());

    // a CP-only mapper: real, published address space only
    let mut trie = PrefixTrie::new();
    for provider in asdb::cloud::ALL_PROVIDERS {
        for (i, pool) in provider.v4_pools().into_iter().enumerate() {
            trie.insert(pool, provider.asn_for_pool(i));
        }
        for (i, pool) in provider.v6_pools().into_iter().enumerate() {
            trie.insert(pool, provider.asn_for_pool(i));
        }
    }
    let mapper = AsMapper::new(trie, AsRegistry::with_cloud_providers());

    // feed through the normal ingest path via an in-memory capture
    let mut buf = Vec::new();
    {
        let mut w = CaptureWriter::new(&mut buf).expect("writer");
        for rec in &records {
            w.write(rec).expect("write");
        }
        w.finish().expect("flush");
    }
    let mut ingest = CaptureIngest::new(
        CaptureReader::new(&buf[..]).expect("header"),
        Enricher::new(mapper),
    );
    let mut analysis = DatasetAnalysis::new(zone);
    let mut chromium = dnscentral_core::junk::ChromiumProbeStats::default();
    for row in ingest.by_ref() {
        analysis.push(&row);
        chromium.push(&row);
    }
    let id = input
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "pcap".into());
    print!(
        "{}",
        report::render_table3(&[metrics::dataset_summary(&id, &analysis)])
    );
    print!(
        "{}",
        report::render_fig1(&[metrics::cloud_share(&id, &analysis)])
    );
    print!(
        "{}",
        report::render_fig4(&[junk::junk_report(&id, &analysis)])
    );
    print!(
        "{}",
        report::render_table5(&[transport::transport_report(&id, &analysis)])
    );
    print!("{}", report::render_fig6(&ednssize::edns_report(&analysis)));
    println!(
        "Chromium-probe share of junk: {:.1}%",
        chromium.probe_share() * 100.0
    );
    let stats = ingest.stats();
    eprintln!(
        "[ingest: {} frames, {} malformed, {} unanswered, {} capture errors]",
        stats.frames, stats.malformed, stats.unanswered_queries, stats.capture_errors
    );
}

/// Convert a libpcap file back into a `.dnscap` (externally captured
/// DNS traffic entering the analysis pipeline).
fn import_pcap_cli(input: &Path, output: &Path) {
    use netbase::capture::CaptureWriter;
    let data = std::fs::read(input).expect("input reads");
    let (records, skipped) = netbase::pcap::import_pcap(&data).expect("valid pcap file");
    let outfile = std::fs::File::create(output).expect("output creates");
    let mut writer = CaptureWriter::new(std::io::BufWriter::new(outfile)).expect("header writes");
    for rec in &records {
        writer.write(rec).expect("record writes");
    }
    writer.finish().expect("flush");
    println!(
        "{} records -> {} ({skipped} non-DNS frames skipped)",
        records.len(),
        output.display()
    );
}

/// Capture forensics: walk any `.dnscap` without needing the scenario
/// that produced it.
fn inspect_capture(path: &Path) {
    use dns_wire::message::Message;
    use netbase::capture::{CaptureReader, Direction};
    use netbase::flow::Transport;
    use std::collections::HashMap;

    let file = std::fs::File::open(path).expect("capture opens");
    let reader = CaptureReader::new(std::io::BufReader::new(file)).expect("valid header");
    let (mut frames, mut queries, mut responses, mut tcp, mut malformed) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut first: Option<netbase::time::SimTime> = None;
    let mut last: Option<netbase::time::SimTime> = None;
    let mut qtypes: HashMap<String, u64> = HashMap::new();
    let mut sources: HashMap<IpAddr, u64> = HashMap::new();
    for item in reader {
        let rec = match item {
            Ok(r) => r,
            Err(e) => {
                eprintln!("stream error after {frames} frames: {e}");
                break;
            }
        };
        frames += 1;
        first.get_or_insert(rec.timestamp);
        last = Some(rec.timestamp);
        if rec.flow.transport == Transport::Tcp {
            tcp += 1;
        }
        match rec.direction {
            Direction::Query => {
                queries += 1;
                *sources.entry(rec.flow.src).or_insert(0) += 1;
                // TCP payloads carry the RFC 1035 length prefix
                let wire: Vec<u8> = match rec.flow.transport {
                    Transport::Tcp => match dns_wire::tcp::deframe_all(&rec.payload) {
                        Ok(mut m) if m.len() == 1 => m.remove(0),
                        _ => {
                            malformed += 1;
                            continue;
                        }
                    },
                    Transport::Udp => rec.payload.clone(),
                };
                match Message::parse(&wire) {
                    Ok(msg) => {
                        if let Some(q) = msg.question() {
                            *qtypes.entry(q.qtype.mnemonic()).or_insert(0) += 1;
                        }
                    }
                    Err(_) => malformed += 1,
                }
            }
            Direction::Response => responses += 1,
        }
    }
    println!("frames     : {frames} ({queries} queries, {responses} responses)");
    println!("tcp frames : {tcp}");
    println!("malformed  : {malformed}");
    if let (Some(a), Some(b)) = (first, last) {
        println!("time span  : {a} .. {b}");
    }
    println!("resolvers  : {}", sources.len());
    let mut top: Vec<(String, u64)> = qtypes.into_iter().collect();
    top.sort_by_key(|e| std::cmp::Reverse(e.1));
    println!("qtypes     :");
    for (t, n) in top.iter().take(8) {
        println!("  {t:<8} {n}");
    }
}

//! Claims-diff for the algorithmic resolver fleet: the emergent
//! pipeline (`PipelineOpts::with_fleet`) must reproduce the paper's
//! centralization signatures the calibrated sampler was fitted to —
//! the Dec-2019 Google Q-min flip (Figure 3), the Feb-2020 `.nz`
//! cyclic-dependency surge, and the Table 4 cloud share — without any
//! per-query distribution sampling. Tolerances are documented in
//! `simnet::emerge`'s module docs; the headline one here is 3 pp
//! between the fleet and calibrated NS shares on either side of the
//! flip.

use dnscentral_core::experiments::{run_monthly_series, run_monthly_series_fleet, run_spec};
use dnscentral_core::pipeline::{run_spec_with, PipelineOpts};
use dnscentral_core::qmin::{detect_cusum, ChangePoint, MonthlySample};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, monthly_google, Scale};
use std::sync::OnceLock;

fn fleet_series() -> &'static Vec<MonthlySample> {
    static S: OnceLock<Vec<MonthlySample>> = OnceLock::new();
    S.get_or_init(|| run_monthly_series_fleet(Vantage::Nl, Scale::tiny(), 42, 4))
}

fn calibrated_series() -> &'static Vec<MonthlySample> {
    static S: OnceLock<Vec<MonthlySample>> = OnceLock::new();
    S.get_or_init(|| run_monthly_series(Vantage::Nl, Scale::tiny(), 42))
}

fn mean_ns_share(series: &[MonthlySample], post: bool) -> f64 {
    let picked: Vec<f64> = series
        .iter()
        .filter(|s| ((s.year, s.month) >= (2019, 12)) == post)
        .map(|s| s.ns_share)
        .collect();
    picked.iter().sum::<f64>() / picked.len() as f64
}

/// Figure 3 on the fleet path: the Q-min change point is *emergent* —
/// nothing in the stimulus distribution changes in December 2019, only
/// `IterativeResolver::set_qmin` flips on Google's rollout date — yet
/// the same CUSUM detector fires on the same month.
#[test]
fn fleet_series_detects_google_flip_in_december_2019() {
    let expected = Some(ChangePoint {
        year: 2019,
        month: 12,
    });
    assert_eq!(detect_cusum(fleet_series(), 0.05, 0.3), expected);
}

/// The emergent NS shares are pinned to the calibrated ones: within
/// 3 pp on each side of the flip, with the post-flip minimized-qname
/// verification holding month by month.
#[test]
fn fleet_ns_shares_match_calibrated_within_3pp() {
    let fleet = fleet_series();
    let cal = calibrated_series();
    assert_eq!(fleet.len(), cal.len());
    for post in [false, true] {
        let f = mean_ns_share(fleet, post);
        let c = mean_ns_share(cal, post);
        assert!(
            (f - c).abs() < 0.03,
            "post={post}: fleet NS share {f:.4} vs calibrated {c:.4}"
        );
    }
    for s in fleet.iter().filter(|s| (s.year, s.month) >= (2019, 12)) {
        assert!(
            s.minimized_ns_share > 0.80,
            "{}-{:02}: minimized {}",
            s.year,
            s.month,
            s.minimized_ns_share
        );
    }
}

/// Figure 3b's `.nz` incident on the fleet path: the Feb-2020 cyclic
/// dependency emerges as a query surge from the incident stream riding
/// alongside the resolver walks.
#[test]
fn fleet_reproduces_nz_february_surge() {
    let total = |month: u32| {
        run_spec_with(
            monthly_google(Vantage::Nz, 2020, month),
            Scale::tiny(),
            42 ^ ((2020u64) << 8 | month as u64),
            &PipelineOpts::with_fleet(),
        )
        .analysis
        .total_queries
    };
    let jan = total(1);
    let feb = total(2);
    assert!(
        feb as f64 > jan as f64 * 1.25,
        "incident must surge fleet traffic: feb {feb} vs jan {jan}"
    );
}

/// Table 4 parity: the cloud share the analyzer attributes to the
/// hyperscalers is within 3 pp of the calibrated pipeline's on the
/// same spec/seed — the fleet changes *how* queries are produced, not
/// *who* produces them.
#[test]
fn fleet_cloud_share_matches_calibrated_within_3pp() {
    let spec = dataset(Vantage::Nl, 2020);
    let fleet = run_spec_with(spec.clone(), Scale::tiny(), 42, &PipelineOpts::with_fleet())
        .analysis
        .cloud_share();
    let cal = run_spec(spec, Scale::tiny(), 42).analysis.cloud_share();
    assert!(
        (fleet - cal).abs() < 0.03,
        "fleet cloud share {fleet:.4} vs calibrated {cal:.4}"
    );
}

//! Scale-invariance: the paper's results are all *ratios*, and the
//! reproduction's claim to validity rests on those ratios being stable
//! under the volume scaling that replaces the authors' 55.7B-query
//! corpus. Run the same dataset at two scales and compare.

use asdb::cloud::ALL_PROVIDERS;
use dnscentral_core::experiments::run_dataset;
use simnet::profile::Vantage;
use simnet::scenario::Scale;

#[test]
fn ratios_stable_across_scales() {
    let small = run_dataset(Vantage::Nz, 2020, Scale::tiny(), 77);
    let big = run_dataset(
        Vantage::Nz,
        2020,
        Scale {
            queries: Scale::tiny().queries * 8.0,
            resolvers: Scale::tiny().resolvers * 4.0,
        },
        77,
    );
    assert!(big.analysis.total_queries > small.analysis.total_queries * 6);

    // Figure 1: per-provider shares
    for p in ALL_PROVIDERS {
        let a = small.analysis.provider_share(p);
        let b = big.analysis.provider_share(p);
        assert!((a - b).abs() < 0.02, "{p}: share {a} vs {b}");
    }
    // Table 3: valid fraction
    assert!((small.analysis.valid_fraction() - big.analysis.valid_fraction()).abs() < 0.03);
    // Table 5 flavor: dataset-wide family and transport ratios. (A
    // single provider's v6 ratio is dominated by which few resolvers a
    // tiny fleet gets, so the invariance claim is made at dataset scope
    // where populations are large at every scale.)
    let family = |run: &dnscentral_core::experiments::DatasetRun| {
        let mut v4 = 0u64;
        let mut v6 = 0u64;
        let mut udp = 0u64;
        let mut tcp = 0u64;
        for p in ALL_PROVIDERS.iter().map(|&p| Some(p)).chain([None]) {
            let agg = run.analysis.provider(p);
            v4 += agg.v4_queries;
            v6 += agg.v6_queries;
            udp += agg.udp_queries;
            tcp += agg.tcp_queries;
        }
        (
            v6 as f64 / (v4 + v6) as f64,
            tcp as f64 / (udp + tcp) as f64,
        )
    };
    let (sv6, stcp) = family(&small);
    let (bv6, btcp) = family(&big);
    assert!((sv6 - bv6).abs() < 0.10, "v6 {sv6} vs {bv6}");
    assert!((stcp - btcp).abs() < 0.02, "tcp {stcp} vs {btcp}");
    // Table 4: the Google public split
    assert!(
        (small.analysis.google_public.public_query_ratio()
            - big.analysis.google_public.public_query_ratio())
        .abs()
            < 0.05
    );
}

#[test]
fn resolver_and_as_counts_scale_with_resolver_knob() {
    let base = run_dataset(Vantage::Nl, 2019, Scale::tiny(), 13);
    let bigger = run_dataset(
        Vantage::Nl,
        2019,
        Scale {
            queries: Scale::tiny().queries * 2.0,
            resolvers: Scale::tiny().resolvers * 4.0,
        },
        13,
    );
    let r_ratio = bigger.analysis.resolvers.count() as f64 / base.analysis.resolvers.count() as f64;
    assert!(
        (2.0..6.5).contains(&r_ratio),
        "resolver population tracks the knob: {r_ratio}"
    );
    let as_ratio = bigger.analysis.ases.count() as f64 / base.analysis.ases.count() as f64;
    assert!(
        (1.5..6.5).contains(&as_ratio),
        "AS count tracks the knob: {as_ratio}"
    );
}

#[test]
fn query_volume_tracks_query_knob_exactly() {
    let s1 = Scale::tiny();
    let s2 = Scale {
        queries: s1.queries * 3.0,
        resolvers: s1.resolvers,
    };
    let a = run_dataset(Vantage::BRoot, 2019, s1, 21);
    let b = run_dataset(Vantage::BRoot, 2019, s2, 21);
    let ratio = b.analysis.total_queries as f64 / a.analysis.total_queries as f64;
    assert!(
        (2.8..3.2).contains(&ratio),
        "volume knob is exact up to retries: {ratio}"
    );
}

//! Observability end-to-end tests: the `--stats` per-stage table, the
//! `--trace` Chrome trace-event export, and a live Prometheus scrape of
//! a running `live` loop via `--metrics-addr`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnscentral"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dnscentral-obs-{}-{name}", std::process::id()));
    p
}

#[test]
fn stats_flag_prints_stage_table() {
    let out = bin()
        .args(["dataset", "nl", "2018", "--scale=tiny", "--stats"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("== per-stage summary =="), "{text}");
    for stage in [
        "pipeline.generate",
        "pipeline.analyze",
        "simnet.generate",
        "analysis.ednssize",
        "analysis.junk",
    ] {
        assert!(text.contains(stage), "missing stage {stage}:\n{text}");
    }
}

#[test]
fn stats_flag_prints_queue_block() {
    let out = bin()
        .args(["dataset", "nl", "2018", "--scale=tiny", "--stats"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("== queues =="), "{text}");
    // the bounded generator→analyzer channel registers a QueueDepth;
    // the row shows last-observed depth and the high-water mark
    let row = text
        .lines()
        .find(|l| l.starts_with("pipeline_analyze"))
        .unwrap_or_else(|| panic!("no pipeline_analyze queue row:\n{text}"));
    let cols: Vec<&str> = row.split_whitespace().collect();
    assert_eq!(cols.len(), 3, "{row}");
    let depth: u64 = cols[1].parse().expect("depth number");
    let peak: u64 = cols[2].parse().expect("peak number");
    assert!(peak >= depth, "{row}");
}

#[test]
fn trace_flag_writes_valid_chrome_events() {
    let trace = tmp("trace.json");
    let out = bin()
        .args([
            "dataset",
            "nl",
            "2018",
            "--scale=tiny",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("trace:"),
        "trace summary line on stderr"
    );

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    // every line is one complete ("X") trace event
    let mut spans: Vec<(u64, u64, u64, String)> = Vec::new(); // (tid, start, end, name)
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("line parses as JSON");
        assert_eq!(v["ph"].as_str(), Some("X"), "{line}");
        let tid = v["tid"].as_u64().expect("tid");
        let ts = v["ts"].as_u64().expect("ts");
        let dur = v["dur"].as_u64().expect("dur");
        let name = v["name"].as_str().expect("name").to_string();
        spans.push((tid, ts, ts + dur, name));
    }
    assert!(
        spans.iter().any(|s| s.3.starts_with("generate ")),
        "generate span present"
    );
    assert!(
        spans.iter().any(|s| s.3.starts_with("analyze ")),
        "analyze span present"
    );

    // per thread, spans form a laminar family: any two intervals are
    // either disjoint or properly nested (the file is start-sorted with
    // parents before children on ties)
    let mut tids: Vec<u64> = spans.iter().map(|s| s.0).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for &(t, start, end, ref name) in &spans {
            if t != tid {
                continue;
            }
            while stack.last().is_some_and(|&(_, e)| e <= start) {
                stack.pop();
            }
            if let Some(&(_, parent_end)) = stack.last() {
                assert!(
                    end <= parent_end,
                    "span {name} [{start},{end}) straddles its parent's end {parent_end}"
                );
            }
            stack.push((start, end));
        }
    }
    let _ = std::fs::remove_file(&trace);
}

fn http_get_path(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

fn http_get(addr: &str) -> std::io::Result<String> {
    http_get_path(addr, "/metrics")
}

/// Value of a `name value` exposition line, if present.
fn series_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

#[test]
fn metrics_endpoint_serves_live_counters() {
    let cap = tmp("live-scrape.dnscap");
    let mut child = bin()
        .args([
            "live",
            "nl",
            "2020",
            cap.to_str().unwrap(),
            "--scale=tiny",
            "--seed=7",
            "--workers=2",
            "--duration=4s",
            "--metrics-addr=127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawns");

    // the first stdout line announces the bound endpoint
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("metrics: http://")
        .and_then(|rest| rest.strip_suffix("/metrics"))
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    // scrape while the loop runs until the server-side series are live
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut last_body = String::new();
    let mut ok = false;
    while Instant::now() < deadline {
        if let Ok(response) = http_get(&addr) {
            if let Some(body) = response.split("\r\n\r\n").nth(1) {
                last_body = body.to_string();
                let queries = series_value(body, "authd_server_udp_queries_total").unwrap_or(0.0);
                let latencies = series_value(body, "authd_server_latency_us_count").unwrap_or(0.0);
                if queries > 0.0 && latencies > 0.0 {
                    ok = true;
                    break;
                }
            }
        }
        if child.try_wait().expect("try_wait").is_some() {
            break; // endpoint is gone once the run ends
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        ok,
        "metrics never showed live qps/latency series; last scrape:\n{last_body}"
    );
    // the qps gauges and the latency summary are part of the exposition
    assert!(
        last_body.contains("# TYPE authd_server_qps gauge"),
        "{last_body}"
    );
    assert!(
        last_body.contains("authd_server_latency_us{quantile=\"0.99\"}"),
        "{last_body}"
    );
    assert!(
        last_body.contains("authd_loadgen_sent_total"),
        "{last_body}"
    );
    // per-worker utilization gauges register at worker start, so they
    // are part of the exposition for the whole run (--workers=2)
    for series in [
        "# TYPE authd_udp_worker0_busy_permille gauge",
        "authd_udp_worker1_busy_permille",
    ] {
        assert!(last_body.contains(series), "missing {series}:\n{last_body}");
    }

    // drain the rest of stdout so the child never blocks on a full pipe
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("stdout drains");
    let status = child.wait().expect("child exits");
    assert!(status.success(), "live run failed:\n{banner}{rest}");
    let _ = std::fs::remove_file(&cap);
}

#[test]
#[cfg(target_os = "linux")]
fn profile_endpoint_serves_folded_stacks_during_live_run() {
    let cap = tmp("profile-scrape.dnscap");
    let mut child = bin()
        .args([
            "live",
            "nl",
            "2020",
            cap.to_str().unwrap(),
            "--scale=tiny",
            "--seed=7",
            "--workers=2",
            "--duration=8s",
            "--metrics-addr=127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawns");

    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("metrics: http://")
        .and_then(|rest| rest.strip_suffix("/metrics"))
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    // bad parameters are rejected without sampling
    let response = http_get_path(&addr, "/profile?seconds=0").expect("validation response");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // a 1-second profile of the running server: the response blocks
    // for the sampling window, so allow a generous read timeout
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /profile?seconds=1 HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("profile body");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    assert!(!body.trim().is_empty(), "no samples in a busy live run");
    for line in body.trim_end().lines() {
        let (frames, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!frames.is_empty(), "{line}");
        assert!(count.parse::<u64>().unwrap() > 0, "{line}");
    }

    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("stdout drains");
    let status = child.wait().expect("child exits");
    assert!(status.success(), "live run failed:\n{banner}{rest}");
    let _ = std::fs::remove_file(&cap);
}

#[test]
fn flight_endpoint_serves_window_during_live_run() {
    let cap = tmp("flight-scrape.dnscap");
    let jsonl = tmp("flight.jsonl");
    let mut child = bin()
        .args([
            "live",
            "nl",
            "2020",
            cap.to_str().unwrap(),
            "--scale=tiny",
            "--seed=7",
            "--workers=2",
            "--duration=4s",
            "--metrics-addr=127.0.0.1:0",
            "--flight",
            jsonl.to_str().unwrap(),
            "--flight-interval=200ms",
            "--sample=16",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");

    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("metrics: http://")
        .and_then(|rest| rest.strip_suffix("/metrics"))
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    // scrape /flight.json mid-run until the recorder has ticked a
    // counter series with at least one point
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut last_doc = String::new();
    let mut ok = false;
    while Instant::now() < deadline {
        if let Ok(response) = http_get_path(&addr, "/flight.json") {
            if let Some(body) = response.split("\r\n\r\n").nth(1) {
                last_doc = body.to_string();
                if let Ok(doc) = serde_json::from_str::<serde_json::Value>(body) {
                    let metrics = doc["metrics"].as_array().cloned().unwrap_or_default();
                    let live = metrics.iter().any(|m| {
                        m["kind"] == "counter"
                            && m["points"].as_array().is_some_and(|p| !p.is_empty())
                    });
                    if live && doc["ticks"].as_u64().unwrap_or(0) >= 2 {
                        ok = true;
                        break;
                    }
                }
            }
        }
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        ok,
        "flight.json never served a live counter window; last doc:\n{last_doc}"
    );
    // worker utilization gauges ride along in the recorder window
    assert!(
        last_doc.contains("busy_permille"),
        "no utilization series in flight window:\n{last_doc}"
    );

    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("stdout drains");
    let out = child.wait_with_output().expect("child exits");
    assert!(out.status.success(), "live run failed:\n{banner}{rest}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("flight:"), "flight summary line:\n{stderr}");

    // the JSONL dump holds the same window, one decoded point per line
    let dump = std::fs::read_to_string(&jsonl).expect("flight JSONL written");
    let mut counters = 0;
    let mut sampled_hops = 0u64;
    for line in dump.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("line parses as JSON");
        let metric = v["metric"].as_str().expect("metric name");
        match v["kind"].as_str().expect("kind") {
            "counter" => {
                counters += 1;
                let value = v["value"].as_u64().expect("counter value");
                assert!(v["rate"].as_f64().is_some(), "{line}");
                if metric == "obs_flight_sampled_hops_total" {
                    sampled_hops = sampled_hops.max(value);
                }
            }
            "gauge" => assert!(v["value"].as_f64().is_some(), "{line}"),
            "histogram" => {
                assert!(
                    v["count"].as_u64().is_some() && v["p99"].as_f64().is_some(),
                    "{line}"
                );
            }
            other => panic!("unknown series kind {other:?}: {line}"),
        }
    }
    assert!(counters > 0, "counter points in the dump:\n{dump}");
    // the deterministic 1-in-16 sampler traced queries across hops
    assert!(sampled_hops > 0, "sampled hop counter never moved:\n{dump}");
    let _ = std::fs::remove_file(&cap);
    let _ = std::fs::remove_file(&jsonl);
}

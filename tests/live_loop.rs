//! End-to-end live loop: serve + loadgen over loopback, ingest the
//! live capture tap through the unchanged offline analysis, and check
//! that cloud attribution matches an offline generate+analyze run of
//! the same dataset within 2 percentage points absolute.

use asdb::cloud::Provider;
use authd::{run_live, LiveConfig};
use dnscentral_core::experiments::{analyze_capture, run_dataset};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};

const QUERIES: u64 = 10_000;
const TOLERANCE_PP: f64 = 0.02;

#[test]
fn live_capture_matches_offline_cloud_shares() {
    let spec = dataset(Vantage::Nl, 2020);
    let scale = Scale::tiny();
    let seed = 42;
    let dir = std::env::temp_dir().join("dnscentral-live-loop");
    std::fs::create_dir_all(&dir).unwrap();
    let capture = dir.join("live-loop.dnscap");

    let mut config = LiveConfig::new(spec.clone(), scale, seed, capture.clone());
    config.max_queries = Some(QUERIES);
    let report = run_live(&config).expect("live loop runs");
    assert!(
        report.loadgen.sent >= QUERIES,
        "sent {}",
        report.loadgen.sent
    );
    assert!(report.records > 0, "capture tap stayed empty");
    assert_eq!(
        report.loadgen.timeouts, 0,
        "loopback queries must not time out"
    );

    let (live, _dualstack, ingest) =
        analyze_capture(&spec, scale, seed, &capture).expect("live capture analyzes");
    assert_eq!(ingest.malformed, 0, "live tap wrote malformed frames");
    assert_eq!(ingest.unanswered_queries, 0, "unpaired query records");

    let offline = run_dataset(Vantage::Nl, 2020, scale, seed);
    let live_cloud = live.cloud_share();
    let offline_cloud = offline.analysis.cloud_share();
    assert!(
        (live_cloud - offline_cloud).abs() < TOLERANCE_PP,
        "total cloud share diverged: live {live_cloud:.4} vs offline {offline_cloud:.4}"
    );
    for provider in [
        Provider::Google,
        Provider::Amazon,
        Provider::Microsoft,
        Provider::Facebook,
        Provider::Cloudflare,
    ] {
        let l = live.provider_share(provider);
        let o = offline.analysis.provider_share(provider);
        assert!(
            (l - o).abs() < TOLERANCE_PP,
            "{provider:?} share diverged: live {l:.4} vs offline {o:.4}"
        );
    }

    std::fs::remove_file(&capture).ok();
}

//! End-to-end live loop: serve + loadgen over loopback, ingest the
//! live capture tap through the unchanged offline analysis, and check
//! that cloud attribution matches an offline generate+analyze run of
//! the same dataset within 2 percentage points absolute. Plus the RRL
//! evidence chain: a dropped response must leave a query-with-no-
//! response in the capture, which ingest classifies as unanswered.

use asdb::cloud::Provider;
use authd::{run_live, LiveConfig};
use dnscentral_core::experiments::{analyze_capture, run_dataset};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};

const QUERIES: u64 = 10_000;
const TOLERANCE_PP: f64 = 0.02;

#[test]
fn live_capture_matches_offline_cloud_shares() {
    let spec = dataset(Vantage::Nl, 2020);
    let scale = Scale::tiny();
    let seed = 42;
    let dir = std::env::temp_dir().join("dnscentral-live-loop");
    std::fs::create_dir_all(&dir).unwrap();
    let capture = dir.join("live-loop.dnscap");

    let mut config = LiveConfig::new(spec.clone(), scale, seed, capture.clone());
    config.max_queries = Some(QUERIES);
    let report = run_live(&config).expect("live loop runs");
    assert!(
        report.loadgen.sent >= QUERIES,
        "sent {}",
        report.loadgen.sent
    );
    assert!(report.records > 0, "capture tap stayed empty");
    assert_eq!(
        report.loadgen.timeouts, 0,
        "loopback queries must not time out"
    );

    let (live, _dualstack, ingest) =
        analyze_capture(&spec, scale, seed, &capture).expect("live capture analyzes");
    assert_eq!(ingest.malformed, 0, "live tap wrote malformed frames");
    assert_eq!(ingest.unanswered_queries, 0, "unpaired query records");

    let offline = run_dataset(Vantage::Nl, 2020, scale, seed);
    let live_cloud = live.cloud_share();
    let offline_cloud = offline.analysis.cloud_share();
    assert!(
        (live_cloud - offline_cloud).abs() < TOLERANCE_PP,
        "total cloud share diverged: live {live_cloud:.4} vs offline {offline_cloud:.4}"
    );
    for provider in [
        Provider::Google,
        Provider::Amazon,
        Provider::Microsoft,
        Provider::Facebook,
        Provider::Cloudflare,
    ] {
        let l = live.provider_share(provider);
        let o = offline.analysis.provider_share(provider);
        assert!(
            (l - o).abs() < TOLERANCE_PP,
            "{provider:?} share diverged: live {l:.4} vs offline {o:.4}"
        );
    }

    std::fs::remove_file(&capture).ok();
}

/// An RRL-dropped UDP query is not lost evidence: the tap records the
/// query with no response, and offline ingest classifies exactly those
/// records as unanswered queries.
#[test]
fn rrl_dropped_queries_surface_as_unanswered_in_ingest() {
    use dns_wire::builder::MessageBuilder;
    use dns_wire::types::RType;
    use simnet::rrl::RrlConfig;
    use std::time::{Duration, Instant};

    let spec = dataset(Vantage::Nl, 2020);
    let scale = Scale::tiny();
    let seed = 42;
    let dir = std::env::temp_dir().join("dnscentral-live-loop");
    std::fs::create_dir_all(&dir).unwrap();
    let capture = dir.join("rrl-drop.dnscap");

    let mut config = authd::ServerConfig::for_spec(&spec);
    let qname = config.zone.registered_domain(0).to_string();
    // pure-drop RRL with a one-response budget: hammering one bucket
    // from one source prefix drops everything after the first token
    config.rrl = Some(RrlConfig {
        responses_per_second: 1,
        burst: 1,
        slip: 0,
        ..RrlConfig::default()
    });
    config.tap = Some(authd::Tap::create(&capture).unwrap());
    let server = authd::Server::start(config).unwrap();
    let dropped = std::sync::Arc::clone(&server.stats().rrl_dropped);
    let responses = std::sync::Arc::clone(&server.stats().responses);

    let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(5)))
        .unwrap();
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut id = 0u16;
    while dropped.get() < 3 {
        assert!(Instant::now() < deadline, "RRL never dropped a response");
        let wire = MessageBuilder::query(id, qname.parse().unwrap(), RType::A)
            .with_edns(1232, false)
            .build()
            .encode()
            .unwrap();
        id = id.wrapping_add(1);
        sock.send_to(&wire, server.udp_addr()).unwrap();
        let _ = sock.recv_from(&mut buf); // drain replies, tolerate drops
    }
    // let in-flight datagrams finish before sealing the tap
    std::thread::sleep(Duration::from_millis(100));
    let records = server.shutdown().unwrap();
    let (final_dropped, final_responses) = (dropped.get(), responses.get());
    assert!(records > 0, "tap stayed empty");

    let (_analysis, _dualstack, ingest) =
        analyze_capture(&spec, scale, seed, &capture).expect("capture analyzes");
    assert_eq!(ingest.malformed, 0);
    assert_eq!(
        ingest.unanswered_queries, final_dropped,
        "every RRL drop must appear as a query with no response \
         (dropped {final_dropped}, responses {final_responses})"
    );
    assert!(ingest.unanswered_queries >= 3);
    assert_eq!(
        ingest.rows,
        final_dropped + final_responses,
        "one row per query"
    );

    std::fs::remove_file(&capture).ok();
}

//! Integration tests for the perf-observability layer: the
//! `dnscentral bench` subcommand (JSON schema, scenario coverage, the
//! baseline regression gate) and the zero-allocation guarantees of the
//! serving and wire-encode hot paths.

use std::path::PathBuf;
use std::process::Command;

/// The allocation assertions need the counting allocator installed in
/// *this* test binary; the subcommand tests exercise the one installed
/// in the CLI binary.
#[global_allocator]
static ALLOC: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnscentral"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dnscentral-bench-{}-{name}", std::process::id()));
    p
}

#[test]
fn bench_list_covers_the_required_scenarios() {
    let out = bin().args(["bench", "--list"]).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for required in [
        "wire/message_encode",
        "wire/message_encode_into",
        "wire/message_parse",
        "gen/generate_shard1",
        "gen/generate_shard4",
        "ingest/ingest_and_enrich",
        "pipeline/streamed_shard1",
        "pipeline/streamed_shard4",
        "analysis/aggregate_rows",
        "analysis/qmin_cusum",
        "analysis/edns_size",
        "analysis/junk",
        "analysis/concentration",
        "serve/respond_udp",
        "serve/respond_udp_cached",
        "serve/respond_tcp",
        "authd/saturation",
        "authd/saturation_single",
        "resolver/resolve_cold",
        "resolver/resolve_cached",
        "fleet/live_1k",
        "warehouse/scan_explain",
        "obs/flight_record",
    ] {
        assert!(text.lines().any(|l| l == required), "missing {required}");
    }
    // --filter narrows the list
    let out = bin()
        .args(["bench", "--list", "--filter=wire/"])
        .output()
        .expect("runs");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.lines().count() >= 5);
    assert!(text.lines().all(|l| l.starts_with("wire/")), "{text}");
}

#[test]
fn bench_quick_emits_schema_valid_json() {
    let json = tmp("schema.json");
    let out = bin()
        .args([
            "bench",
            "--quick",
            "--filter=analysis/",
            &format!("--json={}", json.display()),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // stdout carries the human table
    let table = String::from_utf8(out.stdout).unwrap();
    assert!(table.contains("ns/op"), "{table}");
    assert!(table.contains("analysis/qmin_cusum"), "{table}");

    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).expect("valid JSON");
    assert_eq!(doc["schema_version"], 1);
    assert_eq!(doc["quick"], true);
    assert!(!doc["label"].as_str().unwrap().is_empty());
    let scenarios = doc["scenarios"].as_array().unwrap();
    assert_eq!(scenarios.len(), 6, "six analysis scenarios");
    for s in scenarios {
        assert!(s["name"].as_str().unwrap().starts_with("analysis/"));
        assert_eq!(s["group"], "analysis");
        assert!(s["iters"].as_u64().unwrap() > 0);
        for field in ["ns_per_op", "p50_ns", "p99_ns", "min_ns", "max_ns"] {
            assert!(s[field].as_f64().unwrap() > 0.0, "{field}: {s}");
        }
        assert!(s["min_ns"].as_f64().unwrap() <= s["max_ns"].as_f64().unwrap());
        // every analysis scenario processes records, and the CLI's
        // counting allocator makes allocs/op concrete numbers
        assert!(s["records_per_sec"].as_f64().unwrap() > 0.0, "{s}");
        assert!(s["allocs_per_op"].as_f64().is_some(), "{s}");
        assert!(s["alloc_bytes_per_op"].as_f64().is_some(), "{s}");
    }
    let _ = std::fs::remove_file(&json);
}

#[test]
fn baseline_gate_passes_on_self_and_fails_on_injected_regression() {
    use obs::bench::BenchReport;
    let json = tmp("gate.json");
    let doctored = tmp("gate-doctored.json");
    let filter = "--filter=analysis/qmin_cusum";
    let out = bin()
        .args([
            "bench",
            "--quick",
            filter,
            &format!("--json={}", json.display()),
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());

    // comparing a fresh run against its own twin must not flag noise
    let out = bin()
        .args([
            "bench",
            "--quick",
            filter,
            &format!("--baseline={}", json.display()),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "self-baseline flagged: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("no regressions"));

    // a baseline doctored 100x faster must trip the gate (exit nonzero)
    let mut base = BenchReport::load(&json).expect("loads");
    for s in &mut base.scenarios {
        s.ns_per_op /= 100.0;
        s.p50_ns /= 100.0;
        s.p99_ns /= 100.0;
        s.min_ns /= 100.0;
        s.max_ns /= 100.0;
    }
    base.save(&doctored).unwrap();
    let out = bin()
        .args([
            "bench",
            "--quick",
            filter,
            &format!("--baseline={}", doctored.display()),
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "doctored baseline not flagged");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("REGRESSION analysis/qmin_cusum"), "{text}");

    for f in [&json, &doctored] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn bench_rejects_unknown_filters() {
    let out = bin()
        .args(["bench", "--quick", "--filter=nonexistent/"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("no bench scenarios match"));
}

#[test]
fn bench_profile_writes_parseable_folded_stacks_and_hot_frames() {
    let folded = tmp("profile.folded");
    let json = tmp("profile.json");
    let out = bin()
        .args([
            "bench",
            "--quick",
            "--filter=analysis/qmin_cusum",
            &format!("--profile={}", folded.display()),
            &format!("--json={}", json.display()),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bench: profile"),
        "profile summary line on stderr"
    );

    let text = std::fs::read_to_string(&folded).expect("folded file written");
    for line in text.lines() {
        // flamegraph.pl input: "frame;frame;frame count"
        let (frames, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!frames.is_empty(), "{line}");
        assert!(count.parse::<u64>().unwrap() > 0, "{line}");
    }
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).expect("valid JSON");
    let row = &doc["scenarios"][0];
    assert_eq!(row["name"], "analysis/qmin_cusum");
    #[cfg(target_os = "linux")]
    {
        assert!(!text.is_empty(), "expected samples on Linux");
        let hot = row["hot_frames"].as_array().expect("hot_frames attached");
        assert!(!hot.is_empty());
        for f in hot {
            assert!(!f["name"].as_str().unwrap().is_empty());
            assert!(f["total_samples"].as_u64().unwrap() >= f["self_samples"].as_u64().unwrap());
        }
    }
    for f in [&folded, &json] {
        let _ = std::fs::remove_file(f);
    }
}

/// ISSUE satellite: a profiler that has run once ("armed": handler
/// installed, ring allocated, timer disarmed) must not disturb the
/// respond path's zero-allocation steady state.
#[test]
fn armed_but_idle_profiler_keeps_respond_path_allocation_free() {
    use authd::respond::{OutcomeRef, RespondScratch, Responder};
    use netbase::flow::Transport;
    use netbase::time::SimTime;
    use simnet::drive::Driver;
    use simnet::profile::Vantage;
    use simnet::scenario::{dataset, Scale};

    assert!(obs::alloc::installed(), "counting allocator active");
    // arm then stop: SIGPROF handler stays installed and the sample
    // ring stays allocated, exactly the state a server is in between
    // /profile?seconds=N requests
    if obs::prof::supported() {
        obs::prof::start(obs::prof::DEFAULT_HZ).expect("profiler starts");
        std::thread::sleep(std::time::Duration::from_millis(30));
        let profile = obs::prof::stop().expect("profiler stops");
        assert_eq!(profile.hz, obs::prof::DEFAULT_HZ);
    }

    let spec = dataset(Vantage::Nl, 2020);
    let t = spec.start;
    let responder = Responder::for_spec(&spec);
    let mut driver = Driver::new(spec, Scale::tiny(), 42);
    let queries: Vec<(Vec<u8>, std::net::IpAddr)> = (0..64)
        .map(|_| {
            let q = driver.sample(t);
            (q.wire, q.src)
        })
        .collect();
    let now = SimTime(0);
    let mut scratch = RespondScratch::new();
    for _ in 0..2 {
        for (wire, src) in &queries {
            let _ = responder.handle_into(wire, Transport::Udp, *src, now, None, &mut scratch);
        }
    }
    let steady: Vec<(Vec<u8>, std::net::IpAddr)> = queries
        .into_iter()
        .filter(|(wire, src)| {
            let misses = scratch.misses();
            let _ = responder.handle_into(wire, Transport::Udp, *src, now, None, &mut scratch);
            scratch.misses() == misses
        })
        .collect();
    assert!(steady.len() >= 32, "mix should mostly cache");

    let (_, stats) = obs::alloc::measure(|| {
        for _ in 0..50 {
            for (wire, src) in &steady {
                match responder.handle_into(wire, Transport::Udp, *src, now, None, &mut scratch) {
                    OutcomeRef::Reply { .. } | OutcomeRef::RrlDrop | OutcomeRef::Malformed => {}
                }
            }
        }
    });
    assert_eq!(stats.allocs, 0, "armed-but-idle profiler broke 0 allocs/op");
    assert_eq!(stats.bytes, 0);
}

#[test]
fn respond_hot_path_is_allocation_free_in_steady_state() {
    use authd::respond::{OutcomeRef, RespondScratch, Responder};
    use netbase::flow::Transport;
    use netbase::time::SimTime;
    use simnet::drive::Driver;
    use simnet::profile::Vantage;
    use simnet::scenario::{dataset, Scale};

    assert!(obs::alloc::installed(), "counting allocator active");
    // flight recorder + query sampler on: the cached respond path must
    // stay allocation-free with full observability enabled (flight hops
    // live in the socket servers, not in `handle_into`)
    obs::flight::start(std::time::Duration::from_millis(100));
    obs::flight::enable_sampling(7, 42);
    let spec = dataset(Vantage::Nl, 2020);
    let t = spec.start;
    let responder = Responder::for_spec(&spec);
    let mut driver = Driver::new(spec, Scale::tiny(), 42);
    let queries: Vec<(Vec<u8>, std::net::IpAddr)> = (0..64)
        .map(|_| {
            let q = driver.sample(t);
            (q.wire, q.src)
        })
        .collect();
    let now = SimTime(0);
    let mut scratch = RespondScratch::new();
    // warm passes populate the per-worker response cache
    for _ in 0..2 {
        for (wire, src) in &queries {
            let _ = responder.handle_into(wire, Transport::Udp, *src, now, None, &mut scratch);
        }
    }
    // keep only steady-state cache hits: uncacheable queries and
    // direct-mapped slot collisions legitimately take the slow path
    let steady: Vec<(Vec<u8>, std::net::IpAddr)> = queries
        .into_iter()
        .filter(|(wire, src)| {
            let misses = scratch.misses();
            let _ = responder.handle_into(wire, Transport::Udp, *src, now, None, &mut scratch);
            scratch.misses() == misses
        })
        .collect();
    assert!(
        steady.len() >= 32,
        "most of the sampled mix should cache ({} of 64)",
        steady.len()
    );

    let (replies, stats) = obs::alloc::measure(|| {
        let mut replies = 0u64;
        for _ in 0..50 {
            for (wire, src) in &steady {
                match responder.handle_into(wire, Transport::Udp, *src, now, None, &mut scratch) {
                    OutcomeRef::Reply { .. } => replies += 1,
                    OutcomeRef::RrlDrop | OutcomeRef::Malformed => {}
                }
            }
        }
        replies
    });
    assert_eq!(replies, 50 * steady.len() as u64);
    assert_eq!(stats.allocs, 0, "respond hot path allocated");
    assert_eq!(stats.bytes, 0);
}

/// Sampled queries plus a fixed logical flow for the full-cycle tests.
fn engine_fixture() -> (
    authd::Engine,
    Vec<(Vec<u8>, std::net::SocketAddr)>,
    std::path::PathBuf,
) {
    use authd::proxy::Preamble;
    use simnet::drive::Driver;
    use simnet::profile::Vantage;
    use simnet::rrl::RrlConfig;
    use simnet::scenario::{dataset, Scale};

    let spec = dataset(Vantage::Nl, 2020);
    let t = spec.start;
    let tap_path = tmp("full-cycle.dnscap");
    let tap = authd::Tap::create(&tap_path).expect("tap creates");
    // RRL on — the gate (sharded limiter lock + bucket update) is part
    // of the measured cycle — but generous enough never to limit, so
    // every query deterministically produces a reply
    let rrl = RrlConfig {
        responses_per_second: u32::MAX,
        burst: u32::MAX,
        ..spec.rrl.unwrap_or_default()
    };
    let engine = authd::Engine::new(spec.zone.build(), Some(rrl), 8, spec.start, Some(tap));
    let mut driver = Driver::new(spec, Scale::tiny(), 42);
    let queries: Vec<(Vec<u8>, std::net::SocketAddr)> = (0..64)
        .map(|i| {
            let q = driver.sample(t);
            let src = std::net::SocketAddr::new(q.src, 40_000 + i as u16);
            let preamble = Preamble {
                src,
                dst: "198.51.100.53:53".parse().unwrap(),
                rtt_us: 120,
            };
            let mut datagram = preamble.encode();
            datagram.extend_from_slice(&q.wire);
            (datagram, src)
        })
        .collect();
    (engine, queries, tap_path)
}

#[test]
fn full_udp_cycle_is_allocation_free_in_steady_state() {
    assert!(obs::alloc::installed(), "counting allocator active");
    obs::flight::start(std::time::Duration::from_millis(100));
    obs::flight::enable_sampling(7, 42);
    let (engine, queries, tap_path) = engine_fixture();
    let peer: std::net::SocketAddr = "127.0.0.1:55555".parse().unwrap();
    let local: std::net::SocketAddr = "127.0.0.1:53".parse().unwrap();
    let mut state = authd::WorkerState::new();
    for _ in 0..2 {
        for (datagram, _) in &queries {
            let _ = engine.process_udp(datagram, peer, local, &mut state);
        }
    }
    // keep only steady-state cache hits (collisions and uncacheable
    // shapes legitimately take the allocating slow path)
    let steady: Vec<&(Vec<u8>, std::net::SocketAddr)> = queries
        .iter()
        .filter(|(datagram, _)| {
            let misses = state.scratch().misses();
            let _ = engine.process_udp(datagram, peer, local, &mut state);
            state.scratch().misses() == misses
        })
        .collect();
    assert!(
        steady.len() >= 32,
        "mix should mostly cache: {}",
        steady.len()
    );

    let (replies, stats) = obs::alloc::measure(|| {
        let mut replies = 0u64;
        for _ in 0..50 {
            for (datagram, _) in &steady {
                if engine
                    .process_udp(datagram, peer, local, &mut state)
                    .is_some()
                {
                    replies += 1;
                }
            }
        }
        replies
    });
    assert_eq!(
        replies,
        50 * steady.len() as u64,
        "every steady query replied"
    );
    assert_eq!(stats.allocs, 0, "recv→respond→tap cycle allocated (udp)");
    assert_eq!(stats.bytes, 0);
    let _ = std::fs::remove_file(&tap_path);
}

#[test]
fn full_tcp_cycle_is_allocation_free_in_steady_state() {
    use authd::proxy::Preamble;

    assert!(obs::alloc::installed(), "counting allocator active");
    obs::flight::start(std::time::Duration::from_millis(100));
    obs::flight::enable_sampling(7, 42);
    let (engine, queries, tap_path) = engine_fixture();
    let peer: std::net::SocketAddr = "127.0.0.1:55556".parse().unwrap();
    let local: std::net::SocketAddr = "127.0.0.1:53".parse().unwrap();
    // the TCP path sees deframed messages (no preamble prefix) plus the
    // connection's preamble, so strip the prefixes built by the fixture
    let messages: Vec<(Vec<u8>, Preamble)> = queries
        .iter()
        .map(|(datagram, _)| {
            let (p, used) = Preamble::parse(datagram).expect("fixture has preambles");
            (datagram[used..].to_vec(), p)
        })
        .collect();
    let mut state = authd::WorkerState::new();
    for _ in 0..2 {
        for (msg, p) in &messages {
            let _ = engine.process_tcp(msg, peer, local, Some(*p), &mut state);
        }
    }
    let steady: Vec<&(Vec<u8>, Preamble)> = messages
        .iter()
        .filter(|(msg, p)| {
            let misses = state.scratch().misses();
            let _ = engine.process_tcp(msg, peer, local, Some(*p), &mut state);
            state.scratch().misses() == misses
        })
        .collect();
    assert!(
        steady.len() >= 32,
        "mix should mostly cache: {}",
        steady.len()
    );

    let (replies, stats) = obs::alloc::measure(|| {
        let mut replies = 0u64;
        for _ in 0..50 {
            for (msg, p) in &steady {
                if engine
                    .process_tcp(msg, peer, local, Some(*p), &mut state)
                    .is_some()
                {
                    replies += 1;
                }
            }
        }
        replies
    });
    assert_eq!(
        replies,
        50 * steady.len() as u64,
        "every steady query replied"
    );
    assert_eq!(stats.allocs, 0, "recv→respond→tap cycle allocated (tcp)");
    assert_eq!(stats.bytes, 0);
    let _ = std::fs::remove_file(&tap_path);
}

#[test]
fn wire_encode_into_is_allocation_free_and_byte_identical() {
    use dns_wire::name::ReusableCompressor;

    assert!(obs::alloc::installed(), "counting allocator active");
    // same observability load as the respond test: recorder sampling
    // the registry in the background, query sampler armed
    obs::flight::start(std::time::Duration::from_millis(100));
    obs::flight::enable_sampling(7, 42);
    let msg = bench::scenarios::sample_response();
    let expected = msg.encode().expect("encodes");
    let mut comp = ReusableCompressor::new();
    let mut out = Vec::new();
    // first call sizes the buffers; steady state reuses them
    msg.encode_into(&mut comp, &mut out).expect("encodes");
    assert_eq!(out, expected);

    let (_, stats) = obs::alloc::measure(|| {
        for _ in 0..100 {
            msg.encode_into(&mut comp, &mut out).expect("encodes");
        }
    });
    assert_eq!(out, expected);
    assert_eq!(stats.allocs, 0, "encode_into allocated in steady state");
    assert_eq!(stats.bytes, 0);
}

//! End-to-end CLI tests: drive the `dnscentral` binary the way a user
//! would and check its outputs (and its file artifacts round-trip).

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnscentral"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dnscentral-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn table1_prints_ground_truth() {
    let out = bin().arg("table1").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("15169"));
    assert!(text.contains("Cloudflare"));
    assert!(text.contains("8075"));
}

#[test]
fn usage_on_bad_args() {
    let out = bin().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"));
    let out = bin().output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn help_covers_every_command_and_flag() {
    let out = bin().arg("help").output().expect("runs");
    assert!(out.status.success());
    let help = String::from_utf8(out.stdout).unwrap();
    // every dispatchable command appears in the help text...
    for command in [
        "table1",
        "generate",
        "analyze",
        "dataset",
        "ingest",
        "qmin",
        "report",
        "inspect",
        "export-pcap",
        "import-pcap",
        "analyze-pcap",
        "concentration",
        "junk-overview",
        "experiments",
        "scenario-template",
        "scenario",
        "serve",
        "loadgen",
        "live",
        "bench",
        "help",
    ] {
        assert!(
            help.lines().any(|l| l.trim_start().starts_with(command)),
            "help is missing command {command}"
        );
    }
    // ...as does every flag the parser accepts
    for flag in [
        "--scale",
        "--seed",
        "--shards",
        "--zone",
        "--provider",
        "--duration",
        "--queries",
        "--port",
        "--workers",
        "--udp-workers",
        "--tcp-workers",
        "--udp=",
        "--tcp=",
        "--out",
        "--stats-interval",
        "--trace",
        "--metrics-addr",
        "--filter",
        "--baseline",
        "--threshold",
        "--warehouse",
        "--from",
        "--to",
        "--partition-rows",
        "--partition-bytes",
        "--keep-capture",
        "--stats",
        "--json",
        "--quick",
        "--list",
        "--monthly",
        "--flight",
        "--flight-interval",
        "--sample",
        "--explain",
    ] {
        assert!(help.contains(flag), "help is missing flag {flag}");
    }
    // the short usage line advertises the newer commands too
    let err = String::from_utf8(bin().arg("frobnicate").output().expect("runs").stderr).unwrap();
    assert!(err.contains("bench"), "{err}");
    assert!(err.contains("help"), "{err}");
}

#[test]
fn bad_scale_is_rejected() {
    let out = bin()
        .args(["table1", "--scale=galactic"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown scale"));
}

#[test]
fn bad_flag_values_fail_with_friendly_errors() {
    // every case: non-zero exit, a readable message, and no panic text
    for (args, expect) in [
        (&["table1", "--seed=banana"][..], "--seed takes an integer"),
        (
            &["live", "nl", "2020", "x.dnscap", "--duration=banana"][..],
            "bad duration",
        ),
        (
            &["serve", "nl", "2020", "--port=notaport"][..],
            "--port takes a port number",
        ),
        (&["table1", "--metrics-addr=nonsense"][..], "ip:port"),
        (
            &["generate", "nl", "2019", "--scale"][..],
            "requires a value",
        ),
        (&["dataset", "mars", "2020"][..], "unknown vantage"),
        (&["dataset", "nl", "twenty"][..], "year must be a number"),
    ] {
        let out = bin().args(args).output().expect("runs");
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains(expect), "{args:?}: {err}");
        assert!(!err.contains("panicked"), "{args:?}: {err}");
    }
}

#[test]
fn generate_analyze_inspect_roundtrip() {
    let cap = tmp("gen.dnscap");
    let out = bin()
        .args([
            "generate",
            "nz",
            "2019",
            cap.to_str().unwrap(),
            "--scale=tiny",
            "--seed=5",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout).unwrap().contains("queries"));
    assert!(cap.exists());

    let out = bin()
        .args([
            "analyze",
            "nz",
            "2019",
            cap.to_str().unwrap(),
            "--scale=tiny",
            "--seed=5",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("=== nz-w2019 ==="));
    assert!(text.contains("Figure 1"));
    assert!(text.contains("Table 5"));

    let out = bin()
        .args(["inspect", cap.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("malformed  : 0"), "{text}");
    assert!(text.contains("qtypes"));

    let _ = std::fs::remove_file(&cap);
}

#[test]
fn pcap_export_import_roundtrip() {
    let cap = tmp("x.dnscap");
    let pcap = tmp("x.pcap");
    let back = tmp("x2.dnscap");
    assert!(bin()
        .args([
            "generate",
            "broot",
            "2018",
            cap.to_str().unwrap(),
            "--scale=tiny"
        ])
        .status()
        .expect("runs")
        .success());
    assert!(bin()
        .args(["export-pcap", cap.to_str().unwrap(), pcap.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    let out = bin()
        .args([
            "import-pcap",
            pcap.to_str().unwrap(),
            back.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("0 non-DNS frames skipped"));
    // re-imported capture inspects cleanly
    let out = bin()
        .args(["inspect", back.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("malformed  : 0"));
    for f in [&cap, &pcap, &back] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn dataset_json_is_valid() {
    let out = bin()
        .args(["dataset", "nl", "2018", "--scale=tiny", "--json"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(doc["id"], "nl-w2018");
    assert!(doc["figure1"]["total"].as_f64().unwrap() > 0.2);
    assert!(doc["concentration"]["hhi"].as_f64().unwrap() > 0.0);
    assert_eq!(doc["table5"]["rows"].as_array().unwrap().len(), 5);
}

#[test]
fn warehouse_ingest_then_report_matches_direct_run() {
    let wh = tmp("wh");
    let _ = std::fs::remove_dir_all(&wh);
    let whs = wh.to_str().unwrap();

    // ingest without a warehouse dir is a friendly error
    let out = bin().args(["ingest", "nz", "2019"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("--warehouse"));

    let out = bin()
        .args([
            "ingest",
            "nz",
            "2019",
            "--scale=tiny",
            "--seed=5",
            "--warehouse",
            whs,
            "--partition-rows=2048",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("new partition(s)"), "{text}");

    // text report from the warehouse == the direct in-memory run
    let direct = bin()
        .args(["dataset", "nz", "2019", "--scale=tiny", "--seed=5"])
        .output()
        .expect("runs");
    assert!(direct.status.success());
    let scanned = bin()
        .args(["report", "--warehouse", whs])
        .output()
        .expect("runs");
    assert!(
        scanned.status.success(),
        "{}",
        String::from_utf8_lossy(&scanned.stderr)
    );
    assert_eq!(
        String::from_utf8(direct.stdout).unwrap(),
        String::from_utf8(scanned.stdout).unwrap()
    );

    // the JSON documents agree byte for byte as well
    let direct = bin()
        .args([
            "dataset",
            "nz",
            "2019",
            "--scale=tiny",
            "--seed=5",
            "--json",
        ])
        .output()
        .expect("runs");
    let scanned = bin()
        .args(["report", "--warehouse", whs, "--json"])
        .output()
        .expect("runs");
    assert!(direct.status.success() && scanned.status.success());
    assert_eq!(direct.stdout, scanned.stdout);

    // a time window before the dataset prunes every partition
    let scanned = bin()
        .args(["report", "--warehouse", whs, "--to", "2018-01-01"])
        .output()
        .expect("runs");
    assert!(scanned.status.success());
    let err = String::from_utf8(scanned.stderr).unwrap();
    assert!(err.contains("pruned"), "{err}");
    assert!(err.contains("0 row(s) read"), "{err}");

    let _ = std::fs::remove_dir_all(&wh);
}

#[test]
fn deterministic_generation_across_invocations() {
    let a = tmp("det-a.dnscap");
    let b = tmp("det-b.dnscap");
    for p in [&a, &b] {
        assert!(bin()
            .args([
                "generate",
                "nz",
                "2018",
                p.to_str().unwrap(),
                "--scale=tiny",
                "--seed=9"
            ])
            .status()
            .expect("runs")
            .success());
    }
    assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn scenario_template_roundtrip() {
    let out = bin()
        .args(["scenario-template", "nz", "2018"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(doc["year"], 2018);
    assert_eq!(doc["fleets_override"].as_array().unwrap().len(), 8);

    let path = tmp("scenario.json");
    std::fs::write(&path, &out.stdout).unwrap();
    let out = bin()
        .args(["scenario", path.to_str().unwrap(), "--scale=tiny"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("=== nz-w2018 ==="));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shipped_scenario_runs() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/microsoft-modernizes.json"
    );
    let out = bin()
        .args(["scenario", path, "--scale=tiny"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // the counterfactual: Microsoft shows the Q-min + validation signature
    let ms_line = text
        .lines()
        .find(|l| l.starts_with("[Microsoft"))
        .expect("figure 2 line");
    assert!(ms_line.contains("NS="), "{ms_line}");
}

#[test]
fn analyze_pcap_without_scenario_context() {
    let cap = tmp("ext.dnscap");
    let pcap = tmp("ext.pcap");
    assert!(bin()
        .args([
            "generate",
            "nl",
            "2019",
            cap.to_str().unwrap(),
            "--scale=tiny"
        ])
        .status()
        .expect("runs")
        .success());
    assert!(bin()
        .args(["export-pcap", cap.to_str().unwrap(), pcap.to_str().unwrap()])
        .status()
        .expect("runs")
        .success());
    let out = bin()
        .args(["analyze-pcap", pcap.to_str().unwrap(), "--zone=nl"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // CP attribution works from the real published ranges alone
    assert!(text.contains("All CPs"));
    let stem = pcap.file_stem().unwrap().to_string_lossy().to_string();
    let fig1 = text
        .lines()
        .skip_while(|l| !l.starts_with("Figure 1"))
        .find(|l| l.starts_with(&stem))
        .expect("fig1 row");
    let total: f64 = fig1
        .split_whitespace()
        .last()
        .unwrap()
        .trim_end_matches('%')
        .parse()
        .unwrap();
    assert!(total > 20.0, "cloud share visible in raw pcap: {total}");
    for f in [&cap, &pcap] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn explain_plans_reconcile_and_are_stable_across_jobs() {
    let wh = tmp("wh-explain");
    let _ = std::fs::remove_dir_all(&wh);
    let whs = wh.to_str().unwrap();
    let out = bin()
        .args([
            "ingest",
            "nz",
            "2019",
            "--scale=tiny",
            "--seed=5",
            "--warehouse",
            whs,
            "--partition-rows=512",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // a --from three days into the 7-day dataset prunes roughly half
    // the partitions by the time_from zone-map dimension
    let manifest = std::fs::read_to_string(wh.join("MANIFEST.json")).expect("manifest");
    let doc: serde_json::Value = serde_json::from_str(&manifest).expect("manifest JSON");
    let meta: serde_json::Value =
        serde_json::from_str(doc["sources"][0]["meta"].as_str().expect("source meta"))
            .expect("meta JSON");
    let start = meta["spec"]["start"].as_u64().expect("spec start");
    let mid = (start + 3 * 24 * 3_600_000_000).to_string();

    let run = |jobs: &str| {
        let out = bin()
            .args([
                "report",
                "--warehouse",
                whs,
                "--explain",
                "--from",
                &mid,
                "--jobs",
                jobs,
            ])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8(out.stdout).unwrap(),
            String::from_utf8(out.stderr).unwrap(),
        )
    };
    let (stdout1, stderr1) = run("1");
    let (stdout4, _) = run("4");
    // the plan tree (and the whole report) is byte-stable across --jobs
    assert_eq!(stdout1, stdout4, "explain stdout differs between jobs=1|4");

    // plan totals: "partitions: N total, N pruned, N to open"
    let totals = stdout1
        .lines()
        .find(|l| l.trim_start().starts_with("partitions: "))
        .expect("plan totals line");
    let nums: Vec<u64> = totals
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    let [total, pruned, open] = nums[..] else {
        panic!("unexpected totals line {totals:?}");
    };
    assert_eq!(pruned + open, total, "plan does not reconcile: {totals}");
    assert!(pruned > 0, "mid-dataset --from prunes something: {totals}");
    assert!(open > 0, "mid-dataset --from keeps something: {totals}");
    assert!(
        stdout1.contains("pruned by time_from:"),
        "pruning attributed to a zone-map dimension:\n{stdout1}"
    );

    // the post-run profile lands on stderr and agrees with the plan
    assert!(
        stderr1.contains(&format!("EXPLAIN profile: {open} partition(s) decoded")),
        "profile decode count matches the plan:\n{stderr1}"
    );
    assert!(
        stderr1.contains(&format!(
            "{total} partition(s): {pruned} pruned, {open} scanned"
        )),
        "ScanStats summary agrees with the plan:\n{stderr1}"
    );

    let _ = std::fs::remove_dir_all(&wh);
}

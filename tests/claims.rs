//! End-to-end assertions of the paper's qualitative claims (the
//! "shape" inventory in DESIGN.md §4), run through the full
//! generate → capture → ingest → analyze pipeline.
//!
//! Expensive dataset runs are shared across tests via `OnceLock`.

use asdb::cloud::Provider;
use dns_wire::types::RType;
use dnscentral_core::experiments::{run_dataset, DatasetRun};
use dnscentral_core::{ednssize, junk, metrics, transport};
use simnet::profile::Vantage;
use simnet::scenario::Scale;
use std::net::IpAddr;
use std::sync::OnceLock;

fn nl2020() -> &'static DatasetRun {
    static RUN: OnceLock<DatasetRun> = OnceLock::new();
    RUN.get_or_init(|| run_dataset(Vantage::Nl, 2020, Scale::medium(), 42))
}

fn nz2020() -> &'static DatasetRun {
    static RUN: OnceLock<DatasetRun> = OnceLock::new();
    RUN.get_or_init(|| run_dataset(Vantage::Nz, 2020, Scale::small(), 42))
}

fn broot2020() -> &'static DatasetRun {
    static RUN: OnceLock<DatasetRun> = OnceLock::new();
    RUN.get_or_init(|| run_dataset(Vantage::BRoot, 2020, Scale::small(), 42))
}

fn nl2018() -> &'static DatasetRun {
    static RUN: OnceLock<DatasetRun> = OnceLock::new();
    RUN.get_or_init(|| run_dataset(Vantage::Nl, 2018, Scale::small(), 42))
}

/// Claim 1 (Figure 1): five CPs carry ≳30% of ccTLD queries but under
/// 10% at B-Root, and the root share grows over the years.
#[test]
fn claim1_cloud_concentration() {
    let nl = nl2020().analysis.cloud_share();
    assert!((0.28..0.40).contains(&nl), ".nl cloud share {nl}");
    let nz = nz2020().analysis.cloud_share();
    assert!((0.24..0.34).contains(&nz), ".nz cloud share {nz}");
    let root = broot2020().analysis.cloud_share();
    assert!((0.06..0.12).contains(&root), "B-Root cloud share {root}");
    assert!(nl > root * 3.0, "ccTLD concentration dwarfs the root's");
}

/// Claim 1b: the vantage hears from tens of thousands of ASes (scaled),
/// yet 5 CPs (20 ASes) hold ~1/3 of the traffic — the centralization
/// headline.
#[test]
fn claim1b_many_ases_few_winners() {
    let a = &nl2020().analysis;
    assert!(
        a.ases.count() > 500,
        "AS diversity (scaled): {}",
        a.ases.count()
    );
    // at the root, the first cloud AS is NOT the top source
    let rank = broot2020()
        .analysis
        .first_cloud_as_rank()
        .expect("cloud AS seen");
    assert!(
        rank >= 2,
        "ISPs outrank the first cloud AS at B-Root (rank {rank})"
    );
}

/// Claim 2 (Tables 4/7): Google Public DNS carries 84-90% of Google's
/// queries from a small minority of its resolver population, at both
/// ccTLDs — so the .nl/.nz difference isn't a service-mix artifact.
#[test]
fn claim2_google_public_split() {
    for run in [nl2020(), nz2020()] {
        let g = metrics::google_split(&run.id, &run.analysis);
        assert!(
            (0.82..0.92).contains(&g.public_query_ratio),
            "{}: public query ratio {}",
            run.id,
            g.public_query_ratio
        );
        assert!(
            g.public_resolver_ratio < 0.30,
            "{}: few resolvers carry it: {}",
            run.id,
            g.public_resolver_ratio
        );
    }
    // and Google's overall share is larger at .nl than .nz (Figure 1)
    let nl_share = nl2020().analysis.provider_share(Provider::Google);
    let nz_share = nz2020().analysis.provider_share(Provider::Google);
    assert!(
        nl_share > nz_share,
        "google .nl {nl_share} vs .nz {nz_share}"
    );
}

/// Claim 3 (Figure 2): between 2018 and 2020 the NS share jumps for the
/// Q-min adopters (Google, Cloudflare, Facebook) but not Microsoft; the
/// NS queries are overwhelmingly minimized-form names.
#[test]
fn claim3_qmin_ns_jump() {
    let old = &nl2018().analysis;
    let new = &nl2020().analysis;
    for p in [Provider::Google, Provider::Cloudflare, Provider::Facebook] {
        let before = old.provider(Some(p)).qtype_ratio(RType::Ns);
        let after = new.provider(Some(p)).qtype_ratio(RType::Ns);
        assert!(
            after > before + 0.20,
            "{p}: NS share {before} -> {after} must jump"
        );
        assert!(
            new.provider(Some(p)).minimized_ns_ratio() > 0.8,
            "{p}: post-deployment NS queries are minimized"
        );
    }
    let ms_before = old
        .provider(Some(Provider::Microsoft))
        .qtype_ratio(RType::Ns);
    let ms_after = new
        .provider(Some(Provider::Microsoft))
        .qtype_ratio(RType::Ns);
    assert!(
        (ms_after - ms_before).abs() < 0.05,
        "Microsoft never adopts: {ms_before} -> {ms_after}"
    );
    // 2018: A dominates everywhere (Figure 2's first panels)
    for p in asdb::cloud::ALL_PROVIDERS {
        let a_share = old.provider(Some(p)).qtype_ratio(RType::A);
        let ns_share = old.provider(Some(p)).qtype_ratio(RType::Ns);
        assert!(a_share > ns_share, "{p} 2018: A {a_share} > NS {ns_share}");
    }
}

/// Claim 3b: Amazon's Q-min signal appears at .nz (w2020) but not .nl.
#[test]
fn claim3b_amazon_nz_only() {
    let nz = nz2020()
        .analysis
        .provider(Some(Provider::Amazon))
        .qtype_ratio(RType::Ns);
    let nl = nl2020()
        .analysis
        .provider(Some(Provider::Amazon))
        .qtype_ratio(RType::Ns);
    assert!(nz > 0.15, "Amazon NS at .nz w2020: {nz}");
    assert!(nl < 0.10, "Amazon NS at .nl w2020: {nl}");
}

/// Claim 4 (Figure 2d / §4.2.2): every CP but Microsoft shows DNSSEC
/// validation; Cloudflare queries far more DS than DNSKEY; Google's DS
/// share is diluted by its non-validating cloud traffic.
#[test]
fn claim4_dnssec_validation() {
    let a = &nl2020().analysis;
    for p in [
        Provider::Google,
        Provider::Amazon,
        Provider::Facebook,
        Provider::Cloudflare,
    ] {
        assert!(
            a.provider(Some(p)).qtype.get(&RType::Ds) > 0,
            "{p} validates (sends DS)"
        );
    }
    assert_eq!(
        a.provider(Some(Provider::Microsoft)).qtype.get(&RType::Ds),
        0,
        "the one non-validating CP"
    );
    let cf = a.provider(Some(Provider::Cloudflare));
    assert!(
        cf.qtype.get(&RType::Ds) > 10 * cf.qtype.get(&RType::Dnskey).max(1),
        "Cloudflare DS >> DNSKEY"
    );
    let g_ds = a.provider(Some(Provider::Google)).qtype_ratio(RType::Ds);
    let cf_ds = cf.qtype_ratio(RType::Ds);
    assert!(
        g_ds < cf_ds / 2.0,
        "Google's DS share diluted: {g_ds} vs {cf_ds}"
    );
}

/// Claim 5 (Figure 4): at the root, every CP's junk ratio sits below
/// the vantage-wide 80%; at the ccTLDs, rates are comparable.
#[test]
fn claim5_junk_profiles() {
    let root = junk::junk_report("broot-w2020", &broot2020().analysis);
    assert!(
        (0.70..0.90).contains(&root.overall),
        "root junk {}",
        root.overall
    );
    assert!(
        root.all_providers_below_overall(),
        "{:?}",
        root.per_provider
    );
    let nl = junk::junk_report("nl-w2020", &nl2020().analysis);
    assert!(
        (0.08..0.20).contains(&nl.overall),
        ".nl junk {}",
        nl.overall
    );
    for (p, ratio) in &nl.per_provider {
        assert!((0.02..0.20).contains(ratio), "{p}: ccTLD junk {ratio}");
    }
}

/// Claim 6 (Tables 5/6): Amazon and Microsoft are ~all-IPv4;
/// Google/Cloudflare are roughly even; Facebook majority-IPv6 by 2020 —
/// and resolver-population shares track traffic shares.
#[test]
fn claim6_family_profiles() {
    let t = transport::transport_report("nl-w2020", &nl2020().analysis);
    let row = |name: &str| t.rows.iter().find(|r| r.provider == name).unwrap();
    assert!(
        row("Amazon").ipv6 < 0.08,
        "Amazon v6 {}",
        row("Amazon").ipv6
    );
    assert!(
        row("Microsoft").ipv6 < 0.03,
        "Microsoft v6 {}",
        row("Microsoft").ipv6
    );
    assert!(
        (0.35..0.60).contains(&row("Google").ipv6),
        "Google v6 {}",
        row("Google").ipv6
    );
    assert!(
        (0.35..0.60).contains(&row("Cloudflare").ipv6),
        "Cloudflare v6 {}",
        row("Cloudflare").ipv6
    );
    assert!(
        row("Facebook").ipv6 > 0.60,
        "Facebook v6 {}",
        row("Facebook").ipv6
    );
    // 2018: Facebook was not yet majority-v6
    let t18 = transport::transport_report("nl-w2018", &nl2018().analysis);
    let fb18 = t18.rows.iter().find(|r| r.provider == "Facebook").unwrap();
    assert!(fb18.ipv6 < 0.60, "Facebook 2018 v6 {}", fb18.ipv6);

    // Table 6: population shares correlate with traffic shares
    let amazon = transport::resolver_families(&nl2020().analysis, Provider::Amazon);
    assert!(
        (0.005..0.05).contains(&amazon.v6_share),
        "Amazon v6 pop {}",
        amazon.v6_share
    );
    assert!(
        amazon.v6_traffic_share < 0.08,
        "small v6 pop, small v6 traffic: {}",
        amazon.v6_traffic_share
    );
    let ms = transport::resolver_families(&nl2020().analysis, Provider::Microsoft);
    assert!(
        ms.v6_traffic_share < amazon.v6_traffic_share,
        "Microsoft's v6 resolvers are nearly idle"
    );
}

/// Claim 6b (Table 5, transport): only Facebook uses TCP heavily;
/// Google and Microsoft effectively never do.
#[test]
fn claim6b_tcp_profiles() {
    let t = transport::transport_report("nl-w2020", &nl2020().analysis);
    let row = |name: &str| t.rows.iter().find(|r| r.provider == name).unwrap();
    assert!(
        row("Facebook").tcp > 0.08,
        "Facebook TCP {}",
        row("Facebook").tcp
    );
    assert!(row("Google").tcp < 0.01);
    assert!(row("Microsoft").tcp < 0.01);
    assert!(row("Amazon").tcp < 0.10);
}

/// Claim 7 (Figures 5/8): Facebook's dominant site sends no TCP; sites
/// with a large v6-minus-v4 RTT gap prefer IPv4; the dual-stack join
/// works through PTR names.
#[test]
fn claim7_facebook_sites() {
    let run = nl2020();
    let dual = &run.dualstack;
    assert_eq!(dual.site_count(), 13, "13 sites identified via PTR");
    assert!(
        dual.dual_stack_resolvers() > 50,
        "join found dual-stack resolvers"
    );
    assert!(!dual.no_ptr.is_empty(), "a few addresses lack PTR records");

    let server_a: IpAddr = run.spec.servers[0].v4.into();
    let report = run.dualstack.report_for_server(server_a);
    let loc1 = &report[0];
    assert!(loc1.queries_v4 + loc1.queries_v6 > 0);
    assert_eq!(
        (loc1.median_rtt_v4_us, loc1.median_rtt_v6_us),
        (None, None),
        "the dominant site sends no TCP"
    );
    // v4-preferring sites are exactly those with a big v6 RTT penalty
    for site in &report {
        if let (Some(r4), Some(r6)) = (site.median_rtt_v4_us, site.median_rtt_v6_us) {
            if r6 > r4 + 30_000 {
                assert!(
                    site.v6_ratio < 0.5,
                    "{}: v6 penalty {}us but ratio {}",
                    site.site,
                    r6 - r4,
                    site.v6_ratio
                );
            } else if r4 + 10_000 > r6 {
                assert!(
                    site.v6_ratio > 0.5,
                    "{}: no v6 penalty, ratio {}",
                    site.site,
                    site.v6_ratio
                );
            }
        }
    }
}

/// Claim 8 (Figure 6 / §4.4): ~1/3 of Facebook's EDNS sizes sit at 512
/// vs Google concentrated at 1232+; Facebook's truncation rate exceeds
/// Google's and Microsoft's by orders of magnitude.
#[test]
fn claim8_edns_and_truncation() {
    let run = nl2020();
    let fb = ednssize::edns_report_for(&run.analysis, Provider::Facebook);
    let g = ednssize::edns_report_for(&run.analysis, Provider::Google);
    let ms = ednssize::edns_report_for(&run.analysis, Provider::Microsoft);
    assert!(
        (0.22..0.42).contains(&fb.fraction_at_most(512)),
        "FB at 512: {}",
        fb.fraction_at_most(512)
    );
    assert!(
        g.fraction_at_most(512) < 0.02,
        "Google at 512: {}",
        g.fraction_at_most(512)
    );
    assert!(
        (0.15..0.35).contains(&g.fraction_at_most(1232)),
        "Google at 1232: {}",
        g.fraction_at_most(1232)
    );
    assert!(
        fb.truncation_ratio > 0.10 && fb.truncation_ratio < 0.30,
        "FB truncation {}",
        fb.truncation_ratio
    );
    assert!(
        g.truncation_ratio < 0.005,
        "Google truncation {}",
        g.truncation_ratio
    );
    assert!(
        ms.truncation_ratio < 0.005,
        "Microsoft truncation {}",
        ms.truncation_ratio
    );
    assert!(
        fb.truncation_ratio > 50.0 * g.truncation_ratio.max(1e-6),
        "orders of magnitude apart"
    );
}

/// Table 3 shape: traffic grows year over year at every vantage; the
/// valid fraction matches the paper's targets.
#[test]
fn table3_growth_and_validity() {
    let nl18 = nl2018();
    let nl20 = nl2020();
    assert!(nl20.analysis.total_queries > nl18.analysis.total_queries);
    let v18 = nl18.analysis.valid_fraction();
    let v20 = nl20.analysis.valid_fraction();
    assert!((v18 - 0.896).abs() < 0.03, "w2018 valid {v18}");
    assert!((v20 - 0.864).abs() < 0.03, "w2020 valid {v20}");
    let root = broot2020().analysis.valid_fraction();
    assert!((root - 0.20).abs() < 0.05, "B-Root 2020 valid {root}");
}

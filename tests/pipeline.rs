//! Pipeline integrity: determinism, capture round-trips, ingest
//! accounting, and robustness against damaged captures.

use dnscentral_core::experiments::{
    analyze_capture, generate_capture, generate_capture_sharded, temp_capture_path,
};
use dnscentral_core::pipeline::{run_spec_with, PipelineOpts};
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};
use std::fs;

/// Same (spec, scale, seed) ⇒ byte-identical capture files.
#[test]
fn generation_is_deterministic_via_files() {
    let spec = dataset(Vantage::Nz, 2019);
    let p1 = temp_capture_path("det-a", 5);
    let p2 = temp_capture_path("det-b", 5);
    generate_capture(&spec, Scale::tiny(), 5, &p1).unwrap();
    generate_capture(&spec, Scale::tiny(), 5, &p2).unwrap();
    let a = fs::read(&p1).unwrap();
    let b = fs::read(&p2).unwrap();
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p2);
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// `--shards=N` writes the same bytes as `--shards=1` to disk.
#[test]
fn sharded_generation_matches_on_disk() {
    let spec = dataset(Vantage::BRoot, 2019);
    let p1 = temp_capture_path("shard-one", 7);
    let p4 = temp_capture_path("shard-four", 7);
    generate_capture_sharded(&spec, Scale::tiny(), 7, &p1, 1).unwrap();
    generate_capture_sharded(&spec, Scale::tiny(), 7, &p4, 4).unwrap();
    let a = fs::read(&p1).unwrap();
    let b = fs::read(&p4).unwrap();
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p4);
    assert!(!a.is_empty());
    assert_eq!(a, b, "4-shard capture diverged from single-threaded");
}

/// The streamed (no intermediate file) path and the kept-capture disk
/// path agree on every ingest counter and analysis aggregate.
#[test]
fn streamed_and_disk_paths_agree_end_to_end() {
    let spec = dataset(Vantage::Nl, 2020);
    let streamed = run_spec_with(
        spec.clone(),
        Scale::tiny(),
        17,
        &PipelineOpts::with_shards(2),
    );
    let path = temp_capture_path("streamed-vs-disk", 17);
    let disk = run_spec_with(
        spec,
        Scale::tiny(),
        17,
        &PipelineOpts {
            shards: 2,
            keep_capture: Some(path.clone()),
            ..Default::default()
        },
    );
    assert!(path.exists());
    let _ = fs::remove_file(&path);
    assert_eq!(streamed.ingest_stats, disk.ingest_stats);
    assert_eq!(streamed.analysis.total_queries, disk.analysis.total_queries);
    assert_eq!(streamed.analysis.valid_queries, disk.analysis.valid_queries);
    assert_eq!(streamed.analysis.cloud_share(), disk.analysis.cloud_share());
    assert_eq!(
        streamed.analysis.diurnal_peak_trough(),
        disk.analysis.diurnal_peak_trough()
    );
}

/// Generator counters equal analyzer counters across the file boundary.
#[test]
fn generator_and_analyzer_agree() {
    let spec = dataset(Vantage::Nl, 2019);
    let path = temp_capture_path("agree", 9);
    let gen = generate_capture(&spec, Scale::tiny(), 9, &path).unwrap();
    let (analysis, _, ingest) = analyze_capture(&spec, Scale::tiny(), 9, &path).unwrap();
    let _ = fs::remove_file(&path);
    assert_eq!(gen.queries, ingest.rows);
    assert_eq!(gen.queries + gen.responses, ingest.frames);
    assert_eq!(analysis.total_queries, gen.queries);
    // junk counted identically on both sides
    let junk_rows = analysis.total_queries - analysis.valid_queries;
    assert_eq!(junk_rows, gen.junk_queries);
    assert_eq!(ingest.malformed, 0);
}

/// A truncated capture file is survivable: the analyzer processes what
/// is intact and flushes in-flight queries, never panicking.
#[test]
fn truncated_capture_is_survivable() {
    let spec = dataset(Vantage::Nz, 2018);
    let path = temp_capture_path("chopped", 3);
    generate_capture(&spec, Scale::tiny(), 3, &path).unwrap();
    let full = fs::read(&path).unwrap();
    fs::write(&path, &full[..full.len() * 2 / 3]).unwrap();
    let (analysis, _, ingest) = analyze_capture(&spec, Scale::tiny(), 3, &path).unwrap();
    let _ = fs::remove_file(&path);
    assert!(analysis.total_queries > 0, "partial data still analyzed");
    assert!(ingest.frames > 0);
    // the torn tail record is counted, not silently treated as EOF
    assert_eq!(ingest.capture_errors, 1, "{ingest:?}");
    assert!(ingest.balanced(), "{ingest:?}");
}

/// Corrupting payload bytes yields counted malformed frames, not
/// failures — and the corrupted frames' transactions surface as
/// unanswered/unmatched rather than vanishing silently.
#[test]
fn corrupted_payloads_are_counted() {
    let spec = dataset(Vantage::Nz, 2018);
    let path = temp_capture_path("corrupt", 4);
    generate_capture(&spec, Scale::tiny(), 4, &path).unwrap();
    let mut bytes = fs::read(&path).unwrap();
    // stomp on a window in the middle of the stream (likely payload area)
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 64] {
        *b ^= 0x5a;
    }
    fs::write(&path, &bytes).unwrap();
    let result = analyze_capture(&spec, Scale::tiny(), 4, &path);
    let _ = fs::remove_file(&path);
    // either the frame framing broke (analyze stops early, Ok) or the
    // payloads failed DNS parsing (malformed counted); both acceptable,
    // panics are not.
    if let Ok((_, _, ingest)) = result {
        assert!(ingest.frames > 0);
    }
}

/// Different seeds produce statistically similar but byte-different
/// datasets (seed sensitivity without calibration drift).
#[test]
fn seeds_vary_bytes_not_calibration() {
    let spec = dataset(Vantage::Nz, 2020);
    let p1 = temp_capture_path("seed-a", 100);
    let p2 = temp_capture_path("seed-b", 101);
    generate_capture(&spec, Scale::tiny(), 100, &p1).unwrap();
    generate_capture(&spec, Scale::tiny(), 101, &p2).unwrap();
    let b1 = fs::read(&p1).unwrap();
    let b2 = fs::read(&p2).unwrap();
    assert_ne!(b1, b2);
    let (a1, _, _) = analyze_capture(&spec, Scale::tiny(), 100, &p1).unwrap();
    let (a2, _, _) = analyze_capture(&spec, Scale::tiny(), 101, &p2).unwrap();
    let _ = fs::remove_file(&p1);
    let _ = fs::remove_file(&p2);
    assert!(
        (a1.cloud_share() - a2.cloud_share()).abs() < 0.05,
        "cloud share stable across seeds: {} vs {}",
        a1.cloud_share(),
        a2.cloud_share()
    );
    assert!((a1.valid_fraction() - a2.valid_fraction()).abs() < 0.05);
}

/// A small seed sweep: invariants hold for arbitrary seeds, not just
/// the blessed ones used elsewhere.
#[test]
fn seed_sweep_invariants() {
    for seed in [101u64, 202, 303, 404, 505] {
        let run = dnscentral_core::experiments::run_dataset(Vantage::Nz, 2020, Scale::tiny(), seed);
        assert_eq!(run.ingest_stats.malformed, 0, "seed {seed}");
        assert_eq!(run.ingest_stats.capture_errors, 0, "seed {seed}");
        assert!(
            run.ingest_stats.balanced(),
            "seed {seed}: {:?}",
            run.ingest_stats
        );
        assert_eq!(run.gen_stats.queries, run.ingest_stats.rows, "seed {seed}");
        let share = run.analysis.cloud_share();
        assert!((0.2..0.4).contains(&share), "seed {seed}: share {share}");
        let valid = run.analysis.valid_fraction();
        assert!((0.6..0.75).contains(&valid), "seed {seed}: valid {valid}");
    }
}

/// The engine shapes load diurnally; the analysis sees it.
#[test]
fn diurnal_shape_is_visible() {
    let run = dnscentral_core::experiments::run_dataset(Vantage::Nl, 2019, Scale::tiny(), 8);
    let ratio = run.analysis.diurnal_peak_trough();
    assert!(
        (1.2..3.0).contains(&ratio),
        "peak/trough {ratio} (cos-shaped load, +-35%)"
    );
    // all 24 hours carry traffic in a week-long window
    for h in 0..24u32 {
        assert!(run.analysis.hourly.get(&h) > 0, "hour {h} empty");
    }
}

/// All 9 datasets generate and analyze without error at tiny scale.
#[test]
fn all_nine_datasets_run() {
    for vantage in [Vantage::Nl, Vantage::Nz, Vantage::BRoot] {
        for year in [2018u16, 2019, 2020] {
            let run = dnscentral_core::experiments::run_dataset(vantage, year, Scale::tiny(), 1);
            assert!(run.analysis.total_queries > 1000, "{}", run.id);
            assert!(run.analysis.cloud_share() > 0.0, "{}", run.id);
            assert_eq!(run.ingest_stats.malformed, 0, "{}", run.id);
            assert_eq!(run.ingest_stats.capture_errors, 0, "{}", run.id);
            assert!(
                run.ingest_stats.balanced(),
                "{}: {:?}",
                run.id,
                run.ingest_stats
            );
        }
    }
}

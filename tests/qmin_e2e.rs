//! End-to-end Figure 3 reproduction: the 18-month Google series against
//! both ccTLDs, the Dec-2019 change-point detection, and the Feb-2020
//! `.nz` cyclic-dependency incident.

use dnscentral_core::experiments::run_monthly_series;
use dnscentral_core::qmin::{detect_cusum, detect_threshold, ChangePoint};
use simnet::profile::Vantage;
use simnet::scenario::Scale;
use std::sync::OnceLock;

fn nl_series() -> &'static Vec<dnscentral_core::qmin::MonthlySample> {
    static S: OnceLock<Vec<dnscentral_core::qmin::MonthlySample>> = OnceLock::new();
    S.get_or_init(|| run_monthly_series(Vantage::Nl, Scale::small(), 42))
}

fn nz_series() -> &'static Vec<dnscentral_core::qmin::MonthlySample> {
    static S: OnceLock<Vec<dnscentral_core::qmin::MonthlySample>> = OnceLock::new();
    S.get_or_init(|| run_monthly_series(Vantage::Nz, Scale::small(), 42))
}

/// The paper's §4.2.1 headline: Google's Q-min deployment is detectable
/// in December 2019, at both ccTLDs, from the NS-share jump plus the
/// minimized-qname verification.
#[test]
fn google_qmin_detected_in_december_2019() {
    for series in [nl_series(), nz_series()] {
        let expected = Some(ChangePoint {
            year: 2019,
            month: 12,
        });
        assert_eq!(detect_cusum(series, 0.05, 0.3), expected, "CUSUM");
        assert_eq!(detect_threshold(series, 0.15), expected, "threshold");
    }
}

/// The series has the paper's shape: flat low NS share through Nov 2019,
/// then NS-dominated; minimized qnames confirm the mechanism.
#[test]
fn series_shape_matches_figure_3() {
    let series = nl_series();
    assert_eq!(series.len(), 18);
    for s in series {
        let deployed = (s.year, s.month) >= (2019, 12);
        if deployed {
            assert!(
                s.ns_share > 0.30,
                "{}-{:02}: NS {}",
                s.year,
                s.month,
                s.ns_share
            );
            assert!(
                s.minimized_ns_share > 0.80,
                "{}-{:02}: minimized {}",
                s.year,
                s.month,
                s.minimized_ns_share
            );
        } else {
            assert!(
                s.ns_share < 0.15,
                "{}-{:02}: NS {}",
                s.year,
                s.month,
                s.ns_share
            );
        }
    }
    // traffic grows across the window (Table 3 trend)
    assert!(series.last().unwrap().total > series.first().unwrap().total);
}

/// Figure 3b: the Feb-2020 `.nz` misconfiguration floods A/AAAA,
/// temporarily depressing the NS share; it recovers by March. `.nl`
/// shows no such dip.
#[test]
fn nz_incident_dips_february_2020() {
    let nz = nz_series();
    let month = |y, m| nz.iter().find(|s| (s.year, s.month) == (y, m)).unwrap();
    let jan = month(2020, 1);
    let feb = month(2020, 2);
    let mar = month(2020, 3);
    assert!(
        feb.address_share > jan.address_share + 0.15,
        "incident A/AAAA bump: jan {} feb {}",
        jan.address_share,
        feb.address_share
    );
    assert!(
        feb.ns_share < jan.ns_share - 0.10,
        "NS diluted in Feb: jan {} feb {}",
        jan.ns_share,
        feb.ns_share
    );
    assert!(
        mar.ns_share > feb.ns_share + 0.10,
        "trend resumes in March: feb {} mar {}",
        feb.ns_share,
        mar.ns_share
    );
    // the total query count also spikes (millions of extra queries)
    assert!(feb.total as f64 > jan.total as f64 * 1.3);

    // .nl, untouched by the incident, stays NS-dominated in Feb
    let nl_feb = nl_series()
        .iter()
        .find(|s| (s.year, s.month) == (2020, 2))
        .unwrap();
    assert!(nl_feb.ns_share > 0.30, ".nl Feb NS {}", nl_feb.ns_share);
}

/// Despite the incident, CUSUM still dates the deployment correctly at
/// `.nz` (the detector-robustness point of the unit suite, end-to-end).
#[test]
fn detection_survives_the_incident() {
    assert_eq!(
        detect_cusum(nz_series(), 0.05, 0.3),
        Some(ChangePoint {
            year: 2019,
            month: 12
        })
    );
}

/// The detector generalizes: every modeled adopter's rollout month is
/// recovered from their own monthly series (Google's is the only date
/// the paper could confirm; the others are the modeled dates recorded
/// in EXPERIMENTS.md).
#[test]
fn all_adopters_dated_correctly() {
    use asdb::cloud::Provider;
    use dnscentral_core::experiments::run_monthly_series_for;
    let cases = [
        (Provider::Cloudflare, Vantage::Nl, (2019, 2)),
        (Provider::Facebook, Vantage::Nl, (2019, 9)),
        (Provider::Amazon, Vantage::Nz, (2020, 2)), // starts Feb 15 2020
    ];
    for (provider, vantage, (y, m)) in cases {
        let series = run_monthly_series_for(vantage, provider, Scale::small(), 42);
        let detected = detect_cusum(&series, 0.05, 0.3)
            .unwrap_or_else(|| panic!("{provider}: no change-point"));
        // mid-month starts may date to the following month
        let got = (detected.year, detected.month);
        let next = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
        assert!(
            got == (y, m) || got == next,
            "{provider}: detected {got:?}, modeled {:?}",
            (y, m)
        );
    }
    // and the non-adopter yields nothing
    let ms = run_monthly_series_for(Vantage::Nl, Provider::Microsoft, Scale::small(), 42);
    assert_eq!(
        detect_cusum(&ms, 0.05, 0.3),
        None,
        "Microsoft never deploys"
    );
}

//! Vendored minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Hand-written over `proc_macro::TokenStream` (no syn/quote — the
//! build has no network access to crates.io). Supports exactly the
//! shapes this workspace uses:
//!
//! - structs with named fields → JSON objects in field order
//! - newtype/tuple structs → transparent value / array
//! - enums with unit variants → the variant name as a string
//! - enums with struct variants → externally tagged
//!   (`{"Variant": {fields...}}`)
//!
//! No `#[serde(...)]` attributes, no generics — the workspace uses
//! neither. Missing `Option` fields deserialize to `None` (a missing
//! key reads as `null`, and `Option` accepts `null`).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// What one container declaration looks like after parsing.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — field count.
    TupleStruct(usize),
    /// `enum E { Unit, Struct { f: F }, Tuple(A) }`.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Parse the container name and shape out of the derive input.
fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // skip attributes (`#[...]`) and visibility/qualifiers up to the
    // `struct` / `enum` keyword
    let kind = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [...]
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                i += 1; // pub / crate / etc.
            }
            TokenTree::Group(_) => i += 1, // pub(crate) scope group
            t => panic!("unexpected token before container keyword: {t}"),
        }
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected container name, found {t}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize): generics are not supported for {name}");
        }
    }
    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g.stream()))
            }
            _ => panic!("unsupported struct shape for {name}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(variants(g.stream()))
            }
            _ => panic!("expected enum body for {name}"),
        }
    };
    (name, shape)
}

/// Split a brace-group body into top-level comma-separated chunks.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().expect("non-empty").push(tok),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Field names of a named-struct body (skipping attrs/docs/vis; the
/// field name is the last ident before the `:`).
fn named_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut name = None;
            for (j, tok) in chunk.iter().enumerate() {
                if let TokenTree::Punct(p) = tok {
                    if p.as_char() == ':' {
                        match &chunk[j - 1] {
                            TokenTree::Ident(id) => name = Some(id.to_string()),
                            t => panic!("expected field name before ':', found {t}"),
                        }
                        break;
                    }
                }
            }
            name.expect("field with ':' type annotation")
        })
        .collect()
}

/// Count the fields of a tuple-struct body: top-level commas + 1.
fn tuple_arity(stream: TokenStream) -> usize {
    split_commas(stream).len()
}

/// Parse enum variants: `Name`, `Name { .. }`, or `Name(..)`.
fn variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .map(|chunk| {
            // skip doc attrs: `#` followed by a bracket group
            let mut toks = chunk.into_iter().peekable();
            let mut name = None;
            let mut kind = VariantKind::Unit;
            while let Some(tok) = toks.next() {
                match tok {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        toks.next(); // the [...] group
                    }
                    TokenTree::Ident(id) => {
                        name = Some(id.to_string());
                        match toks.peek() {
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                kind = VariantKind::Named(named_fields(g.stream()));
                            }
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                kind = VariantKind::Tuple(tuple_arity(g.stream()));
                            }
                            _ => {}
                        }
                        break;
                    }
                    t => panic!("unexpected token in enum variant: {t}"),
                }
            }
            Variant {
                name: name.expect("variant name"),
                kind,
            }
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut b = String::from("let mut __obj = ::serde::Map::new();\n");
            for f in fields {
                let _ = writeln!(
                    b,
                    "__obj.insert({f:?}.to_string(), ::serde::to_value(&self.{f}) \
                     .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?);"
                );
            }
            b.push_str("__serializer.serialize_value(::serde::Value::Object(__obj))");
            b
        }
        Shape::TupleStruct(1) => "__serializer.serialize_value(::serde::to_value(&self.0) \
             .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?)"
            .to_string(),
        Shape::TupleStruct(n) => {
            let mut b = String::from("let mut __arr = ::std::vec::Vec::new();\n");
            for i in 0..*n {
                let _ = writeln!(
                    b,
                    "__arr.push(::serde::to_value(&self.{i}) \
                     .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?);"
                );
            }
            b.push_str("__serializer.serialize_value(::serde::Value::Array(__arr))");
            b
        }
        Shape::Enum(vars) => {
            let mut b = String::from("match self {\n");
            for v in vars {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            b,
                            "{name}::{vn} => __serializer.serialize_value( \
                             ::serde::Value::String({vn:?}.to_string())),"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let bindings = fields.join(", ");
                        let mut arm = format!(
                            "{name}::{vn} {{ {bindings} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n"
                        );
                        for f in fields {
                            let _ = writeln!(
                                arm,
                                "__inner.insert({f:?}.to_string(), ::serde::to_value({f}) \
                                 .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?);"
                            );
                        }
                        let _ = writeln!(
                            arm,
                            "let mut __tag = ::serde::Map::new();\n\
                             __tag.insert({vn:?}.to_string(), ::serde::Value::Object(__inner));\n\
                             __serializer.serialize_value(::serde::Value::Object(__tag))\n}},"
                        );
                        b.push_str(&arm);
                    }
                    VariantKind::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __arr = ::std::vec::Vec::new();\n",
                            bindings.join(", ")
                        );
                        for f in &bindings {
                            let _ = writeln!(
                                arm,
                                "__arr.push(::serde::to_value({f}) \
                                 .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?);"
                            );
                        }
                        let inner = if *n == 1 {
                            "__arr.into_iter().next().expect(\"one field\")".to_string()
                        } else {
                            "::serde::Value::Array(__arr)".to_string()
                        };
                        let _ = writeln!(
                            arm,
                            "let mut __tag = ::serde::Map::new();\n\
                             __tag.insert({vn:?}.to_string(), {inner});\n\
                             __serializer.serialize_value(::serde::Value::Object(__tag))\n}},"
                        );
                        b.push_str(&arm);
                    }
                }
            }
            b.push('}');
            b
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, __serializer: S) \
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut b = format!(
                "let __v = ::serde::Value::deserialize(__deserializer)?;\n\
                 let mut __obj = match __v {{\n\
                 ::serde::Value::Object(m) => m,\n\
                 other => return Err(<D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"expected object for {name}, got {{other:?}}\"))),\n}};\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                let _ = writeln!(
                    b,
                    "{f}: ::serde::from_value(__obj.remove({f:?}) \
                     .unwrap_or(::serde::Value::Null)) \
                     .map_err(|e| <D::Error as ::serde::de::Error>::custom( \
                     format!(\"{name}.{f}: {{e}}\")))?,"
                );
            }
            b.push_str("})");
            b
        }
        Shape::TupleStruct(1) => format!(
            "let __v = ::serde::Value::deserialize(__deserializer)?;\n\
             Ok({name}(::serde::from_value(__v) \
             .map_err(|e| <D::Error as ::serde::de::Error>::custom( \
             format!(\"{name}: {{e}}\")))?))"
        ),
        Shape::TupleStruct(n) => {
            let mut b = format!(
                "let __v = ::serde::Value::deserialize(__deserializer)?;\n\
                 let __arr = match __v {{\n\
                 ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                 other => return Err(<D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"expected {n}-element array for {name}, got {{other:?}}\"))),\n}};\n\
                 let mut __it = __arr.into_iter();\n\
                 Ok({name}(\n"
            );
            for i in 0..*n {
                let _ = writeln!(
                    b,
                    "::serde::from_value(__it.next().expect(\"length checked\")) \
                     .map_err(|e| <D::Error as ::serde::de::Error>::custom( \
                     format!(\"{name}.{i}: {{e}}\")))?,"
                );
            }
            b.push_str("))");
            b
        }
        Shape::Enum(vars) => {
            let mut b = String::from(
                "let __v = ::serde::Value::deserialize(__deserializer)?;\n\
                 match __v {\n\
                 ::serde::Value::String(__s) => match __s.as_str() {\n",
            );
            for v in vars {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    let _ = writeln!(b, "{vn:?} => Ok({name}::{vn}),");
                }
            }
            let _ = writeln!(
                b,
                "other => Err(<D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"unknown {name} variant {{other:?}}\"))),\n}},\n\
                 ::serde::Value::Object(mut __m) => {{\n\
                 let __key = match __m.keys().next() {{\n\
                 Some(k) if __m.len() == 1 => k.clone(),\n\
                 _ => return Err(<D::Error as ::serde::de::Error>::custom(\n\
                 \"expected single-key object for externally tagged {name}\")),\n}};\n\
                 let __inner = __m.remove(&__key).expect(\"key exists\");\n\
                 match __key.as_str() {{"
            );
            for v in vars {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        // `{"Variant": null}` also acceptable
                        let _ = writeln!(b, "{vn:?} if __inner.is_null() => Ok({name}::{vn}),");
                    }
                    VariantKind::Named(fields) => {
                        let mut arm = format!(
                            "{vn:?} => {{\n\
                             let mut __obj = match __inner {{\n\
                             ::serde::Value::Object(m) => m,\n\
                             other => return Err(<D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"expected object for {name}::{vn}, got {{other:?}}\"))),\n}};\n\
                             Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            let _ = writeln!(
                                arm,
                                "{f}: ::serde::from_value(__obj.remove({f:?}) \
                                 .unwrap_or(::serde::Value::Null)) \
                                 .map_err(|e| <D::Error as ::serde::de::Error>::custom( \
                                 format!(\"{name}::{vn}.{f}: {{e}}\")))?,"
                            );
                        }
                        arm.push_str("})\n},");
                        b.push_str(&arm);
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            b,
                            "{vn:?} => Ok({name}::{vn}(::serde::from_value(__inner) \
                             .map_err(|e| <D::Error as ::serde::de::Error>::custom( \
                             format!(\"{name}::{vn}: {{e}}\")))?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let mut arm = format!(
                            "{vn:?} => {{\n\
                             let __arr = match __inner {{\n\
                             ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                             other => return Err(<D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"expected array for {name}::{vn}, got {{other:?}}\"))),\n}};\n\
                             let mut __it = __arr.into_iter();\n\
                             Ok({name}::{vn}(\n"
                        );
                        for i in 0..*n {
                            let _ = writeln!(
                                arm,
                                "::serde::from_value(__it.next().expect(\"length checked\")) \
                                 .map_err(|e| <D::Error as ::serde::de::Error>::custom( \
                                 format!(\"{name}::{vn}.{i}: {{e}}\")))?,"
                            );
                        }
                        arm.push_str("))\n},");
                        b.push_str(&arm);
                    }
                }
            }
            let _ = writeln!(
                b,
                "other => Err(<D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"unknown {name} variant {{other:?}}\"))),\n}}\n}},\n\
                 other => Err(<D::Error as ::serde::de::Error>::custom(\n\
                 format!(\"expected {name}, got {{other:?}}\"))),\n}}"
            );
            b
        }
    };
    let out = format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(__deserializer: D) \
         -> ::core::result::Result<Self, D::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("generated Deserialize impl parses")
}

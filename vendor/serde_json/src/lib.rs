//! Vendored minimal stand-in for `serde_json`, backed by the vendored
//! `serde`'s [`Value`] tree and JSON codec.

#![forbid(unsafe_code)]

pub use serde::{Error, Map, Number, Value};

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string(&serde::to_value(value)?))
}

/// Serialize a value to two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string_pretty(&serde::to_value(value)?))
}

/// Serialize a value into the JSON tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    serde::to_value(value)
}

/// Deserialize a value from the JSON tree.
pub fn from_value<T: for<'de> serde::Deserialize<'de>>(value: Value) -> Result<T, Error> {
    serde::from_value(value)
}

/// Parse JSON text into a value.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(text: &str) -> Result<T, Error> {
    serde::from_value(serde::json::parse(text)?)
}

/// Parse JSON bytes into a value.
pub fn from_slice<T: for<'de> serde::Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let text = core::str::from_utf8(bytes)
        .map_err(|e| <Error as serde::de::Error>::custom(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Build a [`Value`] in place, `serde_json::json!` style.
///
/// Object values and array elements may be arbitrary expressions of
/// any `Serialize` type (nest further `json!` calls for literal
/// sub-objects); serialization failures panic (the macro is used for
/// infallible report structures).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Inner(u32);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Fancy { level: u8, tags: Vec<String> },
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Doc {
        id: String,
        count: Inner,
        ratio: f64,
        kind: Kind,
        unit: Kind,
        maybe: Option<u16>,
        missing: Option<u16>,
        addr: std::net::Ipv4Addr,
        pair: (u16, f64),
        arr: [u64; 2],
    }

    fn sample() -> Doc {
        Doc {
            id: "doc-1".into(),
            count: Inner(7),
            ratio: 0.25,
            kind: Kind::Fancy {
                level: 3,
                tags: vec!["a".into(), "b".into()],
            },
            unit: Kind::Plain,
            maybe: Some(9),
            missing: None,
            addr: std::net::Ipv4Addr::new(194, 0, 28, 53),
            pair: (512, 0.5),
            arr: [10, 20],
        }
    }

    #[test]
    fn derive_roundtrip_through_text() {
        let doc = sample();
        let text = crate::to_string_pretty(&doc).expect("serializes");
        let back: Doc = crate::from_str(&text).expect("parses");
        assert_eq!(back, doc);
        // spot-check representation choices against upstream serde_json
        let v: crate::Value = crate::from_str(&text).expect("as value");
        assert_eq!(v["count"], 7u64, "newtype is transparent");
        assert_eq!(v["unit"], "Plain", "unit variant is a string");
        assert_eq!(v["kind"]["Fancy"]["level"], 3u64, "externally tagged");
        assert_eq!(v["addr"], "194.0.28.53");
        assert!(v["missing"].is_null());
        assert_eq!(v["pair"][0], 512u64);
    }

    #[test]
    fn missing_option_field_reads_none() {
        let back: Doc = crate::from_str(
            r#"{"id":"x","count":1,"ratio":1.5,"kind":"Plain","unit":"Plain",
               "maybe":null,"addr":"1.2.3.4","pair":[1,2.0],"arr":[1,2]}"#,
        )
        .expect("parses without the missing field");
        assert_eq!(back.missing, None);
        assert_eq!(back.maybe, None);
    }

    #[test]
    fn json_macro_shapes() {
        let id = "abc";
        let doc = crate::json!({
            "id": id,
            "nested": crate::json!({ "k": 3 }),
            "list": [1, 2, 3],
            "null_it": crate::Value::Null,
            "typed": sample().pair,
        });
        assert_eq!(doc["id"], "abc");
        assert_eq!(doc["nested"]["k"], 3);
        assert_eq!(doc["list"].as_array().unwrap().len(), 3);
        assert!(doc["null_it"].is_null());
        assert_eq!(doc["typed"][0], 512u64);
    }
}

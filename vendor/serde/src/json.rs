//! JSON text emit/parse for [`Value`].

use crate::value::{Map, Number, Value};
use crate::Error;
use core::fmt::Write as _;

/// Compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    emit(v, None, 0, &mut out);
    out
}

/// Two-space-indented JSON (matching `serde_json::to_string_pretty`).
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    emit(v, Some(2), 0, &mut out);
    out
}

fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => emit_number(n, out),
        Value::String(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn emit_number(n: &Number, out: &mut String) {
    match *n {
        Number::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Int(v) => {
            let _ = write!(out, "{v}");
        }
        // {:?} on f64 is shortest-roundtrip with a ".0" on integral
        // values — the same shape serde_json prints
        Number::Float(v) if v.is_finite() => {
            let _ = write!(out, "{v:?}");
        }
        Number::Float(_) => out.push_str("null"),
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error(format!("expected {lit:?} at byte {pos}", pos = *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => expect(b, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected ':' at byte {}", *pos)));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // surrogate pair: \uD8xx\uDCxx
                            if b.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err(Error("lone high surrogate".into()));
                            }
                            let lo = parse_hex4(b, *pos + 3)?;
                            *pos += 6;
                            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                            char::from_u32(code)
                                .ok_or_else(|| Error("bad surrogate pair".into()))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| Error("bad \\u escape".into()))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error(format!("bad escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar; the input is a &str so
                // boundaries are valid
                let rest =
                    core::str::from_utf8(&b[*pos..]).map_err(|_| Error("invalid UTF-8".into()))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, Error> {
    let chunk = b
        .get(at..at + 4)
        .ok_or_else(|| Error("truncated \\u escape".into()))?;
    let s = core::str::from_utf8(chunk).map_err(|_| Error("bad \\u escape".into()))?;
    u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = core::str::from_utf8(&b[start..*pos])
        .map_err(|_| Error("invalid UTF-8 in number".into()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::UInt(v)));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Number(Number::Int(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::Float(v)))
        .map_err(|_| Error(format!("bad number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text =
            r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "x\ny A"}, "d": 18446744073709551615}"#;
        let v = parse(text).expect("parses");
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["b"]["c"], "x\ny A");
        assert_eq!(v["d"].as_u64(), Some(u64::MAX));
        let back = parse(&to_string(&v)).expect("reparses");
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(parse(&pretty).expect("pretty reparses"), v);
    }

    #[test]
    fn float_prints_like_serde_json() {
        assert_eq!(to_string(&Value::from(1.0)), "1.0");
        assert_eq!(to_string(&Value::from(0.45)), "0.45");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}

//! Vendored minimal stand-in for `serde` (+ the JSON data model that
//! `serde_json` re-exports).
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of serde it uses: `Serialize`/`Deserialize`
//! traits (including hand-written impls generic over
//! `Serializer`/`Deserializer`), the derive macros, and a JSON
//! `Value` with emit/parse. Unlike upstream's streaming data model,
//! everything here routes through [`Value`] — all workspace types are
//! small config/report structures, so the intermediate tree costs
//! nothing observable.
//!
//! Representation matches `serde_json` where the workspace depends on
//! it: structs are objects in field order, newtype structs are
//! transparent, unit enum variants are strings, struct variants are
//! externally tagged (`{"Variant": {...}}`), `Option` is
//! null-or-value with missing fields reading as `None`, and IP
//! addresses are display strings.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;
mod value;

pub use value::{Map, Number, Value};

/// Serialization-side error plumbing.
pub mod ser {
    use core::fmt::Display;

    /// The trait every `Serializer::Error` implements.
    pub trait Error: Sized + Display {
        /// Build an error from any message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error plumbing.
pub mod de {
    use core::fmt::Display;

    /// The trait every `Deserializer::Error` implements.
    pub trait Error: Sized + Display {
        /// Build an error from any message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// The concrete error produced by [`to_value`] / [`from_value`].
#[derive(Debug, Clone)]
pub struct Error(pub(crate) String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// A format backend. In this vendored serde the only backend is the
/// in-memory [`Value`] tree; custom `Serialize` impls drive it through
/// the same generic surface upstream exposes.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type, constructible from messages.
    type Error: ser::Error;

    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Serialize an already-built JSON tree (the workhorse the derive
    /// macro and all container impls feed).
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// A format backend for deserialization; yields the [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type, constructible from messages.
    type Error: de::Error;

    /// Surrender the underlying JSON tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can serialize itself.
pub trait Serialize {
    /// Serialize into the given backend.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can deserialize itself.
pub trait Deserialize<'de>: Sized {
    /// Deserialize from the given backend.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The [`Serializer`] that builds a [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }

    fn serialize_value(self, v: Value) -> Result<Value, Error> {
        Ok(v)
    }
}

/// The [`Deserializer`] that reads back a [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Serialize any value to the JSON tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, Error> {
    v.serialize(ValueSerializer)
}

/// Deserialize any value from the JSON tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(v: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(v))
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

// ---- Serialize impls for std types ----------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Number(Number::UInt(*self as u64)))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Number(Number::Int(*self as i64)))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Number(Number::Float(*self)))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Number(Number::Float(*self as f64)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => v.serialize(s),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(ser::Error::custom)?);
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let out = vec![
                    $(to_value(&self.$n).map_err(|e| ser::Error::custom(e))?,)+
                ];
                s.serialize_value(Value::Array(out))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.to_string(), to_value(v).map_err(ser::Error::custom)?);
        }
        s.serialize_value(Value::Object(map))
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl Serialize for std::net::IpAddr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

// ---- Deserialize impls for std types --------------------------------

macro_rules! de_num {
    ($($t:ty : $conv:ident),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                match &v {
                    Value::Number(n) => n.$conv().map(|x| x as $t).ok_or_else(|| {
                        de::Error::custom(format!(
                            "number {v:?} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    _ => Err(de::Error::custom(format!(
                        "expected number, got {v:?}"
                    ))),
                }
            }
        }
    )*};
}
de_num!(
    u8: as_u64, u16: as_u64, u32: as_u64, u64: as_u64, usize: as_u64,
    i8: as_i64, i16: as_i64, i32: as_i64, i64: as_i64, isize: as_i64
);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match &v {
            Value::Number(n) => Ok(n.as_f64_lossy()),
            _ => Err(de::Error::custom(format!("expected number, got {v:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            v => Err(de::Error::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::String(s) => Ok(s),
            v => Err(de::Error::custom(format!("expected string, got {v:?}"))),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => from_value::<T>(v).map(Some).map_err(de::Error::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value::<T>(v).map_err(de::Error::custom))
                .collect(),
            v => Err(de::Error::custom(format!("expected array, got {v:?}"))),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let items = match v {
                    Value::Array(items) if items.len() == $len => items,
                    other => {
                        return Err(de::Error::custom(format!(
                            "expected {}-tuple array, got {other:?}",
                            $len
                        )))
                    }
                };
                let mut it = items.into_iter();
                Ok(($(
                    from_value::<$t>(it.next().expect("length checked"))
                        .map_err(|e| de::Error::custom(format!("tuple slot {}: {e}", $n)))?,
                )+))
            }
        }
    )*};
}
de_tuple! {
    (1, 0 TA)
    (2, 0 TA, 1 TB)
    (3, 0 TA, 1 TB, 2 TC)
    (4, 0 TA, 1 TB, 2 TC, 3 TD)
}

macro_rules! de_fromstr {
    ($($t:ty : $what:literal),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let s = String::deserialize(d)?;
                s.parse().map_err(|_| {
                    de::Error::custom(format!("invalid {}: {s:?}", $what))
                })
            }
        }
    )*};
}
de_fromstr!(
    std::net::Ipv4Addr: "IPv4 address",
    std::net::Ipv6Addr: "IPv6 address",
    std::net::IpAddr: "IP address"
);

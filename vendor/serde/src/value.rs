//! The JSON tree: [`Value`], [`Number`], and the insertion-ordered
//! [`Map`] behind JSON objects.

use core::fmt;
use core::ops::Index;

/// Any JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object (field order preserved).
    Object(Map),
}

/// A JSON number, tagged by how it was produced/parsed.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    UInt(u64),
    /// Signed integer (used for negatives).
    Int(i64),
    /// Anything with a fraction or exponent.
    Float(f64),
}

impl Number {
    /// As u64 if representable exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::UInt(v) => Some(v),
            Number::Int(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// As i64 if representable exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Int(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// As f64, always (integers convert).
    pub fn as_f64_lossy(&self) -> f64 {
        match *self {
            Number::UInt(v) => v as f64,
            Number::Int(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // one side integral i64, other not: equal only if both
                // map to the same u64 or float comparison succeeds
            }
        }
        if let (Some(a), Some(b)) = (self.as_u64(), other.as_u64()) {
            return a == b;
        }
        self.as_f64_lossy() == other.as_f64_lossy()
    }
}

/// An insertion-ordered string-keyed map (JSON object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert (or replace) a field, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(core::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Remove and return a field.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Field names in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as f64 (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64_lossy()),
            _ => None,
        }
    }

    /// Numeric payload as u64, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric payload as i64, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Non-panicking indexing (objects by key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => Number::from(*other) == *n,
                    _ => false,
                }
            }
        }
    )*};
}
eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! num_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                Number::UInt(v as u64)
            }
        }
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::UInt(v as u64))
            }
        }
    )*};
}
num_from_uint!(u8, u16, u32, u64, usize);

macro_rules! num_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                Number::Int(v as i64)
            }
        }
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}
num_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Number {
    fn from(v: f64) -> Number {
        Number::Float(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl fmt::Display for Value {
    /// Compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_string(self))
    }
}

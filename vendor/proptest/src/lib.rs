//! Vendored minimal stand-in for `proptest`.
//!
//! Offline build: the workspace vendors the narrow property-testing
//! surface its tests use — the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_filter`, range and `any::<T>()` strategies, tuple
//! composition, `prop::collection::vec`, `prop::option::of`,
//! `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Unlike upstream there is no shrinking and no failure persistence:
//! cases are generated from a per-case deterministic seed, and the
//! first failing case panics with the rendered assertion message. For
//! these tests (codec roundtrips, structural laws) that trades
//! counterexample minimality for zero dependencies.

#![forbid(unsafe_code)]

use std::fmt;

pub mod strategy;

/// Error raised by a failing (or rejected) test case body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case could not be generated/was filtered out.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure from any message.
    pub fn fail<T: fmt::Display>(msg: T) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// Build a rejection from any message.
    pub fn reject<T: fmt::Display>(msg: T) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

pub mod test_runner {
    /// Runner knobs; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // upstream defaults to 256; 64 keeps the heavier
            // simulation-backed properties fast while still sweeping
            // the input space every run
            ProptestConfig { cases: 64 }
        }
    }
}

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Drive `cases` deterministic generated inputs through `body`
/// (the expansion target of [`proptest!`]).
pub fn run_cases<F>(config: test_runner::ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;
    // deterministic, but decorrelated across properties by name
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut rejected = 0u32;
    let mut case = 0u32;
    let mut attempts = 0u32;
    while case < config.cases {
        attempts += 1;
        if attempts > config.cases.saturating_mul(20) + 1000 {
            panic!("property {name}: too many rejected cases ({rejected})");
        }
        let mut rng = TestRng::seed_from_u64(h ^ (attempts as u64).wrapping_mul(0x9e37));
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case {case}: {msg}")
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::strategy::collection;
        pub use crate::strategy::option;
    }
}

/// Define property tests (vendored subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l
            )));
        }
    }};
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

//! Value-generation strategies (vendored subset: generation only, no
//! shrink trees).

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred` (regenerating, with a
    /// retry bound).
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Keep only values `f` maps to `Some` (regenerating, with a
    /// retry bound).
    fn prop_filter_map<R, F, U>(self, reason: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            reason: reason.into(),
            f,
        }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy for storage in heterogeneous collections
/// (the expansion target of `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// `&str` as a strategy: the pattern is a regex-subset — a sequence of
/// literal characters and `[...]` character classes (with `a-z` ranges),
/// each optionally quantified by `{m}`, `{m,n}`, `?`, `*`, or `+`
/// (unbounded quantifiers capped at 8 repeats). This covers the
/// hostname-shaped patterns the workspace's property tests use without
/// pulling in a regex engine.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // one atom: a char class or a literal (possibly escaped)
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let inner = &chars[i + 1..close];
            i = close + 1;
            expand_class(inner, pattern)
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // optional quantifier
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo: usize = lo.trim().parse().expect("quantifier min");
                    let hi: usize = if hi.trim().is_empty() {
                        lo + 8
                    } else {
                        hi.trim().parse().expect("quantifier max")
                    };
                    (lo, hi)
                }
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '?' || chars[i] == '*' || chars[i] == '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(min..=max);
        for _ in 0..count {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

/// Expand a character-class body (`a-z0-9-`) into its member chars.
fn expand_class(inner: &[char], pattern: &str) -> Vec<char> {
    assert!(!inner.is_empty(), "empty [] in pattern {pattern:?}");
    let mut out = Vec::new();
    let mut j = 0;
    while j < inner.len() {
        if j + 2 < inner.len() && inner[j + 1] == '-' {
            let (lo, hi) = (inner[j] as u32, inner[j + 2] as u32);
            assert!(lo <= hi, "bad range in pattern {pattern:?}");
            for c in lo..=hi {
                out.push(char::from_u32(c).expect("class range"));
            }
            j += 3;
        } else {
            out.push(inner[j]);
            j += 1;
        }
    }
    out
}

/// A fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// From the (non-empty) option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs options");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.gen();
        }
        out
    }
}

/// The `any::<T>()` strategy object.
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::Strategy;
    use crate::TestRng;
    use rand::Rng;

    /// An inclusive length window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (`prop::option::of`).

    use super::Strategy;
    use crate::TestRng;
    use rand::Rng;

    /// A strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some` otherwise (upstream
    /// defaults to a 3:1 Some bias too).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps_compose(
            small in 1u8..=10,
            label in prop::collection::vec(any::<u8>(), 0..5),
            choice in prop_oneof![0u32..10, 100u32..110],
            maybe in prop::option::of(5u64..6),
        ) {
            prop_assert!((1..=10).contains(&small));
            prop_assert!(label.len() < 5, "len {}", label.len());
            prop_assert!(choice < 10 || (100..110).contains(&choice));
            if let Some(v) = maybe {
                prop_assert_eq!(v, 5);
            }
        }

        /// Filtering regenerates until the predicate holds.
        #[test]
        fn filter_holds(even in (0u32..1000).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(even % 2, 0);
            prop_assert_ne!(even % 2, 1);
        }

        /// `prop_filter_map` keeps only `Some` outputs.
        #[test]
        fn filter_map_holds(half in (0u32..1000).prop_filter_map("even", |v| {
            (v % 2 == 0).then_some(v / 2)
        })) {
            prop_assert!(half < 500);
        }

        /// String patterns honor classes, ranges, and quantifiers.
        #[test]
        fn pattern_strategy_shape(s in "[a-z0-9-]{1,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 20, "len {}", s.len());
            prop_assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "chars {s:?}"
            );
        }

        /// Literals, escapes, and fixed counts in patterns.
        #[test]
        fn pattern_literals(s in "ab\\.[01]{3}x?") {
            prop_assert!(s.starts_with("ab."), "{s:?}");
            let rest = &s[3..];
            prop_assert!(rest.len() == 3 || (rest.len() == 4 && rest.ends_with('x')));
            prop_assert!(rest[..3].chars().all(|c| c == '0' || c == '1'));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_cases(ProptestConfig::with_cases(4), "demo", |rng| {
            let v = crate::strategy::Strategy::generate(&(0u8..=255), rng);
            prop_assert!(u32::from(v) > 255, "v was {v}");
            Ok(())
        });
    }
}

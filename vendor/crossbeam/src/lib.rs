//! Vendored minimal stand-in for `crossbeam`.
//!
//! Offline build: the workspace vendors the two pieces it uses —
//! scoped threads (`crossbeam::thread::scope`, a thin veneer over
//! `std::thread::scope`, available since Rust 1.63) and a bounded
//! MPMC channel (`crossbeam::channel`, a Mutex+Condvar queue that the
//! `authd` worker pools drain).

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 calling convention:
    //! the spawn closure takes one (ignored) scope argument and
    //! `scope` returns a `Result`.

    use std::any::Any;

    /// Error payload of a panicked scope (crossbeam's `thread::Result`).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; exists so `scope.spawn(|_| ...)` reads the same
    /// as with upstream crossbeam.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and collect its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure's single
        /// argument exists only for crossbeam signature compatibility
        /// (upstream passes the scope; every caller here ignores it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! A bounded/unbounded MPMC channel over `Mutex` + `Condvar`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signals consumers that an item (or disconnect) arrived.
        readable: Condvar,
        /// Signals producers that capacity freed up.
        writable: Condvar,
        cap: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; clonable across producer threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable across worker threads (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is disconnected (all receivers dropped).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Why a `try_send` did not queue the item (which is handed back).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Channel momentarily at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Why a `recv_timeout` returned without an item.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No item arrived within the window.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Why a `try_recv` returned without an item.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Create a channel holding at most `cap` queued items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// Create a channel with no queue bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Queue an item if there is room right now.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if let Some(cap) = self.shared.cap {
                if state.items.len() >= cap {
                    return Err(TrySendError::Full(item));
                }
            }
            state.items.push_back(item);
            self.shared.readable.notify_one();
            Ok(())
        }

        /// Queue an item, blocking while the channel is full.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                match self.shared.cap {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.writable.wait(state).expect("channel lock");
                    }
                    _ => break,
                }
            }
            state.items.push_back(item);
            self.shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue an item, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.readable.wait(state).expect("channel lock");
            }
        }

        /// Dequeue an item, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .readable
                    .wait_timeout(state, deadline - now)
                    .expect("channel lock");
                state = guard;
            }
        }

        /// Dequeue an item if one is ready right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            if let Some(item) = state.items.pop_front() {
                self.shared.writable.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Items currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel lock").items.len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_fan_out_sums() {
            let (tx, rx) = bounded::<u64>(8);
            let total: u64 = std::thread::scope(|s| {
                let workers: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut sum = 0u64;
                            while let Ok(v) = rx.recv() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect();
                drop(rx);
                for v in 1..=100 {
                    tx.send(v).expect("receivers alive");
                }
                drop(tx);
                workers.into_iter().map(|w| w.join().expect("worker")).sum()
            });
            assert_eq!(total, 5050);
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<u8>(1);
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_propagates_results() {
        let mut slots = vec![0u32; 4];
        crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, slot) in slots.iter_mut().enumerate() {
                handles.push(scope.spawn(move |_| *slot = i as u32 + 1));
            }
            for h in handles {
                h.join().expect("worker");
            }
        })
        .expect("scope join");
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }
}

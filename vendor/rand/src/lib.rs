//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the narrow slice of the `rand 0.8` API it actually
//! uses: `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng`
//! (`seed_from_u64`), and `rngs::StdRng`/`rngs::SmallRng`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream's ChaCha12, but every consumer in
//! this workspace only requires a deterministic, well-mixed stream, not
//! upstream's exact bytes. Determinism tests assert self-consistency
//! across runs, which holds.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Uniform value in the given (half-open or inclusive) range.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    /// If `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        uniform_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Seed from a single word (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Map 64 random bits to a double in `[0, 1)`.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One SplitMix64 step; also used to expand seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // an all-zero state would be a fixed point; splitmix of any
            // seed never yields four zero words, but guard anyway
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Small fast generator; same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

pub mod distributions {
    use super::{uniform_f64, RngCore};

    /// A sampling distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over a type's value space
    /// (`[0, 1)` for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            uniform_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            uniform_f64(rng.next_u64()) as f32
        }
    }

    pub mod uniform {
        use crate::{uniform_f64, RngCore};
        use core::ops::{Range, RangeInclusive};

        /// A range that `Rng::gen_range` can sample from.
        pub trait SampleRange<T> {
            /// Draw one value uniformly from the range.
            ///
            /// # Panics
            /// If the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! range_int {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let draw = (((rng.next_u64() as u128) << 64)
                            | rng.next_u64() as u128)
                            % span;
                        (self.start as i128 + draw as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range");
                        let span = (end as i128 - start as i128) as u128 + 1;
                        let draw = (((rng.next_u64() as u128) << 64)
                            | rng.next_u64() as u128)
                            % span;
                        (start as i128 + draw as i128) as $t
                    }
                }
            )*};
        }
        range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! range_float {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range");
                        let u = uniform_f64(rng.next_u64()) as $t;
                        self.start + (self.end - self.start) * u
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range");
                        let u = uniform_f64(rng.next_u64()) as $t;
                        start + (end - start) * u
                    }
                }
            )*};
        }
        range_float!(f32, f64);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn unsized_rng_usable() {
        fn pick<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..100)
        }
        let mut r = StdRng::seed_from_u64(3);
        assert!(pick(&mut r) < 100);
    }
}

//! Vendored minimal stand-in for `criterion`.
//!
//! Offline build: implements the subset the `bench` crate drives with
//! explicit `fn main` harnesses (`harness = false`): `Criterion` with
//! `sample_size`/`warm_up_time`/`measurement_time`, `bench_function`,
//! `benchmark_group` + `Throughput`, `Bencher::iter`/`iter_batched`,
//! and `final_summary`. Timing is a plain mean over timed batches —
//! no outlier analysis or HTML reports — printed as
//! `name  time: [..]  thrpt: [..]`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Throughput labeling for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output a batched iteration consumes.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh setup per iteration.
    PerIteration,
    /// Small input: setup cost amortized over small batches.
    SmallInput,
    /// Large input: one iteration per setup.
    LargeInput,
}

/// Opaque hint to the optimizer that `value` is used.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total time across samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, id, None, f);
        self
    }

    /// Open a named group (shared throughput labeling).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Print the closing line (upstream writes reports here).
    pub fn final_summary(&mut self) {
        println!("criterion (vendored): benchmarks complete");
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Label subsequent benches with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_bench(self.criterion, &full, self.throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Hands the measured closure to the timing loop.
pub struct Bencher {
    /// Accumulated timed nanoseconds.
    elapsed: Duration,
    /// Iterations represented by `elapsed`.
    iters: u64,
    /// Iterations to run per measured sample.
    batch: u64,
}

impl Bencher {
    /// Time `f` repeatedly.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += self.batch;
    }

    /// Time `routine` over fresh `setup` output, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.batch {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_bench<F>(config: &Criterion, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // warm-up: also calibrates how long one pass takes
    let mut calib = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        batch: 1,
    };
    let warm_start = Instant::now();
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut calib);
        if calib.iters > 0 && calib.elapsed > config.warm_up_time {
            break;
        }
    }
    let per_iter = if calib.iters > 0 && !calib.elapsed.is_zero() {
        calib.elapsed / calib.iters as u32
    } else {
        Duration::from_nanos(1)
    };
    // size batches so all samples fit roughly in measurement_time
    let budget = config.measurement_time.max(Duration::from_millis(10));
    let total_iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
    let batch = (total_iters / config.sample_size as u64).max(1);

    let mut sample_means: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            batch,
        };
        f(&mut b);
        if b.iters > 0 {
            sample_means.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
    }
    sample_means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let (lo, mid, hi) = match sample_means.len() {
        0 => (0.0, 0.0, 0.0),
        n => (sample_means[0], sample_means[n / 2], sample_means[n - 1]),
    };
    let mut line = format!(
        "{id:<48} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(mid),
        fmt_ns(hi)
    );
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        if mid > 0.0 {
            let rate = amount / (mid / 1e9);
            line.push_str(&format!("  thrpt: {} {unit}", fmt_rate(rate)));
        }
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.into_iter().map(u64::from).sum::<u64>(),
                BatchSize::PerIteration,
            );
        });
        group.finish();
        c.final_summary();
    }
}

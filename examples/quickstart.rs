//! Quickstart: synthesize one week of `.nz` authoritative traffic,
//! run the full analysis pipeline, and print the headline
//! centralization numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dnscentral_core::experiments::run_dataset;
use dnscentral_core::metrics;
use simnet::profile::Vantage;
use simnet::scenario::Scale;

fn main() {
    // One call: generate a scaled w2020 `.nz` capture, ingest it, and
    // aggregate. `Scale::small` keeps this under a couple of seconds.
    let run = run_dataset(Vantage::Nz, 2020, Scale::small(), 42);

    println!("dataset        : {}", run.id);
    println!("queries        : {}", run.analysis.total_queries);
    println!(
        "valid (NOERROR): {:.1}%",
        run.analysis.valid_fraction() * 100.0
    );
    println!("resolvers      : {}", run.analysis.resolvers.count());
    println!("source ASes    : {}", run.analysis.ases.count());
    println!();

    // The paper's headline (Figure 1): how much of the traffic do five
    // companies send?
    let share = metrics::cloud_share(&run.id, &run.analysis);
    println!("cloud provider query shares:");
    for (provider, s) in &share.per_provider {
        println!("  {provider:<11} {:>5.1}%", s * 100.0);
    }
    println!(
        "  {:<11} {:>5.1}%   <- from just 20 ASes",
        "ALL",
        share.total * 100.0
    );

    assert!(
        share.total > 0.2,
        "the concentration signal should be obvious"
    );
}

//! Use the library as a *what-if* tool, the way a registry operator
//! would: clone the w2020 `.nl` scenario and ask two counterfactuals
//! the paper's conclusion gestures at —
//!
//! 1. What if **every** provider had deployed QNAME minimization?
//!    (the "positive side of centralization" rolled out fleet-wide)
//! 2. What if Facebook's resolvers all advertised the flag-day 1232-byte
//!    EDNS size? (how much TCP fallback disappears)
//!
//! ```sh
//! cargo run --release --example custom_scenario
//! ```

use asdb::cloud::Provider;
use dns_wire::types::RType;
use dnscentral_core::experiments::run_spec;
use dnscentral_core::transport;
use netbase::time::SimTime;
use simnet::profile::Vantage;
use simnet::scenario::{dataset, Scale};

fn main() {
    let scale = Scale::small();
    let baseline_spec = dataset(Vantage::Nl, 2020);
    let baseline = run_spec(baseline_spec.clone(), scale, 42);

    // --- What-if 1: universal Q-min -------------------------------------
    let mut universal = baseline_spec.clone();
    let mut fleets = universal.fleets();
    for f in &mut fleets {
        f.qmin_from = Some(SimTime::from_date(2019, 1, 1));
        f.qmin_frac = f.qmin_frac.max(0.6);
    }
    universal.fleets_override = Some(fleets);
    let qmin_world = run_spec(universal, scale, 42);

    let ns = |run: &dnscentral_core::experiments::DatasetRun, p| {
        run.analysis.provider(Some(p)).qtype_ratio(RType::Ns)
    };
    println!("What-if 1: every provider deploys QNAME minimization");
    println!("  provider     NS share (baseline)  NS share (universal Q-min)");
    for p in asdb::cloud::ALL_PROVIDERS {
        println!(
            "  {:<11}  {:>8.1}%            {:>8.1}%",
            p.name(),
            ns(&baseline, p) * 100.0,
            ns(&qmin_world, p) * 100.0
        );
    }
    let ms_gain = ns(&qmin_world, Provider::Microsoft) - ns(&baseline, Provider::Microsoft);
    println!(
        "  -> Microsoft's users would gain qname privacy overnight \
         (NS share +{:.0} pp), the paper's point about rapid\n     \
         centralized rollouts cutting both ways.\n",
        ms_gain * 100.0
    );

    // --- What-if 2: Facebook adopts the 1232-byte flag-day size ---------
    let mut flagday = baseline_spec.clone();
    let mut fleets = flagday.fleets();
    for f in &mut fleets {
        if f.provider == Some(Provider::Facebook) {
            f.edns_dist = vec![(1232, 1.0)];
            for site in &mut f.sites {
                site.edns_dist = Some(vec![(1232, 1.0)]);
            }
        }
    }
    flagday.fleets_override = Some(fleets);
    let flagday_world = run_spec(flagday, scale, 42);

    let fb_tcp = |run: &dnscentral_core::experiments::DatasetRun| {
        let t = transport::transport_report(&run.id, &run.analysis);
        t.rows
            .iter()
            .find(|r| r.provider == "Facebook")
            .unwrap()
            .tcp
    };
    println!("What-if 2: Facebook advertises EDNS 1232 everywhere");
    println!(
        "  Facebook TCP share, baseline : {:.1}%",
        fb_tcp(&baseline) * 100.0
    );
    println!(
        "  Facebook TCP share, flag-day : {:.1}%",
        fb_tcp(&flagday_world) * 100.0
    );
    println!(
        "  -> signed .nl referrals fit in 1232 bytes, so truncation-driven \
         fallback all but vanishes."
    );
}

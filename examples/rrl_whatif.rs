//! What-if: the `.nz` authoritatives enable Response Rate Limiting.
//!
//! §4.4 notes that resolvers hitting an RRL threshold "switch to TCP to
//! prove they are not spoofing UDP requests". This example sweeps RRL
//! budgets over the w2020 `.nz` scenario and shows the mechanism: as
//! the per-network response budget shrinks, TC=1 slips force TCP
//! retries (and drops leave queries unanswered).
//!
//! ```sh
//! cargo run --release --example rrl_whatif
//! ```

use dnscentral_core::experiments::run_spec;
use simnet::profile::Vantage;
use simnet::rrl::RrlConfig;
use simnet::scenario::{dataset, Scale};

fn main() {
    let scale = Scale::small();
    println!("RRL budget sweep over nz-w2020 (scaled):");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "config", "queries", "tcp share", "slips", "drops", "unanswered"
    );
    // Volume scaling preserves the collection window, so per-second
    // budgets that bind at the paper's billions never bind on the
    // scaled trace. Express the sweep as *weekly quotas per source
    // network and response class* (rps 0 = no refill), the
    // scale-faithful equivalent.
    for (label, rrl) in [
        ("off", None),
        (
            "quota 500/week",
            Some(RrlConfig {
                responses_per_second: 0,
                burst: 500,
                slip: 2,
                ..Default::default()
            }),
        ),
        (
            "quota 50/week",
            Some(RrlConfig {
                responses_per_second: 0,
                burst: 50,
                slip: 2,
                ..Default::default()
            }),
        ),
        (
            "quota 5/week",
            Some(RrlConfig {
                responses_per_second: 0,
                burst: 5,
                slip: 2,
                ..Default::default()
            }),
        ),
    ] {
        let mut spec = dataset(Vantage::Nz, 2020);
        spec.rrl = rrl;
        let run = run_spec(spec, scale, 42);
        let tcp = run.gen_stats.tcp_queries as f64 / run.gen_stats.queries as f64;
        println!(
            "{:<22} {:>10} {:>9.1}% {:>10} {:>12} {:>12}",
            label,
            run.gen_stats.queries,
            tcp * 100.0,
            run.gen_stats.rrl_slips,
            run.gen_stats.rrl_drops,
            run.ingest_stats.unanswered_queries,
        );
    }
    println!(
        "\nTighter budgets -> more slips -> more TCP (the §4.4 mechanism), at \
         the cost of dropped answers."
    );
}

//! Reproduce Figure 6 and the §4.4 truncation analysis: each cloud
//! provider's advertised EDNS(0) UDP size distribution, and the
//! truncation (TC=1) rate it mechanically produces against a
//! DNSSEC-signed zone.
//!
//! ```sh
//! cargo run --release --example edns_truncation
//! ```

use asdb::cloud::Provider;
use dnscentral_core::ednssize;
use dnscentral_core::experiments::run_dataset;
use dnscentral_core::report;
use simnet::profile::Vantage;
use simnet::scenario::Scale;

fn main() {
    eprintln!("generating .nl w2020 at medium scale ...");
    let run = run_dataset(Vantage::Nl, 2020, Scale::medium(), 42);
    let reports = ednssize::edns_report(&run.analysis);
    print!("{}", report::render_fig6(&reports));
    println!();

    let get = |p: Provider| reports.iter().find(|r| r.provider == p.name()).unwrap();
    let fb = get(Provider::Facebook);
    let google = get(Provider::Google);
    let ms = get(Provider::Microsoft);

    println!(
        "Facebook advertises <=512 bytes on {:.0}% of queries; on a zone where \
         most delegations are DNSSEC-signed, the signed referral (~600-700 B) \
         cannot fit, so {:.2}% of its UDP answers truncate and retry over TCP.",
        fb.fraction_at_most(512) * 100.0,
        fb.truncation_ratio * 100.0
    );
    println!(
        "Google and Microsoft advertise 1232+ bytes; their truncation rates are \
         {:.2}% and {:.2}% — only oversized DNSKEY answers ever trip them.",
        google.truncation_ratio * 100.0,
        ms.truncation_ratio * 100.0
    );
    println!(
        "(The paper reports 17.16% vs 0.04% vs 0.01% for w2020 .nl — the same \
         orders of magnitude, produced by the same mechanism.)"
    );
}

//! Reproduce Figure 3: the 18-month longitudinal view of Google's
//! queries to a ccTLD, and the change-point detection that dates the
//! QNAME-minimization rollout (the paper confirmed Dec 2019 with
//! Google's operators).
//!
//! ```sh
//! cargo run --release --example qmin_detection          # .nl
//! cargo run --release --example qmin_detection -- nz    # .nz (with the
//!                                                       #  Feb-2020 incident)
//! ```

use dnscentral_core::experiments::run_monthly_series;
use dnscentral_core::qmin::{detect_cusum, detect_threshold};
use dnscentral_core::report;
use simnet::profile::Vantage;
use simnet::scenario::Scale;

fn main() {
    let vantage = match std::env::args().nth(1).as_deref() {
        Some("nz") => Vantage::Nz,
        _ => Vantage::Nl,
    };
    eprintln!(
        "generating 18 monthly Google samples against {} ...",
        vantage.label()
    );
    let series = run_monthly_series(vantage, Scale::small(), 42);

    let cusum = detect_cusum(&series, 0.05, 0.3);
    print!("{}", report::render_fig3(vantage.label(), &series, cusum));

    // both detectors should agree on the deployment month
    let threshold = detect_threshold(&series, 0.15);
    match (cusum, threshold) {
        (Some(a), Some(b)) if a == b => {
            println!("threshold detector agrees: {}-{:02}", b.year, b.month)
        }
        (a, b) => println!("detectors disagree: cusum={a:?} threshold={b:?}"),
    }

    if vantage == Vantage::Nz {
        let feb = series
            .iter()
            .find(|s| (s.year, s.month) == (2020, 2))
            .expect("series covers Feb 2020");
        println!(
            "\nFeb 2020 cyclic-dependency incident: A+AAAA share {:.1}% \
             (the paper's Figure 3b dip)",
            feb.address_share * 100.0
        );
    }
}

//! Reproduce Figures 5 and 8: Facebook's resolver sites, identified by
//! reverse DNS, with their IPv4/IPv6 preference explained by TCP
//! handshake RTTs — against both analyzed `.nl` servers.
//!
//! ```sh
//! cargo run --release --example facebook_dualstack
//! ```

use dnscentral_core::experiments::run_dataset;
use dnscentral_core::report;
use simnet::profile::Vantage;
use simnet::scenario::Scale;
use std::net::IpAddr;

fn main() {
    eprintln!("generating .nl w2020 at medium scale (a few seconds) ...");
    let run = run_dataset(Vantage::Nl, 2020, Scale::medium(), 42);

    println!(
        "PTR identification: {} sites, {} dual-stack resolvers joined on \
         embedded IPv4, {} addresses without PTR, {} unjoinable",
        run.dualstack.site_count(),
        run.dualstack.dual_stack_resolvers(),
        run.dualstack.no_ptr.len(),
        run.dualstack.unjoinable.len()
    );
    println!();

    for server in &run.spec.servers {
        let sites = run.dualstack.report_for_server(IpAddr::V4(server.v4));
        print!("{}", report::render_fig5(&server.name, &sites));

        // the paper's reading of the figure, restated by the code:
        let loc1 = &sites[0];
        if loc1.median_rtt_v4_us.is_none() && loc1.median_rtt_v6_us.is_none() {
            println!(
                "  -> location 1 ({}) sent no TCP: its RTT cannot be estimated\n",
                loc1.site
            );
        }
        for s in &sites {
            if let (Some(r4), Some(r6)) = (s.median_rtt_v4_us, s.median_rtt_v6_us) {
                if r6 > r4 + 30_000 && s.v6_ratio < 0.5 {
                    println!(
                        "  -> {} prefers IPv4: v6 RTT is {:.0} ms above v4 \
                         (confirming the latency-preference hypothesis)",
                        s.site,
                        (r6 - r4) as f64 / 1000.0
                    );
                }
            }
        }
        println!();
    }
}

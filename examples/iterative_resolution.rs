//! Watch the resolution algorithms the paper measures, at the
//! query-by-query level:
//!
//! 1. a classic resolver vs a QNAME-minimizing one walking the same
//!    name — what each authoritative server sees (§4.2.1);
//! 2. the Feb-2020 `.nz` cyclic-dependency incident, mechanized: two
//!    domains whose NS sets point at each other amplify A-queries at
//!    the TLD until budgets run out (Figure 3b's surge).
//!
//! ```sh
//! cargo run --release --example iterative_resolution
//! ```

use dns_wire::types::RType;
use resolver::hierarchy::{sample_world, Network, ZoneBuilder};
use resolver::{IterativeResolver, ResolverConfig};

fn signed_world() -> Network {
    let mut net = Network::new();
    net.add(
        ZoneBuilder::new(".")
            .signed()
            .server("a.root-servers.example.", "198.41.0.4")
            .delegate("nl.", &["ns1.dns.nl."])
            .secure_delegation("nl.")
            .address("ns1.dns.nl.", "194.0.28.53"),
    );
    let mut tld = ZoneBuilder::new("nl.")
        .signed()
        .server("ns1.dns.nl.", "194.0.28.53");
    for i in 0..4 {
        let me = format!("dom{i}.nl.");
        let ns = format!("ns.dom{i}.nl.");
        let addr = format!("198.51.100.{}", i + 1);
        tld = tld
            .delegate(&me, &[&ns])
            .address(&ns, &addr)
            .secure_delegation(&me);
        net.add(
            ZoneBuilder::new(&me)
                .signed()
                .server(&ns, &addr)
                .address(&format!("www.{me}"), &format!("192.0.2.{}", i + 1)),
        );
    }
    net.add(tld);
    net
}

fn main() {
    println!("=== 1. Classic vs QNAME-minimizing resolution ===\n");
    for qmin in [false, true] {
        let mut net = sample_world();
        let mut r = IterativeResolver::new(ResolverConfig {
            qmin,
            ..Default::default()
        });
        let name = "www.example.nl.".parse().unwrap();
        let addrs = r.resolve(&mut net, &name, RType::A).expect("resolves");
        println!(
            "{} resolver -> {addrs:?} in {} queries:",
            if qmin { "Q-min  " } else { "classic" },
            r.queries_sent()
        );
        for entry in &r.log {
            println!("  {} <- {} {}", entry.server, entry.qname, entry.qtype);
        }
        let tld_seen = net.queries_at("194.0.28.53".parse().unwrap());
        println!(
            "  the .nl TLD server saw: {}\n",
            tld_seen
                .iter()
                .map(|q| format!("{} {}", q.qname, q.qtype))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!(
        "-> the TLD's view changes from the full hostname (A) to the\n\
         delegation name (NS): exactly the Figure 2/3 signal the paper\n\
         detects at .nl and .nz.\n"
    );

    println!("=== 2. The cyclic-dependency incident, mechanized ===\n");
    let mut net = cyclic_world();
    let tld = "202.46.190.10".parse().unwrap();
    let name = "www.alpha.nz.".parse().unwrap();
    for attempt in 1..=5 {
        let mut r = IterativeResolver::new(ResolverConfig::default());
        let err = r.resolve(&mut net, &name, RType::A).unwrap_err();
        println!(
            "attempt {attempt}: {err:?} after {} queries ({} at the TLD so far)",
            r.queries_sent(),
            net.queries_at(tld).len()
        );
    }
    println!(
        "\n-> every retry burns more A-queries for the in-cycle NS hosts at\n\
         the TLD; scale this by Google's resolver fleet retrying for a\n\
         month and you get the millions of extra A/AAAA queries of\n\
         Figure 3b.\n"
    );

    println!("=== 3. A validating resolver's DS/DNSKEY traffic (\u{a7}4.2.2) ===\n");
    let mut net = signed_world();
    let mut r = IterativeResolver::new(ResolverConfig {
        validate: true,
        ..Default::default()
    });
    for i in 0..4 {
        let name = format!("www.dom{i}.nl.").parse().unwrap();
        r.resolve(&mut net, &name, RType::A).expect("validates");
    }
    let ds = r.log.iter().filter(|e| e.qtype == RType::Ds).count();
    let dnskey = r.log.iter().filter(|e| e.qtype == RType::Dnskey).count();
    println!("resolved 4 signed domains; validation traffic:");
    for e in r
        .log
        .iter()
        .filter(|e| matches!(e.qtype, RType::Ds | RType::Dnskey))
    {
        println!("  {} <- {} {}", e.server, e.qname, e.qtype);
    }
    println!(
        "\n-> {ds} DS queries (one per delegation) vs {dnskey} DNSKEY queries\n\
         (one per zone, then cached): the Figure 2d pattern that makes\n\
         Cloudflare DS-heavy, and whose absence marks Microsoft as the\n\
         one non-validating provider."
    );
}

/// Two `.nz` domains whose NS records point at each other, no glue.
fn cyclic_world() -> Network {
    let mut net = Network::new();
    net.add(
        ZoneBuilder::new(".")
            .server("a.root-servers.example.", "198.41.0.4")
            .delegate("nz.", &["ns1.dns.net.nz."])
            .address("ns1.dns.net.nz.", "202.46.190.10"),
    );
    net.add(
        ZoneBuilder::new("nz.")
            .server("ns1.dns.net.nz.", "202.46.190.10")
            .delegate("alpha.nz.", &["ns.beta.nz."])
            .delegate("beta.nz.", &["ns.alpha.nz."]),
    );
    net
}
